"""Sparse (CSR-style) compilation of QUBO models for the annealing hot path.

The simulated annealer historically compiled every QUBO into a dense
``(n, n)`` coupling matrix, so the per-sweep local-field update cost
``O(num_reads * n^2)`` regardless of how sparse the problem was.
Chimera-embedded QUBOs have degree at most six, which makes the dense
form almost entirely zeros at any interesting size.  This module
replaces it with flat arrays:

* the symmetric adjacency in CSR form (``indptr`` implied by per-class
  gather plans, ``indices``/``data`` flattened),
* per colour class a precomputed *gather plan* so the local field of the
  whole class is one fancy-index + multiply + ``np.add.reduceat`` —
  cost proportional to the number of non-zeros touching the class,
* the interaction list (each edge once) for vectorised energies.

Compilation itself (greedy colouring + gather-plan construction) is the
expensive part, so the *structure* — everything that depends only on
the variable order and the sparsity pattern, not on the weights — is
reusable across QUBOs that share a pattern.  :class:`CompileCache` is a
small thread-safe LRU for exactly that: gauge batches, portfolio
re-races and anytime restarts all resubmit the same pattern with
different weights and skip the recompilation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

try:  # scipy's CSR matvec is the fastest local-field kernel; the
    # reduceat gather path below is the pure-numpy fallback.
    from scipy.sparse import csr_matrix as _csr_matrix
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _csr_matrix = None

try:  # the raw C kernel skips scipy's per-call dispatch/validation, which
    # costs as much as the multiplication itself at annealing-class sizes;
    # csr_field_kernel() falls back to .dot() when the symbol moves.
    from scipy.sparse import _sparsetools as _sp_sparsetools

    _csr_matvecs = _sp_sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - version drift guard
    _csr_matvecs = None


def csr_field_kernel(matrix):
    """A ``dense -> matrix @ dense`` callable bound to one CSR matrix.

    ``matrix`` is a scipy ``csr_matrix`` of shape ``(m, n)``; the
    returned callable maps a C-contiguous ``(n, r)`` float64 array to
    the ``(m, r)`` product, using scipy's raw ``csr_matvecs`` kernel
    when available and ``matrix.dot`` otherwise.
    """
    if _csr_matvecs is None:
        return matrix.dot
    num_rows, num_cols = matrix.shape
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data

    def apply(dense: np.ndarray) -> np.ndarray:
        out = np.zeros((num_rows, dense.shape[1]))
        _csr_matvecs(
            num_rows, num_cols, dense.shape[1], indptr, indices, data,
            dense.ravel(), out.ravel(),
        )
        return out

    return apply

from repro.qubo.model import QUBOModel

__all__ = [
    "ClassUpdatePlan",
    "CompiledStructure",
    "CompiledQUBO",
    "CompileCache",
    "compile_qubo",
    "default_compile_cache",
    "greedy_coloring",
    "segment_sum",
    "structure_key",
]

Variable = Hashable


def greedy_coloring(adjacency: List[List[int]]) -> List[List[int]]:
    """Partition variable indices into independent sets (colour classes).

    Nodes are coloured in order of decreasing degree with the smallest
    colour not used by a neighbour; variables in one class never
    interact, so a simultaneous Metropolis update of a class is
    equivalent to sequential single-flip updates within it.
    """
    num_vars = len(adjacency)
    colors = [-1] * num_vars
    order = sorted(range(num_vars), key=lambda i: -len(adjacency[i]))
    for node in order:
        taken = {colors[neighbor] for neighbor in adjacency[node] if colors[neighbor] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    classes: Dict[int, List[int]] = {}
    for node, color in enumerate(colors):
        classes.setdefault(color, []).append(node)
    return [classes[color] for color in sorted(classes)]


def segment_sum(
    product: np.ndarray,
    reduce_starts: np.ndarray,
    num_segments: int,
    empty_members: Optional[np.ndarray],
) -> np.ndarray:
    """Per-segment row sums of ``product`` via ``np.add.reduceat``.

    ``reduce_starts`` covers only the leading segments that begin inside
    the array (trailing empty segments are zero-padded back in), and
    ``empty_members`` marks segments of length zero anywhere in the
    class, whose reduceat slots hold garbage and are zeroed.
    """
    reduced = np.add.reduceat(product, reduce_starts, axis=1)
    if reduced.shape[1] != num_segments:
        padded = np.zeros((product.shape[0], num_segments))
        padded[:, : reduced.shape[1]] = reduced
        reduced = padded
    if empty_members is not None:
        reduced[:, empty_members] = 0.0
    return reduced


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vectorised ``concat(arange(s, s+l) for s, l in zip(starts, lengths))``."""
    mask = lengths > 0
    starts = starts[mask]
    lengths = lengths[mask]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    if starts.size > 1:
        boundaries = np.cumsum(lengths[:-1])
        steps[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(steps)


@dataclass(frozen=True)
class ClassUpdatePlan:
    """Gather plan for the local-field update of one colour class.

    Attributes
    ----------
    members:
        Variable indices of the class.
    neighbor_cols:
        Flat concatenation of every member's neighbour indices (the
        CSR ``indices`` restricted to the class's rows).
    data_slots:
        Position of each entry of :attr:`neighbor_cols` in the compiled
        symmetric data array (used to refresh weights cheaply).
    reduce_starts:
        Segment starts for ``np.add.reduceat`` over the flat product.
        Only the leading members whose segment begins inside the flat
        array are listed (trailing neighbour-less members would index
        past the end and would corrupt the preceding segment if clipped);
        :func:`segment_sum` zero-pads the reduction back to one column
        per member.
    segment_lengths:
        Neighbour count per member (the batched annealer rebuilds fused
        segment boundaries from these).
    indptr:
        Per-class CSR row pointers (``[0, cumsum(segment_lengths)]``):
        together with :attr:`neighbor_cols` and the gathered weights they
        form the ``(len(members), n)`` CSR matrix whose product with the
        state matrix is the class's coupling field.
    empty_members:
        Boolean mask of members without neighbours (their reduceat slot
        holds garbage and is zeroed), or ``None`` when every member has
        at least one neighbour.
    """

    members: np.ndarray
    neighbor_cols: np.ndarray
    data_slots: np.ndarray
    reduce_starts: np.ndarray
    segment_lengths: np.ndarray
    indptr: np.ndarray
    empty_members: Optional[np.ndarray]


@dataclass(frozen=True)
class CompiledStructure:
    """Weight-independent part of a compiled QUBO.

    Holds everything derived from the variable order and the sparsity
    pattern alone: the symmetric CSR permutation, the greedy colouring
    and the per-class gather plans.  Two QUBOs with the same variables
    and the same interaction list (in the same order) share a structure,
    which is what :class:`CompileCache` exploits.
    """

    variables: Tuple[Variable, ...]
    edges: np.ndarray
    sym_perm: np.ndarray
    classes: Tuple[ClassUpdatePlan, ...]

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self.variables)

    @property
    def nnz(self) -> int:
        """Non-zeros of the symmetric adjacency (twice the edge count)."""
        return int(self.sym_perm.size)


@dataclass
class CompiledQUBO:
    """Array form of a QUBO used by the vectorised annealing sweeps.

    Pairs a (possibly shared) :class:`CompiledStructure` with the
    weight-dependent arrays: linear fields, per-edge weights, the
    symmetric CSR data and, pre-gathered per colour class, the
    neighbour weights each sweep multiplies against.  When scipy is
    available, :attr:`class_matrices` additionally holds one
    ``(len(class), n)`` CSR matrix per colour class (built from the
    plan's ``indptr``/``neighbor_cols`` and the gathered data) whose
    matvec against the state matrix is the fastest local-field kernel.
    """

    structure: CompiledStructure
    linear: np.ndarray
    edge_weights: np.ndarray
    sym_data: np.ndarray
    class_neighbor_data: List[np.ndarray]
    offset: float
    max_abs_weight: float
    class_matrices: Optional[List[Any]] = None

    @property
    def variables(self) -> List[Variable]:
        """Variable labels in compilation order."""
        return list(self.structure.variables)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return self.structure.num_variables

    @property
    def num_classes(self) -> int:
        """Number of colour classes."""
        return len(self.structure.classes)

    def local_field(self, states: np.ndarray, class_index: int) -> np.ndarray:
        """Local field ``h_i + sum_j J_ij x_rj`` for one colour class.

        ``states`` is the ``(num_reads, n)`` 0/1 state matrix; the
        result has shape ``(num_reads, len(class))`` and costs
        ``O(num_reads * nnz(class))`` — independent of ``n``.
        """
        return self.local_field_t(np.ascontiguousarray(states.T), class_index).T

    def local_field_t(self, states_t: np.ndarray, class_index: int) -> np.ndarray:
        """Transposed-layout local field used by the annealing hot loop.

        ``states_t`` is the ``(n, num_reads)`` state matrix (variables
        as rows, so a colour class is a contiguous row gather); the
        result has shape ``(len(class), num_reads)``.
        """
        plan = self.structure.classes[class_index]
        base = self.linear[plan.members][:, None]
        if plan.neighbor_cols.size == 0:
            return np.broadcast_to(base, (base.shape[0], states_t.shape[1])).copy()
        if self.class_matrices is not None:
            return base + self.class_matrices[class_index].dot(states_t)
        product = states_t[plan.neighbor_cols] * self.class_neighbor_data[class_index][:, None]
        contribution = segment_sum(
            product.T, plan.reduce_starts, plan.members.size, plan.empty_members
        )
        return base + contribution.T

    def energies(self, states: np.ndarray) -> np.ndarray:
        """Vectorised energies of a ``(num_reads, n)`` 0/1 state matrix."""
        total = states @ self.linear + self.offset
        if self.edge_weights.size:
            edges = self.structure.edges
            total = total + (states[:, edges[:, 0]] * states[:, edges[:, 1]]) @ self.edge_weights
        return total

    def dense_coupling(self) -> np.ndarray:
        """Symmetric dense coupling matrix (the pre-sparse representation).

        Only used by the ``dense`` reference backend and the memory
        benchmark; the sparse hot path never materialises it.
        """
        n = self.num_variables
        coupling = np.zeros((n, n))
        edges = self.structure.edges
        if self.edge_weights.size:
            np.add.at(coupling, (edges[:, 0], edges[:, 1]), self.edge_weights)
            np.add.at(coupling, (edges[:, 1], edges[:, 0]), self.edge_weights)
        return coupling

    def nbytes_sparse(self) -> int:
        """Bytes held by the sparse arrays (structure + weights)."""
        arrays: List[np.ndarray] = [self.linear, self.edge_weights, self.sym_data]
        arrays.extend(self.class_neighbor_data)
        arrays.append(self.structure.edges)
        arrays.append(self.structure.sym_perm)
        for plan in self.structure.classes:
            arrays.extend(
                [
                    plan.members,
                    plan.neighbor_cols,
                    plan.data_slots,
                    plan.reduce_starts,
                    plan.segment_lengths,
                ]
            )
            if plan.empty_members is not None:
                arrays.append(plan.empty_members)
        return int(sum(array.nbytes for array in arrays))


class CompileCache:
    """Thread-safe LRU cache for compiled artefacts.

    Used process-wide for compiled-QUBO structures (keyed by sparsity
    pattern) and by the service layer for prepared pipelines (keyed by
    :meth:`~repro.mqo.problem.MQOProblem.canonical_hash`).  ``maxsize=0``
    disables caching entirely, which the equivalence tests and the
    benchmark use to measure cold compilations.
    """

    def __init__(self, maxsize: int = 128, name: Optional[str] = None) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # A named cache mirrors its hit/miss counts into the process-wide
        # metrics registry (Prometheus series labelled by cache name).
        self._hit_counter = self._miss_counter = None
        if name:
            from repro.obs.metrics import get_registry

            registry = get_registry()
            labels = {"cache": name}
            self._hit_counter = registry.counter(
                "repro_compile_cache_hits_total", "Compile-cache hits.", labels
            )
            self._miss_counter = registry.counter(
                "repro_compile_cache_misses_total", "Compile-cache misses.", labels
            )

    def get(self, key: Any) -> Any:
        """The cached value for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                if self._hit_counter is not None:
                    self._hit_counter.inc()
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            return None

    def put(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting the LRU entry if full."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Snapshot of size and hit/miss counters."""
        with self._lock:
            return {"size": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CompileCache {len(self._entries)}/{self.maxsize} hits={self.hits} misses={self.misses}>"


_default_cache: CompileCache | None = None
_default_cache_lock = threading.Lock()


def default_compile_cache() -> CompileCache:
    """The process-wide structure cache shared by all samplers."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = CompileCache(maxsize=128, name="structure")
        return _default_cache


def _build_structure(variables: Sequence[Variable], edges: np.ndarray) -> CompiledStructure:
    """Build the weight-independent compilation of a sparsity pattern."""
    n = len(variables)
    num_edges = edges.shape[0]
    if num_edges:
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        sym_perm = np.lexsort((cols, rows)).astype(np.int64)
        rows_sorted = rows[sym_perm]
        cols_sorted = cols[sym_perm]
        counts = np.bincount(rows_sorted, minlength=n).astype(np.int64)
    else:
        sym_perm = np.empty(0, dtype=np.int64)
        cols_sorted = np.empty(0, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    adjacency: List[List[int]] = [
        cols_sorted[indptr[i] : indptr[i + 1]].tolist() for i in range(n)
    ]
    classes: List[ClassUpdatePlan] = []
    for members_list in greedy_coloring(adjacency):
        members = np.asarray(members_list, dtype=np.int64)
        lengths = counts[members]
        data_slots = _concat_ranges(indptr[members], lengths)
        neighbor_cols = cols_sorted[data_slots]
        raw_starts = np.cumsum(lengths) - lengths
        empty = lengths == 0
        class_nnz = int(lengths.sum())
        reduce_starts = raw_starts[raw_starts < class_nnz].astype(np.int64)
        classes.append(
            ClassUpdatePlan(
                members=members,
                neighbor_cols=neighbor_cols,
                data_slots=data_slots,
                reduce_starts=reduce_starts,
                segment_lengths=lengths,
                indptr=np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64),
                empty_members=empty if bool(empty.any()) else None,
            )
        )
    return CompiledStructure(
        variables=tuple(variables),
        edges=edges,
        sym_perm=sym_perm,
        classes=tuple(classes),
    )


def structure_key(variables: Sequence[Variable], edges: np.ndarray) -> Tuple:
    """Cache key of a sparsity pattern (variable order + edge sequence)."""
    return (tuple(variables), edges.tobytes())


def compile_qubo(qubo: QUBOModel, cache: CompileCache | None = None) -> CompiledQUBO:
    """Compile ``qubo`` into the flat-array form used by the samplers.

    When ``cache`` is given, the weight-independent structure (colouring
    and gather plans) is looked up by sparsity pattern and only the
    weight arrays are rebuilt — an ``O(nnz)`` refresh instead of a full
    recompilation.  Weights themselves are never cached because gauge
    transforms and noise perturb them on every device programming.
    """
    variables, linear, edges, weights = qubo.to_arrays()
    structure: CompiledStructure | None = None
    if cache is not None:
        key = structure_key(variables, edges)
        structure = cache.get(key)
    if structure is None:
        structure = _build_structure(variables, edges)
        if cache is not None:
            cache.put(key, structure)

    if weights.size:
        sym_data = np.concatenate([weights, weights])[structure.sym_perm]
        max_abs = max(
            float(np.max(np.abs(linear))) if linear.size else 0.0,
            float(np.max(np.abs(weights))),
        )
    else:
        sym_data = np.empty(0)
        max_abs = float(np.max(np.abs(linear))) if linear.size else 0.0
    class_neighbor_data = [sym_data[plan.data_slots] for plan in structure.classes]
    class_matrices: Optional[List[Any]] = None
    if _csr_matrix is not None:
        n = len(variables)
        class_matrices = [
            _csr_matrix(
                (data, plan.neighbor_cols, plan.indptr), shape=(plan.members.size, n)
            )
            for plan, data in zip(structure.classes, class_neighbor_data)
        ]
    return CompiledQUBO(
        structure=structure,
        linear=linear,
        edge_weights=weights,
        sym_data=sym_data,
        class_neighbor_data=class_neighbor_data,
        offset=float(qubo.offset),
        max_abs_weight=max_abs,
        class_matrices=class_matrices,
    )
