"""Containers for annealing results.

A :class:`SampleSet` holds the read-outs of one call to the device
simulator in read order (the order matters: the experiment harness
reconstructs "best solution after k reads" trajectories from it) together
with the device-time accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List

from repro.exceptions import DeviceError

__all__ = ["Sample", "SampleSet"]

Variable = Hashable


@dataclass(frozen=True)
class Sample:
    """One annealing read-out.

    Attributes
    ----------
    assignment:
        The binary value of every problem variable.
    energy:
        Energy of the assignment under the submitted QUBO.
    read_index:
        Zero-based position of the read within the request.
    gauge_index:
        Index of the gauge transformation batch that produced the read.
    """

    assignment: Dict[Variable, int]
    energy: float
    read_index: int
    gauge_index: int = 0


@dataclass
class SampleSet:
    """All read-outs of one sampling request, in read order."""

    samples: List[Sample] = field(default_factory=list)
    per_read_time_ms: float = 0.0
    programming_time_ms: float = 0.0
    info: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.per_read_time_ms < 0 or self.programming_time_ms < 0:
            raise DeviceError("timing values must be non-negative")

    # ------------------------------------------------------------------ #
    # Collection interface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> Sample:
        return self.samples[index]

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @property
    def num_reads(self) -> int:
        """Number of read-outs contained."""
        return len(self.samples)

    def best(self) -> Sample:
        """The lowest-energy sample (first one wins ties)."""
        if not self.samples:
            raise DeviceError("the sample set is empty")
        return min(self.samples, key=lambda sample: (sample.energy, sample.read_index))

    def best_after(self, num_reads: int) -> Sample:
        """The lowest-energy sample among the first ``num_reads`` read-outs."""
        if num_reads <= 0:
            raise DeviceError("num_reads must be positive")
        prefix = self.samples[:num_reads]
        if not prefix:
            raise DeviceError("the sample set is empty")
        return min(prefix, key=lambda sample: (sample.energy, sample.read_index))

    def energies(self) -> List[float]:
        """Energies in read order."""
        return [sample.energy for sample in self.samples]

    def device_time_ms(self, num_reads: int | None = None) -> float:
        """Device time consumed by the first ``num_reads`` reads (all by default).

        Programming/initialisation time is included once.
        """
        count = self.num_reads if num_reads is None else min(num_reads, self.num_reads)
        return self.programming_time_ms + count * self.per_read_time_ms

    def trajectory(self) -> List[tuple]:
        """Best energy after each read as ``(device_time_ms, energy)`` pairs."""
        points = []
        best = float("inf")
        for sample in self.samples:
            best = min(best, sample.energy)
            points.append((self.device_time_ms(sample.read_index + 1), best))
        return points
