"""Optional numba-compiled Metropolis sweep kernel.

The numpy sparse backend pays a fixed dispatch cost per colour class per
sweep (a CSR matvec plus a handful of elementwise ufuncs); on small
Chimera problems that fixed cost dominates.  This module provides a
single fused kernel that does the field gather, the Metropolis
acceptance test and the state update of one colour class in one
compiled loop — no intermediate arrays, no per-ufunc dispatch.

numba is **optional**: the container image does not ship it and nothing
here must force the import at package load.  :data:`HAVE_NUMBA` reports
availability; when it is ``False`` the public entry point raises
:class:`~repro.exceptions.DeviceError` with an actionable message and
callers (the ``backend="numba"`` seam, the benchmark lane, the tests)
skip cleanly.

Bit-equivalence: the kernel consumes the *same* uniforms the numpy
backends draw (the caller draws them before invoking the kernel, so the
random stream is identical by construction) and accumulates each row's
local field in CSR index order — the same order ``scipy``'s CSR matvec
uses — so sums agree bit for bit.  The one genuinely different
operation is ``exp``: numba lowers to libm's ``exp`` while numpy uses
its own vectorised implementation, which may disagree in the last ulp.
An acceptance decision flips only when a uniform lands inside that
last-ulp gap — the same measure-zero caveat the sparse-vs-dense
equivalence already carries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import DeviceError

__all__ = ["HAVE_NUMBA", "require_numba", "metropolis_class_update"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default in this container
    numba = None
    HAVE_NUMBA = False


def require_numba() -> None:
    """Raise :class:`DeviceError` when numba is not importable.

    Called at backend construction so a misconfigured ``backend="numba"``
    fails fast with a clear message instead of deep inside a sweep.
    """
    if not HAVE_NUMBA:
        raise DeviceError(
            'backend="numba" requires the optional numba package, which is not '
            'installed; use backend="sparse" (the default) or install numba'
        )


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True, nogil=True)
    def _class_update(indptr, indices, data, linear, members, states_t, uniforms, beta):
        rows = members.shape[0]
        num_reads = states_t.shape[1]
        for i in range(rows):
            member = members[i]
            start, end = indptr[i], indptr[i + 1]
            for r in range(num_reads):
                # Local field in CSR index order — the same accumulation
                # order as scipy's CSR matvec, so sums match bit for bit.
                field = linear[i]
                for k in range(start, end):
                    field += data[k] * states_t[indices[k], r]
                current = states_t[member, r]
                tilt = 1.0 - 2.0 * current
                delta = tilt * field
                if delta <= 0.0 or uniforms[i, r] < math.exp(-beta * delta):
                    states_t[member, r] = 1.0 - current

    def metropolis_class_update(
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        linear: np.ndarray,
        members: np.ndarray,
        states_t: np.ndarray,
        uniforms: np.ndarray,
        beta: float,
    ) -> None:
        """Fused field/accept/update of one colour class, in place.

        Parameters
        ----------
        indptr / indices / data:
            CSR arrays of the class's ``(|class|, n)`` coupling rows.
        linear:
            Linear field of the class members (``compiled.linear[members]``).
        members:
            Global variable indices of the class (row order).
        states_t:
            The ``(n, num_reads)`` state tensor, updated in place.
        uniforms:
            Pre-drawn ``(|class|, num_reads)`` uniforms — drawing stays
            with the caller so every backend consumes the random stream
            identically.
        beta:
            Inverse temperature of this sweep.
        """
        _class_update(indptr, indices, data, linear, members, states_t, uniforms, beta)

else:

    def metropolis_class_update(*_args, **_kwargs) -> None:
        """Unavailable without numba; see :func:`require_numba`."""
        require_numba()
