"""Analog noise model of the simulated annealing device.

Real annealers implement weights as analog magnetic fields; programming
them is imprecise and small static biases remain even after calibration.
The device simulator models this as

* a *static* per-qubit bias field (drawn once per device instance) —
  the systematic bias that gauge transformations are meant to average out,
* *programming noise* on every field and coupling, redrawn for every
  gauge batch (independent control errors per programming cycle).

Both are expressed relative to the largest absolute weight of the
submitted problem so the noise level tracks the device's analog range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence

from repro.exceptions import DeviceError
from repro.qubo.ising import IsingModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["NoiseModel"]

Variable = Hashable


@dataclass(frozen=True)
class NoiseModel:
    """Relative noise magnitudes of the simulated device.

    Attributes
    ----------
    static_bias_fraction:
        Standard deviation of the static per-qubit bias, as a fraction of
        the problem's largest absolute weight.
    programming_noise_fraction:
        Standard deviation of the per-programming-cycle perturbation of
        every field and coupling, as a fraction of the largest weight.
    """

    static_bias_fraction: float = 0.005
    programming_noise_fraction: float = 0.0025

    def __post_init__(self) -> None:
        if self.static_bias_fraction < 0 or self.programming_noise_fraction < 0:
            raise DeviceError("noise fractions must be non-negative")

    @property
    def is_noiseless(self) -> bool:
        """Whether the model introduces no perturbation at all."""
        return self.static_bias_fraction == 0 and self.programming_noise_fraction == 0

    def static_bias(
        self, qubits: Sequence[int], seed: SeedLike = None
    ) -> Dict[int, float]:
        """Draw the static per-qubit bias field for a device instance."""
        rng = ensure_rng(seed)
        if self.static_bias_fraction == 0:
            return {q: 0.0 for q in qubits}
        values = rng.normal(0.0, self.static_bias_fraction, size=len(qubits))
        return {q: float(v) for q, v in zip(qubits, values)}

    def perturb_ising(
        self,
        ising: IsingModel,
        static_bias: Dict[int, float],
        scale: float,
        seed: SeedLike = None,
    ) -> IsingModel:
        """Apply static bias plus fresh programming noise to an Ising model.

        ``scale`` is the problem's largest absolute weight; all noise
        magnitudes are relative to it.
        """
        if scale < 0:
            raise DeviceError("scale must be non-negative")
        rng = ensure_rng(seed)
        h = dict(ising.h)
        j = dict(ising.j)
        for var in h:
            h[var] += scale * static_bias.get(var, 0.0)
            if self.programming_noise_fraction:
                h[var] += scale * float(rng.normal(0.0, self.programming_noise_fraction))
        if self.programming_noise_fraction:
            for edge in j:
                j[edge] += scale * float(rng.normal(0.0, self.programming_noise_fraction))
        return IsingModel(h=h, j=j, offset=ising.offset)
