"""Cross-request anneal fusion: many jobs, one block-diagonal sweep.

:class:`~repro.annealer.batched.BatchedAnnealer` fuses the gauge batches
*within* one request into a single block-diagonal problem.  This module
lifts the same trick one level up — the continuous-batching shape of
modern inference serving: independent jobs that happen to be in flight
at the same time are packed into **one** fused state tensor and annealed
together, amortising the per-sweep numpy dispatch cost across requests
instead of paying it once per request.

The contract is strict bit-identity per job: a job annealed inside a
fusion window produces exactly the states it would have produced alone
(same seed, same trajectory, same best read).  That holds because every
random draw of the sweep loop is *state independent* — per job the
stream is

1. one ``integers(0, 2, (reads, n))`` draw for the initial states,
2. per sweep, per colour class, one ``random(out=...)`` uniform block of
   shape ``(class_size, reads)``,

and the fused loop replays the same calls with the same shapes against
each job's own generator.  The arithmetic is identical too: blocks never
interact (block-diagonal coupling), each job keeps its own per-block
temperature ladder, and read columns evolve independently, so padding a
job to the window's maximum read count only adds throwaway columns.

Jobs may disagree on read counts, sweep counts and schedules:

* **reads** — the tensor is as wide as the largest job; narrower jobs
  own padding columns that are initialised once (never drawn from the
  job's stream) and discarded at scatter time,
* **sweeps** — the sweep loop runs in segments between the distinct
  sweep horizons; at each horizon the jobs that are done drop out and
  the remaining blocks re-fuse (per-block early exit),
* **schedule** — the per-sweep Metropolis factor uses a per-member beta
  gathered from a per-block ladder, exactly as the within-job fusion
  does.

When fusion loses: one oversized job stretches every sweep of the
window to its block size while small co-fused jobs would have finished
cheaply alone — skewed block sizes waste the amortisation.  The server
bounds this with its window size and by only fusing jobs that share the
annealing-backed solver; see ``docs/fusion.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealer.batched import BatchedAnnealer, _FusedClass
from repro.annealer.compile import CompileCache, CompiledQUBO, compile_qubo, default_compile_cache
from repro.annealer.schedule import AnnealingSchedule, default_schedule_for
from repro.exceptions import DeviceError
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["FusionGroup", "FusionWindow", "fused_sample_block_states"]


@dataclass
class FusionGroup:
    """One job's annealing workload inside a fusion window.

    Attributes
    ----------
    qubos:
        The job's programmed gauge-batch QUBOs (its blocks).
    num_reads:
        Reads annealed for every block of this job.
    rng:
        The job's own random stream.  Each group **must** own an
        independent generator — sharing one generator across groups
        breaks the bit-identity contract.
    num_sweeps:
        Sweep horizon of this job (its blocks drop out of the fused
        loop after this many sweeps).
    schedule:
        Optional explicit temperature ladder shared by the job's
        blocks; defaults to each block's own geometric schedule.
    """

    qubos: Sequence[QUBOModel]
    num_reads: int
    rng: SeedLike
    num_sweeps: int
    schedule: Optional[AnnealingSchedule] = None


@dataclass
class _DrawSection:
    """A contiguous run of fused-class rows owned by one group.

    ``scratch`` is ``None`` when the group spans the full read width
    (the uniform draw then lands directly in the shared buffer);
    otherwise draws go through the ``(rows, group_reads)`` scratch and
    are copied into the left columns of the shared buffer.
    """

    rng: np.random.Generator
    row0: int
    row1: int
    num_reads: int
    scratch: Optional[np.ndarray]


@dataclass
class _SegmentClass:
    """Per-sweep work of one fused class within one horizon segment."""

    fused: _FusedClass
    blocks_column: np.ndarray
    sections: List[_DrawSection]
    uniforms: np.ndarray
    probability: np.ndarray
    positive: np.ndarray
    flips: np.ndarray


@dataclass
class _Segment:
    """The fused classes active between two sweep horizons."""

    sweep_start: int
    sweep_end: int
    active_blocks: np.ndarray
    classes: List[_SegmentClass] = field(default_factory=list)


class FusionWindow:
    """Fuse the annealing workloads of many independent jobs.

    The window is a pure annealing engine: callers hand it one
    :class:`FusionGroup` per job and get back, per job, exactly what
    :meth:`BatchedAnnealer.sample_block_states
    <repro.annealer.batched.BatchedAnnealer.sample_block_states>` would
    have returned for that job alone with the same generator — the
    bit-identity contract the server-side fusion path is built on.

    Parameters
    ----------
    compile_cache:
        Structure cache consulted when compiling blocks (the
        process-wide cache by default), so fused jobs warm each other.
    """

    def __init__(self, compile_cache: CompileCache | None = None) -> None:
        self.compile_cache = compile_cache if compile_cache is not None else default_compile_cache()

    def sample(
        self, groups: Sequence[FusionGroup]
    ) -> List[Tuple[List[np.ndarray], List[CompiledQUBO]]]:
        """Anneal every group fused and return per-group block states.

        Returns one ``(block_states, compiled)`` pair per group, in
        group order, where ``block_states[b]`` is the
        ``(num_reads, n_b)`` 0/1 matrix of the group's block ``b`` —
        the same shape :meth:`BatchedAnnealer.sample_block_states`
        yields for a solo run.
        """
        groups = list(groups)
        if not groups:
            raise DeviceError("a fusion window needs at least one group")
        rngs = [ensure_rng(group.rng) for group in groups]
        for group in groups:
            if not group.qubos:
                raise DeviceError("every fusion group needs at least one QUBO")
            if group.num_reads <= 0:
                raise DeviceError(f"num_reads must be positive, got {group.num_reads}")
            if group.num_sweeps <= 0:
                raise DeviceError(f"num_sweeps must be positive, got {group.num_sweeps}")

        compiled_groups = [
            [compile_qubo(qubo, cache=self.compile_cache) for qubo in group.qubos]
            for group in groups
        ]
        blocks: List[CompiledQUBO] = []
        block_group: List[int] = []
        for group_index, compiled in enumerate(compiled_groups):
            for block in compiled:
                if not block.num_variables:
                    raise DeviceError("cannot anneal an empty QUBO")
                blocks.append(block)
                block_group.append(group_index)

        sizes = np.array([block.num_variables for block in blocks], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total_n = int(offsets[-1])
        reads = [group.num_reads for group in groups]
        reads_max = max(reads)
        sweeps = [group.num_sweeps for group in groups]
        betas = self._beta_table(groups, blocks, block_group, max(sweeps))
        group_rows = self._group_rows(offsets, block_group, len(groups))

        # Initial states: one draw per group, with the exact shape of the
        # group's solo draw; padding columns stay at their initial value
        # and are discarded at scatter time.
        states_t = np.zeros((total_n, reads_max))
        for group_index, rng in enumerate(rngs):
            row0, row1 = group_rows[group_index]
            initial = rng.integers(
                0, 2, size=(reads[group_index], row1 - row0)
            ).astype(float)
            states_t[row0:row1, : reads[group_index]] = initial.T

        sweep_start = 0
        for horizon in sorted(set(sweeps)):
            segment = self._plan_segment(
                sweep_start, horizon, blocks, block_group, offsets, total_n,
                groups, rngs, reads, reads_max,
            )
            for sweep in range(segment.sweep_start, segment.sweep_end):
                self._fused_sweep(states_t, segment, betas[sweep][segment.active_blocks])
            sweep_start = horizon

        results: List[Tuple[List[np.ndarray], List[CompiledQUBO]]] = []
        block_index = 0
        for group_index, compiled in enumerate(compiled_groups):
            block_states = []
            for _ in compiled:
                lo, hi = int(offsets[block_index]), int(offsets[block_index + 1])
                block_states.append(
                    np.ascontiguousarray(states_t[lo:hi, : reads[group_index]].T)
                )
                block_index += 1
            results.append((block_states, compiled))
        return results

    # ------------------------------------------------------------------ #
    # Fused problem construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _group_rows(
        offsets: np.ndarray, block_group: List[int], num_groups: int
    ) -> List[Tuple[int, int]]:
        """Row range ``[row0, row1)`` of each group in the fused tensor."""
        rows: List[Tuple[int, int]] = []
        for group_index in range(num_groups):
            block_ids = [b for b, g in enumerate(block_group) if g == group_index]
            rows.append((int(offsets[block_ids[0]]), int(offsets[block_ids[-1] + 1])))
        return rows

    @staticmethod
    def _beta_table(
        groups: Sequence[FusionGroup],
        blocks: Sequence[CompiledQUBO],
        block_group: List[int],
        sweeps_max: int,
    ) -> np.ndarray:
        """Per-sweep, per-block betas, shape ``(sweeps_max, num_blocks)``.

        Each block's ladder comes from its own group (explicit schedule
        or the block-scaled default).  Ladders shorter than the window's
        horizon are padded by repeating the final beta — padded rows are
        never used because the block leaves the sweep loop first.
        """
        columns = []
        for block_id, block in enumerate(blocks):
            group = groups[block_group[block_id]]
            schedule = group.schedule or default_schedule_for(
                block.max_abs_weight, group.num_sweeps
            )
            if schedule.num_sweeps != group.num_sweeps:
                raise DeviceError(
                    f"schedule has {schedule.num_sweeps} sweeps, group expects "
                    f"{group.num_sweeps}"
                )
            ladder = schedule.as_array()
            if ladder.size < sweeps_max:
                ladder = np.concatenate(
                    [ladder, np.full(sweeps_max - ladder.size, ladder[-1])]
                )
            columns.append(ladder)
        return np.stack(columns, axis=1)

    def _plan_segment(
        self,
        sweep_start: int,
        sweep_end: int,
        blocks: Sequence[CompiledQUBO],
        block_group: List[int],
        offsets: np.ndarray,
        total_n: int,
        groups: Sequence[FusionGroup],
        rngs: Sequence[np.random.Generator],
        reads: Sequence[int],
        reads_max: int,
    ) -> _Segment:
        """Re-fuse the blocks still active up to the ``sweep_end`` horizon.

        A block is active while its group's sweep horizon has not been
        reached; blocks of finished groups drop out and the remaining
        ones re-fuse, so late sweeps of long jobs no longer touch the
        rows of early-exited jobs.
        """
        active = np.array(
            [b for b in range(len(blocks)) if groups[block_group[b]].num_sweeps >= sweep_end],
            dtype=np.int64,
        )
        sub_blocks = [blocks[b] for b in active]
        # _fuse_classes only reads per-block offsets plus the trailing
        # sentinel, so the subset keeps global offsets (rows stay put in
        # the shared tensor) with the global width as sentinel.
        sub_offsets = np.concatenate([offsets[active], [total_n]])
        fused_classes = BatchedAnnealer._fuse_classes(sub_blocks, sub_offsets)
        segment = _Segment(sweep_start=sweep_start, sweep_end=sweep_end, active_blocks=active)
        for class_index, fused in enumerate(fused_classes):
            # Blocks of one group are contiguous in the global order, so a
            # group's rows within the fused class form one contiguous run —
            # one uniform draw per group per class, exactly the solo shape.
            sections: List[_DrawSection] = []
            row_cursor = 0
            for block_id in active:
                block = blocks[int(block_id)]
                if class_index >= block.num_classes:
                    continue
                block_rows = block.structure.classes[class_index].members.size
                if not block_rows:
                    continue
                group_index = block_group[int(block_id)]
                row0, row1 = row_cursor, row_cursor + block_rows
                row_cursor = row1
                if sections and sections[-1].rng is rngs[group_index]:
                    sections[-1].row1 = row1
                    continue
                sections.append(
                    _DrawSection(
                        rng=rngs[group_index],
                        row0=row0,
                        row1=row1,
                        num_reads=reads[group_index],
                        scratch=None,
                    )
                )
            for section in sections:
                if section.num_reads != reads_max:
                    section.scratch = np.empty(
                        (section.row1 - section.row0, section.num_reads)
                    )
            rows = fused.members.size
            segment.classes.append(
                _SegmentClass(
                    fused=fused,
                    blocks_column=fused.member_blocks[:, None],
                    sections=sections,
                    # Padding columns keep a fixed uniform of 0.5: they are
                    # never drawn from any group's stream and their flips
                    # only touch padding state columns.
                    uniforms=np.full((rows, reads_max), 0.5),
                    probability=np.empty((rows, reads_max)),
                    positive=np.empty((rows, reads_max), dtype=bool),
                    flips=np.empty((rows, reads_max), dtype=bool),
                )
            )
        return segment

    # ------------------------------------------------------------------ #
    # Fused sweep
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fused_sweep(states_t: np.ndarray, segment: _Segment, beta_row: np.ndarray) -> None:
        """One Metropolis sweep over every fused class of the segment.

        Replays :func:`~repro.annealer.simulated_annealing._metropolis_flips`
        ufunc for ufunc, except the uniforms are drawn *per section* from
        each group's own generator — the one place the fused loop must
        diverge from the solo loop to keep per-job streams intact.
        """
        for entry in segment.classes:
            fused = entry.fused
            local_field = BatchedAnnealer._local_field(states_t, fused)
            current = states_t[fused.members]
            delta = (1.0 - 2.0 * current) * local_field
            for section in entry.sections:
                if section.scratch is None:
                    section.rng.random(out=entry.uniforms[section.row0 : section.row1])
                else:
                    section.rng.random(out=section.scratch)
                    entry.uniforms[
                        section.row0 : section.row1, : section.num_reads
                    ] = section.scratch
            np.greater(delta, 0.0, out=entry.positive)
            np.multiply(delta, -beta_row[entry.blocks_column], out=delta)
            entry.probability.fill(1.0)
            np.exp(delta, out=entry.probability, where=entry.positive)
            np.less(entry.uniforms, entry.probability, out=entry.flips)
            states_t[fused.members] = np.where(entry.flips, 1.0 - current, current)


def fused_sample_block_states(
    groups: Sequence[FusionGroup],
    compile_cache: CompileCache | None = None,
) -> List[Tuple[List[np.ndarray], List[CompiledQUBO]]]:
    """Convenience wrapper: anneal ``groups`` in one fusion window."""
    return FusionWindow(compile_cache=compile_cache).sample(groups)
