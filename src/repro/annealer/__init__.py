"""Annealing device simulation.

The paper runs its physical QUBOs on a D-Wave 2X quantum annealer.  This
package substitutes that hardware with a software device model:

* :class:`SimulatedAnnealingSampler` — a vectorised single-flip
  Metropolis annealer over QUBO models (the classical stand-in for the
  quantum annealing dynamics, in the spirit of D-Wave's ``neal``),
* :class:`DWaveSamplerSimulator` — the device facade: it only accepts
  problems that respect the Chimera topology, models per-qubit bias
  noise, applies gauge (spin-reversal) transforms per batch of reads and
  reports *device time* using the paper's timing constants
  (129 us anneal + 247 us read-out per sample).
"""

from repro.annealer.schedule import AnnealingSchedule, geometric_beta_schedule, linear_beta_schedule
from repro.annealer.sampleset import Sample, SampleSet
from repro.annealer.compile import (
    CompileCache,
    CompiledQUBO,
    compile_qubo,
    default_compile_cache,
)
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.annealer.batched import BatchedAnnealer, BlockResult
from repro.annealer.fusion import FusionGroup, FusionWindow, fused_sample_block_states
from repro.annealer.gauge import GaugeTransform, random_gauge
from repro.annealer.noise import NoiseModel
from repro.annealer.device import DWaveSamplerSimulator, ProgrammedAnneal
from repro.annealer.numba_kernels import HAVE_NUMBA

__all__ = [
    "AnnealingSchedule",
    "geometric_beta_schedule",
    "linear_beta_schedule",
    "Sample",
    "SampleSet",
    "CompileCache",
    "CompiledQUBO",
    "compile_qubo",
    "default_compile_cache",
    "SimulatedAnnealingSampler",
    "BatchedAnnealer",
    "BlockResult",
    "FusionGroup",
    "FusionWindow",
    "fused_sample_block_states",
    "GaugeTransform",
    "random_gauge",
    "NoiseModel",
    "DWaveSamplerSimulator",
    "ProgrammedAnneal",
    "HAVE_NUMBA",
]
