"""The D-Wave device simulator.

:class:`DWaveSamplerSimulator` mimics the *interface and accounting* of
the D-Wave 2X annealer used in the paper:

* it only accepts QUBO problems whose variables are functional qubits of
  its Chimera topology and whose quadratic terms lie on physical couplers
  (anything else raises :class:`DeviceError`),
* reads are partitioned into gauge batches; each batch programs the
  (noisy) problem once and performs a block of annealing reads,
* reported *device time* follows the paper's constants — 129 us anneal
  plus 247 us read-out per read (376 us per sample) — independently of
  how long the software simulation takes on the host.

The annealing dynamics themselves are produced by the classical
:class:`SimulatedAnnealingSampler`; see DESIGN.md for why this
substitution preserves the experiments' structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List

import numpy as np

from repro.annealer.batched import BatchedAnnealer
from repro.annealer.gauge import GaugeTransform, random_gauge
from repro.annealer.noise import NoiseModel
from repro.annealer.sampleset import Sample, SampleSet
from repro.annealer.schedule import AnnealingSchedule
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.chimera.hardware import DWAVE_2X, DWaveSpec
from repro.chimera.topology import ChimeraGraph
from repro.exceptions import DeviceCapacityError, DeviceError
from repro.obs.metrics import get_registry
from repro.qubo.ising import ising_to_qubo, qubo_to_ising
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

#: Annealing volume across all simulated devices in this process.
_READS_TOTAL = get_registry().counter(
    "repro_anneal_reads_total", "Annealing reads performed."
)
_GAUGES_TOTAL = get_registry().counter(
    "repro_anneal_gauge_batches_total", "Gauge batches programmed."
)

__all__ = ["DWaveSamplerSimulator", "ProgrammedAnneal"]

Variable = Hashable


@dataclass
class ProgrammedAnneal:
    """A request after gauge/noise programming, before any annealing.

    Splitting :meth:`DWaveSamplerSimulator.sample_qubo` at this seam
    lets the cross-request fusion path program many jobs first, anneal
    them all in one :class:`~repro.annealer.fusion.FusionWindow`, and
    assemble each job's :class:`SampleSet` afterwards — with exactly
    the draws the solo path would have made (programming consumes the
    request stream before any sweep does, in both paths).

    Attributes
    ----------
    qubo:
        The original (noiseless) physical QUBO energies are read under.
    gauges / programmed_qubos:
        Per gauge batch: the gauge transform and the programmed
        (gauged, noise-perturbed) QUBO handed to the annealer.
    batch_sizes:
        Reads of each gauge batch (sums to ``num_reads``).
    num_reads:
        Total reads requested.
    rng:
        The request stream, positioned after the programming draws —
        the annealing stage continues it.
    """

    qubo: QUBOModel
    gauges: List[GaugeTransform]
    programmed_qubos: List[QUBOModel]
    batch_sizes: List[int]
    num_reads: int
    rng: np.random.Generator


class DWaveSamplerSimulator:
    """Software model of a Chimera-structured annealing device.

    Parameters
    ----------
    spec:
        Device generation (topology dimensions, timing constants,
        default read/gauge counts).  Defaults to the D-Wave 2X.
    topology:
        Explicit hardware graph.  When omitted, one is built from the
        spec (including randomly placed broken qubits).
    noise:
        Analog noise model; pass ``NoiseModel(0.0, 0.0)`` for an ideal
        device.
    num_sweeps:
        Sweeps per annealing read of the internal simulated annealer.
    seed:
        Seed controlling the device's static bias, gauge draws and
        annealing randomness.
    batch_gauges:
        When true (the default) all gauge batches of a request are
        packed into one block-diagonal problem and annealed in a single
        fused state tensor by :class:`BatchedAnnealer`, amortising the
        numpy dispatch cost across batches.  Disable to anneal the
        batches sequentially.  The two modes draw different random
        streams but sample the same distribution; neither replays the
        per-seed sample values of pre-sparse-engine releases, because
        all gauge/noise draws now happen before any annealing.
    """

    def __init__(
        self,
        spec: DWaveSpec = DWAVE_2X,
        topology: ChimeraGraph | None = None,
        noise: NoiseModel | None = None,
        num_sweeps: int = 200,
        schedule: AnnealingSchedule | None = None,
        seed: SeedLike = None,
        programming_time_ms: float = 0.0,
        batch_gauges: bool = True,
    ) -> None:
        if programming_time_ms < 0:
            raise DeviceError("programming_time_ms must be non-negative")
        self.spec = spec
        self._rng = ensure_rng(seed)
        self.topology = topology if topology is not None else spec.build_topology(seed=self._rng)
        self.noise = noise if noise is not None else NoiseModel()
        self.sampler = SimulatedAnnealingSampler(num_sweeps=num_sweeps, schedule=schedule)
        self.batched_sampler = BatchedAnnealer(num_sweeps=num_sweeps, schedule=schedule)
        self.batch_gauges = batch_gauges
        self.programming_time_ms = programming_time_ms
        self._static_bias = self.noise.static_bias(self.topology.qubits, seed=self._rng)

    # ------------------------------------------------------------------ #
    # Device properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of functional qubits of this device instance."""
        return self.topology.num_qubits

    @property
    def time_per_read_ms(self) -> float:
        """Anneal plus read-out time of a single read in milliseconds."""
        return self.spec.time_per_read_ms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DWaveSamplerSimulator {self.spec.name}: {self.num_qubits} functional qubits, "
            f"{self.time_per_read_ms * 1000:.0f} us/read>"
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_problem(self, qubo: QUBOModel) -> None:
        """Check that ``qubo`` can be programmed onto this device.

        Raises
        ------
        DeviceCapacityError
            If a variable is not a functional qubit of the topology.
        DeviceError
            If a quadratic term connects qubits without a physical coupler.
        """
        for var in qubo.variables:
            if not isinstance(var, (int,)) or not self.topology.has_qubit(var):
                raise DeviceCapacityError(
                    f"variable {var!r} is not a functional qubit of the device topology"
                )
        for (u, v) in qubo.quadratic:
            if not self.topology.has_coupler(u, v):
                raise DeviceError(
                    f"quadratic term between qubits {u} and {v} does not correspond to a "
                    f"physical coupler"
                )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_qubo(
        self,
        qubo: QUBOModel,
        num_reads: int | None = None,
        num_gauges: int | None = None,
        seed: SeedLike = None,
    ) -> SampleSet:
        """Run annealing reads for a physical QUBO.

        Composed of the three stages the fusion path splits apart:
        :meth:`program_anneal` (validation, gauge + noise draws),
        :meth:`anneal_programmed` (the annealing sweeps) and
        :meth:`assemble_samples` (gauge inversion, energies, timing).

        Parameters
        ----------
        qubo:
            The physical QUBO (variables are qubit indices).
        num_reads / num_gauges:
            Total reads and number of gauge batches; default to the
            paper's 1000 reads in 10 gauges.
        seed:
            Optional per-request seed (falls back to the device stream).
        """
        programmed = self.program_anneal(
            qubo, num_reads=num_reads, num_gauges=num_gauges, seed=seed
        )
        return self.assemble_samples(programmed, self.anneal_programmed(programmed))

    def program_anneal(
        self,
        qubo: QUBOModel,
        num_reads: int | None = None,
        num_gauges: int | None = None,
        seed: SeedLike = None,
    ) -> ProgrammedAnneal:
        """Validate a request and program its gauge batches.

        All gauge and noise draws happen here, in batch order, leaving
        the returned :attr:`ProgrammedAnneal.rng` positioned exactly
        where the annealing stage expects it — whether the sweeps then
        run solo (:meth:`anneal_programmed`) or fused across requests
        (:class:`~repro.annealer.fusion.FusionWindow`).
        """
        num_reads = self.spec.default_num_reads if num_reads is None else num_reads
        num_gauges = self.spec.default_num_gauges if num_gauges is None else num_gauges
        if num_reads <= 0:
            raise DeviceError(f"num_reads must be positive, got {num_reads}")
        if num_gauges <= 0:
            raise DeviceError(f"num_gauges must be positive, got {num_gauges}")
        num_gauges = min(num_gauges, num_reads)
        self.validate_problem(qubo)

        rng = ensure_rng(seed) if seed is not None else self._rng
        variables = qubo.variables
        ising = qubo_to_ising(qubo)
        scale = ising.max_abs_weight()

        batch_sizes = self._batch_sizes(num_reads, num_gauges)
        gauges: List[GaugeTransform] = []
        programmed_qubos: List[QUBOModel] = []
        for _ in batch_sizes:
            gauge = random_gauge(variables, seed=rng)
            gauged = gauge.apply_to_ising(ising)
            noisy = self.noise.perturb_ising(gauged, self._static_bias, scale, seed=rng)
            gauges.append(gauge)
            programmed_qubos.append(ising_to_qubo(noisy))
        return ProgrammedAnneal(
            qubo=qubo,
            gauges=gauges,
            programmed_qubos=programmed_qubos,
            batch_sizes=batch_sizes,
            num_reads=num_reads,
            rng=rng,
        )

    def anneal_programmed(
        self, programmed: ProgrammedAnneal
    ) -> List[List[Dict[Variable, int]]]:
        """Anneal a programmed request, returning per-batch assignments.

        Fused in one block-diagonal problem when gauge batching is on,
        sequentially otherwise.
        """
        batch_sizes = programmed.batch_sizes
        rng = programmed.rng
        if self.batch_gauges and len(batch_sizes) > 1:
            # Fused blocks share one read count; anneal the maximum and let
            # each batch keep only its first batch_size reads.  The raw
            # state matrices are consumed directly — energies are evaluated
            # during assembly on the noiseless problem anyway.
            block_states, block_compiled = self.batched_sampler.sample_block_states(
                programmed.programmed_qubos, num_reads=max(batch_sizes), seed=rng
            )
            return self.batch_assignments(block_states, block_compiled, batch_sizes)
        return [
            self.sampler.sample(programmed_qubo, num_reads=batch_size, seed=rng)[0]
            for programmed_qubo, batch_size in zip(programmed.programmed_qubos, batch_sizes)
        ]

    @staticmethod
    def batch_assignments(
        block_states: List[np.ndarray],
        block_compiled: List[object],
        batch_sizes: List[int],
    ) -> List[List[Dict[Variable, int]]]:
        """Per-batch assignment dicts from raw block state matrices.

        Shared by the solo batched path and the cross-request fusion
        path so both decode fused states identically (each batch keeps
        only its first ``batch_size`` reads).
        """
        return [
            [
                {var: int(states[r, i]) for i, var in enumerate(block.variables)}
                for r in range(batch_size)
            ]
            for states, block, batch_size in zip(block_states, block_compiled, batch_sizes)
        ]

    def assemble_samples(
        self,
        programmed: ProgrammedAnneal,
        per_batch_assignments: List[List[Dict[Variable, int]]],
    ) -> SampleSet:
        """Undo the gauges and account the reads into a :class:`SampleSet`.

        Energies are evaluated under the original (noiseless) QUBO;
        device time follows the spec's per-read constant regardless of
        how long the simulation took on the host.
        """
        qubo = programmed.qubo
        samples: List[Sample] = []
        read_index = 0
        for gauge_index, (gauge, assignments) in enumerate(
            zip(programmed.gauges, per_batch_assignments)
        ):
            for assignment in assignments:
                original = gauge.apply_to_binary(assignment)
                energy = qubo.energy(original)
                samples.append(
                    Sample(
                        assignment=original,
                        energy=energy,
                        read_index=read_index,
                        gauge_index=gauge_index,
                    )
                )
                read_index += 1

        _READS_TOTAL.inc(programmed.num_reads)
        _GAUGES_TOTAL.inc(len(programmed.batch_sizes))
        return SampleSet(
            samples=samples,
            per_read_time_ms=self.time_per_read_ms,
            programming_time_ms=self.programming_time_ms * len(programmed.batch_sizes),
            info={
                "device": self.spec.name,
                "num_reads": programmed.num_reads,
                "num_gauges": len(programmed.batch_sizes),
                "num_problem_qubits": len(qubo.variables),
            },
        )

    @staticmethod
    def _batch_sizes(num_reads: int, num_gauges: int) -> List[int]:
        """Split ``num_reads`` into ``num_gauges`` near-equal batches."""
        base, remainder = divmod(num_reads, num_gauges)
        return [base + (1 if i < remainder else 0) for i in range(num_gauges)]
