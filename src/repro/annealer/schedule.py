"""Annealing temperature schedules.

The classical simulated-annealing sampler sweeps the inverse temperature
``beta`` from a hot start to a cold end.  The default geometric schedule
mirrors common practice (and D-Wave's ``neal`` default); a linear
schedule is provided for the schedule-sensitivity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DeviceError

__all__ = ["AnnealingSchedule", "geometric_beta_schedule", "linear_beta_schedule"]


@dataclass(frozen=True)
class AnnealingSchedule:
    """A fixed sequence of inverse temperatures, one per sweep."""

    betas: tuple

    def __post_init__(self) -> None:
        if not self.betas:
            raise DeviceError("an annealing schedule needs at least one sweep")
        if any(beta <= 0 for beta in self.betas):
            raise DeviceError("all inverse temperatures must be positive")

    @property
    def num_sweeps(self) -> int:
        """Number of sweeps in the schedule."""
        return len(self.betas)

    def as_array(self) -> np.ndarray:
        """The schedule as a numpy array."""
        return np.asarray(self.betas, dtype=float)


def geometric_beta_schedule(
    beta_start: float, beta_end: float, num_sweeps: int
) -> AnnealingSchedule:
    """Geometrically interpolated schedule from ``beta_start`` to ``beta_end``."""
    if beta_start <= 0 or beta_end <= 0:
        raise DeviceError("inverse temperatures must be positive")
    if num_sweeps <= 0:
        raise DeviceError("num_sweeps must be positive")
    if num_sweeps == 1:
        return AnnealingSchedule(betas=(beta_end,))
    betas = np.geomspace(beta_start, beta_end, num_sweeps)
    return AnnealingSchedule(betas=tuple(float(b) for b in betas))


def linear_beta_schedule(
    beta_start: float, beta_end: float, num_sweeps: int
) -> AnnealingSchedule:
    """Linearly interpolated schedule from ``beta_start`` to ``beta_end``."""
    if beta_start <= 0 or beta_end <= 0:
        raise DeviceError("inverse temperatures must be positive")
    if num_sweeps <= 0:
        raise DeviceError("num_sweeps must be positive")
    if num_sweeps == 1:
        return AnnealingSchedule(betas=(beta_end,))
    betas = np.linspace(beta_start, beta_end, num_sweeps)
    return AnnealingSchedule(betas=tuple(float(b) for b in betas))


def default_schedule_for(max_abs_weight: float, num_sweeps: int = 100) -> AnnealingSchedule:
    """A geometric schedule scaled to the problem's weight magnitude.

    The hot end accepts moves of the order of the largest weight with
    ~50 % probability; the cold end freezes single-unit moves.
    """
    max_abs_weight = max(max_abs_weight, 1e-9)
    beta_start = 0.7 / max_abs_weight
    beta_end = 20.0 / max(1e-9, min(1.0, max_abs_weight)) if max_abs_weight < 1.0 else 20.0
    beta_end = max(beta_end, beta_start * 10.0)
    return geometric_beta_schedule(beta_start, beta_end, num_sweeps)
