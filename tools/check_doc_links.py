#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Scans the given markdown files (or directories of them) for inline
links/images ``[text](target)`` and verifies that every *relative*
target exists on disk, resolved against the containing file. External
schemes (http/https/mailto) and pure in-page anchors (``#...``) are
skipped; ``path#anchor`` targets are checked for the path part.

Usage::

    python tools/check_doc_links.py README.md docs
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Inline markdown links/images; deliberately simple — the docs here do
#: not use reference-style links or angle-bracket destinations.
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def check_file(path: Path) -> List[Tuple[int, str]]:
    """Broken relative links in one markdown file as ``(line, target)``."""
    broken: List[Tuple[int, str]] = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if not (path.parent / file_part).exists():
                broken.append((line_number, target))
    return broken


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", help="markdown files or directories")
    args = parser.parse_args(argv)

    files: List[Path] = []
    for raw in args.paths:
        root = Path(raw)
        files.extend(sorted(root.rglob("*.md")) if root.is_dir() else [root])
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2

    failures = 0
    for file in files:
        for line_number, target in check_file(file):
            print(f"{file}:{line_number}: broken link -> {target}")
            failures += 1
    checked = len(files)
    if failures:
        print(f"FAIL: {failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"OK: no broken relative links in {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
