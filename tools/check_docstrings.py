#!/usr/bin/env python3
"""Docstring-coverage gate (a dependency-free `interrogate` equivalent).

Walks the given source trees, counts docstring-carrying definitions —
modules, public classes and public functions/methods — and fails when
coverage drops below the threshold. Private names (leading underscore)
and dunders other than ``__init__``-less are skipped; ``__init__``
itself is exempt because the convention here documents parameters on the
class docstring.

Usage::

    python tools/check_docstrings.py --fail-under 85 src/repro
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def _is_public(name: str) -> bool:
    """Whether ``name`` counts towards the coverage denominator."""
    if name.startswith("__") and name.endswith("__"):
        return False
    return not name.startswith("_")


def _definitions(tree: ast.Module, module_label: str) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified_name, has_docstring)`` for countable definitions."""
    yield module_label, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not _is_public(child.name):
                    continue
                qualified = f"{prefix}.{child.name}"
                yield qualified, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualified)

    yield from walk(tree, module_label)


def collect(paths: List[str]) -> List[Tuple[str, bool]]:
    """All countable definitions under ``paths`` (files or directories)."""
    results: List[Tuple[str, bool]] = []
    for raw in paths:
        root = Path(raw)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            tree = ast.parse(file.read_text(), filename=str(file))
            results.extend(_definitions(tree, str(file)))
    return results


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", help="source files or directories")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=85.0,
        help="minimum acceptable coverage percentage (default 85)",
    )
    parser.add_argument(
        "--list-missing", action="store_true", help="print every undocumented definition"
    )
    args = parser.parse_args(argv)

    definitions = collect(args.paths)
    if not definitions:
        print("no Python definitions found", file=sys.stderr)
        return 2
    documented = sum(1 for _, has in definitions if has)
    coverage = 100.0 * documented / len(definitions)
    missing = [name for name, has in definitions if not has]
    print(
        f"docstring coverage: {coverage:.1f}% "
        f"({documented}/{len(definitions)} definitions documented)"
    )
    if args.list_missing or coverage < args.fail_under:
        for name in missing:
            print(f"  missing: {name}")
    if coverage < args.fail_under:
        print(f"FAIL: coverage {coverage:.1f}% is below --fail-under {args.fail_under}%")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
