#!/usr/bin/env python3
"""Static lint for Prometheus metric naming conventions.

Walks the given Python files (or directories of them) and inspects
every ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call
whose first argument is a string literal.  Names must follow the
repository conventions so the exposition stays scrapable and greppable:

* every series is ``repro_``-prefixed lowercase snake case,
* counters end in ``_total`` (Prometheus counter convention),
* gauges and histograms do **not** end in ``_total``,
* histograms carry an explicit unit suffix (``_ms``, ``_seconds``
  or ``_bytes``), since the bucket bounds are meaningless without one.

Dynamically built names (f-strings, variables) are skipped — the lint
is a cheap net for the common literal case, not a type system.

Usage::

    python tools/check_metric_names.py src benchmarks
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Registry methods whose first argument is a metric name.
_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")

_NAME_PATTERN = re.compile(r"^repro_[a-z0-9]+(_[a-z0-9]+)*$")

#: Unit suffixes accepted on histogram names.
_HISTOGRAM_UNITS = ("_ms", "_seconds", "_bytes")


def check_source(path: Path, source: str) -> List[Tuple[int, str]]:
    """Convention violations in one file as ``(line, message)``."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"cannot parse file: {exc.msg}")]
    violations: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _INSTRUMENT_METHODS:
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
            continue  # dynamic name; out of scope
        name = first.value
        kind = func.attr
        if not _NAME_PATTERN.match(name):
            violations.append(
                (node.lineno, f"{kind} {name!r} is not repro_-prefixed lowercase snake case")
            )
            continue
        if kind == "counter" and not name.endswith("_total"):
            violations.append((node.lineno, f"counter {name!r} must end in '_total'"))
        if kind != "counter" and name.endswith("_total"):
            violations.append(
                (node.lineno, f"{kind} {name!r} must not end in '_total' (counters only)")
            )
        if kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
            violations.append(
                (
                    node.lineno,
                    f"histogram {name!r} needs a unit suffix "
                    f"({', '.join(_HISTOGRAM_UNITS)})",
                )
            )
    return violations


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", help="python files or directories")
    args = parser.parse_args(argv)

    files: List[Path] = []
    for raw in args.paths:
        root = Path(raw)
        files.extend(sorted(root.rglob("*.py")) if root.is_dir() else [root])
    if not files:
        print("no python files found", file=sys.stderr)
        return 2

    failures = 0
    for file in files:
        for line_number, message in check_source(file, file.read_text()):
            print(f"{file}:{line_number}: {message}")
            failures += 1
    if failures:
        print(f"FAIL: {failures} metric naming violation(s) across {len(files)} file(s)")
        return 1
    print(f"OK: metric names conform in {len(files)} python file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
