#!/usr/bin/env python3
"""Perf-regression gate over BENCH documents.

Compares a freshly produced ``BENCH_<suite>.json`` against the
committed baseline under ``benchmark_results/baselines/`` and fails
when throughput dropped or tail latency grew beyond the tolerance
(default ±25%, sized for noisy shared CI runners):

* ``totals.throughput_jobs_per_s`` must be >= baseline * (1 - tol),
* ``totals.latency_ms.p99``        must be <= baseline * (1 + tol),
* ``totals.failures``              must be 0.

Per-scenario numbers are compared too, but only *reported* — a single
scenario on a noisy runner should not fail the build when the totals
hold.  Both documents are schema-validated first; on failure the gate
prints both environment fingerprints so apples/oranges comparisons are
obvious.

Usage::

    python tools/check_bench_regression.py benchmark_results/BENCH_server.json
    python tools/check_bench_regression.py current.json --baseline other.json \
        --tolerance 0.25

Refreshing the baseline (after an intentional perf change, on a quiet
machine)::

    PYTHONPATH=src REPRO_BENCH_SERVER_SECONDS=10 python -m pytest \
        benchmarks/bench_server_throughput.py -q \
        -o python_files='bench_*.py' -o python_functions='bench_*'
    cp benchmark_results/BENCH_server.json benchmark_results/baselines/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

# The tools live next to src/; make `repro` importable when the caller
# did not set PYTHONPATH (CI does, direct invocation may not).
_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.schema import BenchSchemaError, load_bench_document  # noqa: E402

#: Default location of committed baselines, relative to the repo root.
BASELINE_DIR = _REPO_ROOT / "benchmark_results" / "baselines"


def _default_baseline_path(current_path: Path, suite: str) -> Path:
    """The committed baseline matching ``suite`` (BENCH_<suite>.json)."""
    named = BASELINE_DIR / f"BENCH_{suite}.json"
    if named.exists():
        return named
    return BASELINE_DIR / current_path.name


def compare_documents(current: dict, baseline: dict, tolerance: float) -> List[str]:
    """Hard failures of ``current`` against ``baseline`` (empty = pass)."""
    failures: List[str] = []
    if current["suite"] != baseline["suite"]:
        failures.append(
            f"suite mismatch: current is {current['suite']!r}, "
            f"baseline is {baseline['suite']!r}"
        )
        return failures
    if current["mode"] != baseline["mode"]:
        failures.append(
            f"mode mismatch: current ran in {current['mode']!r} mode, the "
            f"baseline in {baseline['mode']!r} — the numbers are not comparable"
        )
        return failures

    current_totals = current["totals"]
    baseline_totals = baseline["totals"]

    if current_totals["failures"]:
        failures.append(f"current run has {current_totals['failures']} failed job(s)")

    throughput = current_totals["throughput_jobs_per_s"]
    throughput_floor = baseline_totals["throughput_jobs_per_s"] * (1.0 - tolerance)
    if throughput < throughput_floor:
        failures.append(
            f"throughput regressed: {throughput:.3f} jobs/s < floor "
            f"{throughput_floor:.3f} (baseline "
            f"{baseline_totals['throughput_jobs_per_s']:.3f}, tol ±{tolerance:.0%})"
        )

    p99 = current_totals["latency_ms"]["p99"]
    p99_ceiling = baseline_totals["latency_ms"]["p99"] * (1.0 + tolerance)
    if p99 > p99_ceiling:
        failures.append(
            f"p99 latency regressed: {p99:.3f} ms > ceiling {p99_ceiling:.3f} "
            f"(baseline {baseline_totals['latency_ms']['p99']:.3f}, "
            f"tol ±{tolerance:.0%})"
        )
    return failures


def report_scenarios(current: dict, baseline: dict, tolerance: float) -> List[str]:
    """Advisory per-scenario drift notes (never fail the gate alone)."""
    notes: List[str] = []
    baseline_by_name = {s["name"]: s for s in baseline["scenarios"]}
    for scenario in current["scenarios"]:
        reference = baseline_by_name.get(scenario["name"])
        if reference is None:
            notes.append(f"scenario {scenario['name']!r} has no baseline entry (new?)")
            continue
        throughput_floor = reference["throughput_jobs_per_s"] * (1.0 - tolerance)
        if scenario["throughput_jobs_per_s"] < throughput_floor:
            notes.append(
                f"scenario {scenario['name']!r} throughput "
                f"{scenario['throughput_jobs_per_s']:.3f} below floor "
                f"{throughput_floor:.3f}"
            )
        p99_ceiling = reference["latency_ms"]["p99"] * (1.0 + tolerance)
        if scenario["latency_ms"]["p99"] > p99_ceiling:
            notes.append(
                f"scenario {scenario['name']!r} p99 {scenario['latency_ms']['p99']:.3f} ms "
                f"above ceiling {p99_ceiling:.3f}"
            )
    for name in baseline_by_name:
        if name not in {s["name"] for s in current["scenarios"]}:
            notes.append(f"scenario {name!r} present in baseline but missing from current run")
    return notes


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("current", help="freshly produced BENCH_<suite>.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline document (default: {BASELINE_DIR}/<matching name>)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative tolerance on throughput and p99 (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        print(f"error: tolerance must be in (0, 1), got {args.tolerance}", file=sys.stderr)
        return 2

    current_path = Path(args.current)
    try:
        current = load_bench_document(current_path)
    except BenchSchemaError as exc:
        print(f"FAIL: current document invalid: {exc}", file=sys.stderr)
        return 1

    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else _default_baseline_path(current_path, current["suite"])
    )
    if not baseline_path.exists():
        print(
            f"FAIL: no baseline at {baseline_path}; commit one "
            "(see the module docstring for the refresh recipe)",
            file=sys.stderr,
        )
        return 1
    try:
        baseline = load_bench_document(baseline_path)
    except BenchSchemaError as exc:
        print(f"FAIL: baseline document invalid: {exc}", file=sys.stderr)
        return 1

    failures = compare_documents(current, baseline, args.tolerance)
    for note in report_scenarios(current, baseline, args.tolerance):
        print(f"note: {note}")

    current_totals = current["totals"]
    baseline_totals = baseline["totals"]
    print(
        f"current : {current_totals['throughput_jobs_per_s']:.3f} jobs/s, "
        f"p99 {current_totals['latency_ms']['p99']:.3f} ms "
        f"({current_path})"
    )
    print(
        f"baseline: {baseline_totals['throughput_jobs_per_s']:.3f} jobs/s, "
        f"p99 {baseline_totals['latency_ms']['p99']:.3f} ms "
        f"({baseline_path})"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print("current env : " + json.dumps(current.get("env", {})), file=sys.stderr)
        print("baseline env: " + json.dumps(baseline.get("env", {})), file=sys.stderr)
        return 1
    print(f"OK: within ±{args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
