"""Figure 7: maximal problem dimensions representable with a qubit budget.

The paper's Figure 7 projects which combinations of query count and
plans-per-query can be represented with 1152, 2304 and 4608 qubits
(i.e. the current machine and two hypothetical doublings).  The frontier
is analytic — it inverts the qubit-count formulas of Section 6 — and is
reported here for both the clustered (per-query TRIAD) pattern used in
the paper's analysis and the compact per-cell pattern used for the
evaluation workloads.
"""

from repro.core.complexity import max_queries_for_qubits
from repro.experiments.figures import figure7_rows, figure7_table


def bench_figure7_capacity_frontier(benchmark, save_exhibit):
    budgets = (1152, 2304, 4608)

    def build():
        return figure7_rows(qubit_budgets=budgets, plans_range=tuple(range(2, 21)))

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    clustered = figure7_table(qubit_budgets=budgets, plans_range=tuple(range(2, 21)))
    native = figure7_table(
        qubit_budgets=budgets, plans_range=tuple(range(2, 6)), pattern="native"
    )
    save_exhibit("figure7_capacity", clustered + "\n\n" + native)

    # Monotone in both directions: more plans per query -> fewer queries,
    # more qubits -> at least as many queries.
    for row in rows:
        assert row[1] <= row[2] <= row[3]
    first_budget_queries = [row[1] for row in rows]
    assert first_budget_queries == sorted(first_budget_queries, reverse=True)
    # Doubling the qubit budget (roughly) doubles the representable queries.
    for plans in (2, 5, 10, 20):
        base = max_queries_for_qubits(1152, plans)
        assert max_queries_for_qubits(2304, plans) >= 2 * base
