"""Figure 4: solution cost as a function of optimization time (2 plans/query).

The paper's Figure 4 plots, for 20 instances with 537 queries and two
plans per query, how the scaled execution cost of the best solution
evolves over optimization time for the quantum annealer (QA), the integer
programming solvers (LIN-MQO / LIN-QUB), iterated hill climbing (CLIMB)
and the genetic algorithms (GA(50), GA(200)).

This benchmark regenerates the same series for the two-plan class at the
active profile's scale.  The headline qualitative finding asserted here:
the QA trajectory reaches its near-final quality within milliseconds of
device time, while the classical solvers need orders of magnitude more
wall-clock time to match it.
"""

from repro.experiments.figures import figure4_table, quality_vs_time_rows
from repro.experiments.runner import QA_SOLVER_NAME


def bench_figure4_cost_vs_time_two_plans(
    benchmark, runner, profile, evaluation_results, save_exhibit
):
    test_class = next(c for c in evaluation_results if c.plans_per_query == 2)
    results = evaluation_results[test_class]
    solver_names = runner.solver_names()

    def build():
        return quality_vs_time_rows(results, profile.checkpoints_ms, solver_names)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_exhibit(
        "figure4_quality_vs_time_2plans",
        figure4_table(results, profile.checkpoints_ms, solver_names, test_class),
    )

    qa_index = 1 + solver_names.index(QA_SOLVER_NAME)
    final_row = rows[-1]
    first_row = rows[0]
    # Structural checks hold at every profile scale.
    for column in range(1, len(solver_names) + 1):
        series = [row[column] for row in rows]
        assert series == sorted(series, reverse=True)
        assert all(0.0 <= value <= 1.0 for value in series)
    # QA is already at (or very near) its final quality at the 1 ms checkpoint,
    # i.e. after the first couple of annealing reads.
    assert first_row[qa_index] <= final_row[qa_index] + 0.15
    # At the earliest checkpoint QA is at least as good as every classical
    # solver (they have barely produced a solution after 1 ms).  On the toy
    # instances of the smoke profile the classical solvers can be instant,
    # so the ordering claim is only asserted for non-trivial sizes.
    if test_class.num_queries >= 20:
        for index, name in enumerate(solver_names, start=1):
            if name == QA_SOLVER_NAME:
                continue
            assert first_row[qa_index] <= first_row[index] + 1e-9
