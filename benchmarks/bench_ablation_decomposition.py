"""Ablation: single-QUBO mapping versus decomposition into a series of QUBOs.

The paper's outlook proposes mapping one MQO instance into a *series* of
QUBO problems to overcome the qubit-budget limit of the single-QUBO
mapping.  This ablation compares the two on a workload that still fits
as a single QUBO (so quality can be compared head to head) and reports
qubit usage, device time and solution cost, plus the iterated
hill-climbing baseline as a classical reference.
"""

from repro.baselines.hillclimb import IteratedHillClimbing
from repro.core.decomposition import DecomposedQuantumMQO
from repro.core.pipeline import QuantumMQO
from repro.embedding.triad import triad_qubit_count
from repro.experiments.workloads import generate_embedded_testcase
from repro.utils.tables import format_table


def bench_ablation_decomposition(benchmark, runner, profile, save_exhibit):
    num_queries = max(16, int(160 * profile.query_scale))
    testcase = generate_embedded_testcase(num_queries, 2, runner.topology, seed=23)
    problem = testcase.problem

    def run_all():
        rows = []
        single_pipeline = QuantumMQO(device=runner.device, embedder=testcase.embedding, seed=9)
        single = single_pipeline.solve(
            problem, num_reads=profile.num_reads, num_gauges=profile.num_gauges
        )
        rows.append(
            (
                "single QUBO (paper)",
                single.best_solution.cost,
                single.physical_mapping.num_qubits,
                round(single.device_time_ms, 1),
            )
        )

        decomposer = DecomposedQuantumMQO(
            pipeline=QuantumMQO(device=runner.device, seed=9),
            max_queries_per_cluster=max(4, num_queries // 6),
        )
        decomposed = decomposer.solve(
            problem, num_reads=profile.num_reads, num_gauges=profile.num_gauges
        )
        rows.append(
            (
                f"series of {decomposed.num_clusters} QUBOs (outlook)",
                decomposed.solution.cost,
                decomposed.max_qubits_used,
                round(decomposed.total_device_time_ms, 1),
            )
        )

        climb = IteratedHillClimbing().solve(
            problem, time_budget_ms=profile.classical_budget_ms, seed=9
        )
        rows.append(("CLIMB (classical reference)", climb.best_cost, 0, round(climb.total_time_ms, 1)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Context row: what a problem-agnostic single global TRIAD would need for
    # the full instance (the qubit budget the decomposition avoids).
    full_triad_qubits = triad_qubit_count(problem.num_plans)
    rows = list(rows) + [
        ("single global TRIAD (for reference)", float("nan"), full_triad_qubits, float("nan"))
    ]
    table = format_table(
        ["approach", "best cost", "max qubits needed", "time (ms)"],
        rows,
        title="Ablation: single-QUBO mapping vs decomposition into a series of QUBOs",
    )
    save_exhibit("ablation_decomposition", table)

    single_row, decomposed_row, _climb_row, _triad_row = rows
    # Decomposition needs far fewer qubits per solve than embedding the whole
    # problem as one fully connected QUBO would ...
    assert decomposed_row[2] < full_triad_qubits
    # ... while solution quality stays in the same ballpark as the single-QUBO
    # mapping (conditioning recovers part, but not all, of the cross-cluster
    # savings).
    assert decomposed_row[1] <= single_row[1] * 1.5 + 10.0
