"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation.  The expensive part — generating instances and running the
quantum-annealing pipeline plus all classical baselines — is shared
across benchmarks through session-scoped fixtures; each benchmark then
builds and prints its exhibit from those results.

The scale is controlled by the ``REPRO_PROFILE`` environment variable
(``smoke`` / ``default`` / ``paper``); see DESIGN.md and EXPERIMENTS.md.
Rendered exhibits are also written to ``benchmark_results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session")
def profile():
    """The active benchmark profile (REPRO_PROFILE or 'default')."""
    return get_profile()


@pytest.fixture(scope="session")
def runner(profile):
    """A shared experiment runner (device, topology, solver line-up)."""
    return ExperimentRunner(profile=profile, seed=20160909)


@pytest.fixture(scope="session")
def evaluation_results(runner):
    """Results of the full evaluation: every class, every solver.

    Computed once per benchmark session and reused by Table 1 and
    Figures 4-6.
    """
    return runner.run_all_classes()


@pytest.fixture(scope="session")
def save_exhibit():
    """Callable that prints an exhibit and persists it under benchmark_results/."""

    def _save(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _save
