"""Figure 2: the TRIAD embedding pattern in different sizes.

The paper's Figure 2 shows TRIAD patterns with 5, 8 and 12 chains and a
variant with two broken qubits (which invalidate whole chains).  This
benchmark reconstructs each pattern on a defect-free Chimera, reports the
chain lengths and qubit counts, and repeats the 12-chain pattern with two
broken qubits to show the lost chains.
"""

from repro.chimera.topology import ChimeraGraph
from repro.embedding.triad import TriadEmbedder, triad_qubit_count
from repro.utils.tables import format_table


def bench_figure2_triad_patterns(benchmark, save_exhibit):
    topology = ChimeraGraph(12, 12)
    embedder = TriadEmbedder(topology)

    def build_patterns():
        return {
            size: embedder.embed_clique(list(range(size))) for size in (5, 8, 12)
        }

    embeddings = benchmark.pedantic(build_patterns, rounds=1, iterations=1)

    rows = []
    for size, embedding in embeddings.items():
        rows.append(
            (
                size,
                embedding.num_qubits,
                triad_qubit_count(size),
                embedding.max_chain_length(),
                round(embedding.average_chain_length(), 3),
            )
        )

    # Figure 2(d): two broken qubits knock out whole chains.
    plain = TriadEmbedder(topology).pattern_chains(3)
    broken_topology = topology.with_defects([plain[0][0], plain[5][1]])
    usable = TriadEmbedder(broken_topology).usable_pattern_chains(3)
    rows.append(("12 (2 broken qubits)", sum(len(c) for c in usable), "-", 4, len(usable)))

    table = format_table(
        ["chains", "qubits used", "formula n*(t+1)", "max chain", "avg chain / usable chains"],
        rows,
        title="Figure 2: TRIAD pattern sizes (5, 8, 12 chains) and broken-qubit variant",
    )
    save_exhibit("figure2_triad", table)

    assert embeddings[5].num_qubits == triad_qubit_count(5)
    assert embeddings[8].num_qubits == triad_qubit_count(8)
    assert embeddings[12].num_qubits == triad_qubit_count(12)
    assert len(usable) == 10  # two of the twelve chains become unusable
