"""Solver-server throughput: closed-loop multi-client load generation.

Boots a real :class:`SolverServer` (in-process, ephemeral port), then
hammers it with ``REPRO_BENCH_SERVER_CLIENTS`` concurrent closed-loop
clients — each on its own thread and TCP connection, submitting the
next job the moment the previous result arrives — for
``REPRO_BENCH_SERVER_SECONDS`` of wall clock.  Every job runs the CLIMB
heuristic under a small fixed budget with a unique seed, so the
workload is budget-bound, coalescing-free and measures the server
stack: protocol, queue, worker pool, executor.

Reported: client-observed p50/p99 latency, jobs/sec, and the server's
own ``stats`` snapshot (per-endpoint latencies, queue wait).  Besides
the text exhibit, everything is persisted as a schema-validated BENCH
document (``benchmark_results/BENCH_server.json``, see
``docs/benchmarks.md``) — the same shape every other benchmark emits —
which CI archives as an artifact and gates with
``tools/check_bench_regression.py`` against the committed baseline in
``benchmark_results/baselines/``.
"""

import os
import threading
import time
from pathlib import Path

from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.server.app import ServerConfig, run_server_in_thread
from repro.server.client import SolverClient

DURATION_S = float(os.environ.get("REPRO_BENCH_SERVER_SECONDS", "5"))
NUM_CLIENTS = max(4, int(os.environ.get("REPRO_BENCH_SERVER_CLIENTS", "4")))
SERVER_WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "4"))
BUDGET_MS = 40.0
SOLVER = "CLIMB"


def _client_loop(port, client_index, deadline, latencies_ms, failures):
    """One closed-loop client: solve, record latency, repeat."""
    with SolverClient(
        port=port, client_name=f"bench-{client_index}", timeout_s=60.0
    ) as client:
        iteration = 0
        while time.perf_counter() < deadline:
            seed = client_index * 1_000_000 + iteration
            spec = {"queries": 5, "plans": 2, "generator_seed": seed % 64}
            start = time.perf_counter()
            result = client.solve(
                spec, solver=SOLVER, budget_ms=BUDGET_MS, seed=seed
            )
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
            if not result.ok:
                failures.append(result.error)
            iteration += 1


def bench_server_throughput(benchmark, save_exhibit):
    handle = run_server_in_thread(
        ServerConfig(port=0, workers=SERVER_WORKERS, queue_capacity=256)
    )
    per_client_latencies = [[] for _ in range(NUM_CLIENTS)]
    failures = []

    def run_load():
        deadline = time.perf_counter() + DURATION_S
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(handle.port, index, deadline, per_client_latencies[index], failures),
                name=f"bench-client-{index}",
            )
            for index in range(NUM_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    try:
        elapsed_s = benchmark.pedantic(run_load, rounds=1, iterations=1)
        with SolverClient(port=handle.port) as observer:
            server_stats = observer.stats()
    finally:
        handle.stop()

    latencies = [sample for bucket in per_client_latencies for sample in bucket]
    assert NUM_CLIENTS >= 4, "the load test must run at least 4 concurrent clients"
    assert not failures, f"server returned failures: {failures[:3]}"
    assert latencies, "no jobs completed during the load window"
    assert all(bucket for bucket in per_client_latencies), (
        "every client must complete jobs — per-client fairness is broken otherwise"
    )
    jobs_per_s = len(latencies) / elapsed_s
    latency_block = summarize_latencies(latencies)

    scenario = {
        "name": "closed-loop-climb",
        "family": "paper",
        "jobs": len(latencies),
        "failures": 0,
        "duration_s": round(elapsed_s, 3),
        "throughput_jobs_per_s": round(jobs_per_s, 3),
        "latency_ms": latency_block,
        "min_jobs_per_client": min(len(bucket) for bucket in per_client_latencies),
        "server_stats": server_stats,
    }
    totals = {
        "jobs": len(latencies),
        "failures": 0,
        "duration_s": round(elapsed_s, 3),
        "throughput_jobs_per_s": round(jobs_per_s, 3),
        "latency_ms": latency_block,
    }
    document = build_bench_document(
        suite="server",
        mode="server",
        scenarios=[scenario],
        totals=totals,
        config={
            "clients": NUM_CLIENTS,
            "server_workers": SERVER_WORKERS,
            "window_s": DURATION_S,
            "budget_ms": BUDGET_MS,
            "solver": SOLVER,
        },
    )
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    save_bench_document(document, results_dir / "BENCH_server.json")

    lines = [
        f"Server throughput: {NUM_CLIENTS} closed-loop clients, "
        f"{SERVER_WORKERS} workers, {DURATION_S:.0f}s window",
        "",
        f"  {'jobs_completed':>20}: {len(latencies)}",
        f"  {'jobs_per_second':>20}: {round(jobs_per_s, 3)}",
    ]
    for key in ("p50", "p99", "max"):
        lines.append(f"  {'latency_' + key + '_ms':>20}: {latency_block[key]}")
    lines.append(f"  {'min_jobs_per_client':>20}: {scenario['min_jobs_per_client']}")
    lines.append(
        f"  {'server queue_wait':>20}: p50={server_stats['queue_wait']['p50_ms']} ms, "
        f"p99={server_stats['queue_wait']['p99_ms']} ms"
    )
    save_exhibit("server_throughput", "\n".join(lines))

    # Sanity floor, not a race: the stack must sustain real concurrent
    # traffic (p99 should stay within a few job budgets of p50).
    assert jobs_per_s > NUM_CLIENTS / 2.0, f"server too slow: {document['totals']}"
    assert latency_block["p99"] >= latency_block["p50"]
    assert server_stats["counters"]["jobs_completed"] >= len(latencies)
