"""Solver-server throughput: closed-loop multi-client load generation.

Boots a real :class:`SolverServer` (in-process, ephemeral port), then
hammers it with ``REPRO_BENCH_SERVER_CLIENTS`` concurrent closed-loop
clients — each on its own thread and TCP connection, submitting the
next job the moment the previous result arrives — for
``REPRO_BENCH_SERVER_SECONDS`` of wall clock.  Every job runs the CLIMB
heuristic under a small fixed budget with a unique seed, so the
workload is budget-bound, coalescing-free and measures the server
stack: protocol, queue, worker tier, executor.

Two scenarios run back to back against the same workload:

* ``closed-loop-climb``         — the threaded :class:`WorkerPool`,
* ``closed-loop-climb-sharded`` — the multi-process :class:`ShardPool`
  (``REPRO_BENCH_SERVER_SHARDS`` shard processes, default
  ``max(2, cpu_count)``), where jobs are hash-routed to per-core shard
  processes and problems cross the pipes zero-copy.

The BENCH document's ``totals`` aggregate both scenarios (the schema
requires jobs to sum), so the regression gate
(``tools/check_bench_regression.py``) holds the *combined* throughput
and tail latency to the committed baseline — a regression in either
tier trips it.  On a multicore runner the sharded tier is expected to
multiply throughput (solves no longer serialise on one GIL); on a
single-core machine the two are roughly equal minus pipe overhead.
"""

import os
import threading
import time
from pathlib import Path

from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.server.app import ServerConfig, run_server_in_thread
from repro.server.client import SolverClient
from repro.server.readiness import wait_for_server

DURATION_S = float(os.environ.get("REPRO_BENCH_SERVER_SECONDS", "5"))
NUM_CLIENTS = max(4, int(os.environ.get("REPRO_BENCH_SERVER_CLIENTS", "4")))
SERVER_WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "4"))
SERVER_SHARDS = int(
    os.environ.get("REPRO_BENCH_SERVER_SHARDS", str(max(2, os.cpu_count() or 1)))
)
BUDGET_MS = 40.0
SOLVER = "CLIMB"


def _client_loop(port, client_index, deadline, latencies_ms, failures):
    """One closed-loop client: solve, record latency, repeat."""
    with SolverClient(
        port=port, client_name=f"bench-{client_index}", timeout_s=60.0
    ) as client:
        iteration = 0
        while time.perf_counter() < deadline:
            seed = client_index * 1_000_000 + iteration
            spec = {"queries": 5, "plans": 2, "generator_seed": seed % 64}
            start = time.perf_counter()
            result = client.solve(
                spec, solver=SOLVER, budget_ms=BUDGET_MS, seed=seed
            )
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
            if not result.ok:
                failures.append(result.error)
            iteration += 1


def _run_scenario(name, config):
    """Boot a server with ``config``, run the closed loop, summarise."""
    handle = run_server_in_thread(config)
    per_client_latencies = [[] for _ in range(NUM_CLIENTS)]
    failures = []
    try:
        if config.shards > 0:
            wait_for_server(
                port=handle.port, timeout_s=30.0, min_shards=config.shards
            )
        deadline = time.perf_counter() + DURATION_S
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(handle.port, index, deadline, per_client_latencies[index], failures),
                name=f"bench-client-{index}",
            )
            for index in range(NUM_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed_s = time.perf_counter() - start
        with SolverClient(port=handle.port) as observer:
            server_stats = observer.stats()
    finally:
        handle.stop()

    latencies = [sample for bucket in per_client_latencies for sample in bucket]
    assert not failures, f"{name}: server returned failures: {failures[:3]}"
    assert latencies, f"{name}: no jobs completed during the load window"
    assert all(bucket for bucket in per_client_latencies), (
        f"{name}: every client must complete jobs — per-client fairness is "
        "broken otherwise"
    )
    jobs_per_s = len(latencies) / elapsed_s
    scenario = {
        "name": name,
        "family": "paper",
        "jobs": len(latencies),
        "failures": 0,
        "duration_s": round(elapsed_s, 3),
        "throughput_jobs_per_s": round(jobs_per_s, 3),
        "latency_ms": summarize_latencies(latencies),
        "min_jobs_per_client": min(len(bucket) for bucket in per_client_latencies),
        "server_stats": server_stats,
    }
    return scenario, latencies


def bench_server_throughput(benchmark, save_exhibit):
    assert NUM_CLIENTS >= 4, "the load test must run at least 4 concurrent clients"
    scenarios = []
    all_latencies = []

    def run_load():
        for name, config in (
            (
                "closed-loop-climb",
                ServerConfig(port=0, workers=SERVER_WORKERS, queue_capacity=256),
            ),
            (
                "closed-loop-climb-sharded",
                ServerConfig(
                    port=0,
                    workers=SERVER_WORKERS,
                    queue_capacity=256,
                    shards=SERVER_SHARDS,
                ),
            ),
        ):
            scenario, latencies = _run_scenario(name, config)
            scenarios.append(scenario)
            all_latencies.extend(latencies)

    benchmark.pedantic(run_load, rounds=1, iterations=1)
    threaded, sharded = scenarios

    total_duration_s = threaded["duration_s"] + sharded["duration_s"]
    totals = {
        "jobs": len(all_latencies),
        "failures": 0,
        "duration_s": round(total_duration_s, 3),
        "throughput_jobs_per_s": round(len(all_latencies) / total_duration_s, 3),
        "latency_ms": summarize_latencies(all_latencies),
    }
    document = build_bench_document(
        suite="server",
        mode="server",
        scenarios=scenarios,
        totals=totals,
        config={
            "clients": NUM_CLIENTS,
            "server_workers": SERVER_WORKERS,
            "server_shards": SERVER_SHARDS,
            "window_s": DURATION_S,
            "budget_ms": BUDGET_MS,
            "solver": SOLVER,
        },
    )
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    save_bench_document(document, results_dir / "BENCH_server.json")

    speedup = sharded["throughput_jobs_per_s"] / threaded["throughput_jobs_per_s"]
    lines = [
        f"Server throughput: {NUM_CLIENTS} closed-loop clients, "
        f"{DURATION_S:.0f}s window per scenario",
        "",
    ]
    for scenario in scenarios:
        tier = (
            f"{SERVER_SHARDS} shard processes"
            if scenario is sharded
            else f"{SERVER_WORKERS} worker threads"
        )
        lines.append(f"  {scenario['name']} ({tier}):")
        lines.append(f"  {'jobs_completed':>20}: {scenario['jobs']}")
        lines.append(f"  {'jobs_per_second':>20}: {scenario['throughput_jobs_per_s']}")
        for key in ("p50", "p99", "max"):
            lines.append(f"  {'latency_' + key + '_ms':>20}: {scenario['latency_ms'][key]}")
        lines.append(
            f"  {'min_jobs_per_client':>20}: {scenario['min_jobs_per_client']}"
        )
        queue_wait = scenario["server_stats"]["queue_wait"]
        lines.append(
            f"  {'server queue_wait':>20}: p50={queue_wait['p50_ms']} ms, "
            f"p99={queue_wait['p99_ms']} ms"
        )
        lines.append("")
    lines.append(
        f"  sharded/threaded throughput: {speedup:.2f}x "
        f"(cpu_count={os.cpu_count()}; the multiplier needs real cores)"
    )
    save_exhibit("server_throughput", "\n".join(lines))

    # Sanity floors, not a race: both tiers must sustain real concurrent
    # traffic.  The >= 4x multicore speedup target is enforced by the
    # regression gate against a multicore baseline, not asserted here —
    # on a single-core runner the sharded tier cannot exceed 1x.
    for scenario in scenarios:
        assert scenario["throughput_jobs_per_s"] > NUM_CLIENTS / 2.0, (
            f"server too slow: {scenario['name']}: {scenario['throughput_jobs_per_s']}"
        )
        assert scenario["latency_ms"]["p99"] >= scenario["latency_ms"]["p50"]
        stats = scenario["server_stats"]
        assert stats["counters"]["jobs_completed"] >= scenario["jobs"]
    assert sharded["server_stats"]["shards"]["live"] == SERVER_SHARDS
    assert sharded["server_stats"]["shards"]["restarts"] == 0
