"""Cost of the observability layer when tracing is disabled.

The obs PR's claim: instrumenting the pipeline (spans around QUBO
build / embed / anneal / decode, counters in the baselines' improvement
recorder and the annealer) costs **≤ 3 %** of job wall-clock when
tracing is disabled — the default.  The disabled path must be cheap
enough to leave compiled in everywhere, with no "production build"
switch.

Three exhibits:

* micro: per-call cost of a disabled ``tracer.span(...)`` (returns the
  shared no-op singleton after one ``enabled`` check) and of a registry
  ``Counter.inc``,
* QA pipeline: ``QuantumMQO.solve`` — the span-densest instrumented
  operation — timed with tracing disabled; the per-job overhead is
  *spans-per-job × no-op cost*, counted against the measured latency,
* GA anytime: the fixed-budget scenario dominating
  ``bench_classical_core`` — the instrumented hot path there is the
  improvement counter, so the overhead is *increments × inc cost*.

The per-call costs are measured in a bare loop, so the loop overhead is
charged **to the observability layer** — the reported fractions are
upper bounds.  Results land in a schema-valid
``benchmark_results/BENCH_obs.json`` gated by
``tools/check_bench_regression.py`` against the committed baseline.
"""

import time
from pathlib import Path

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.core.pipeline import QuantumMQO
from repro.mqo.generator import generate_paper_testcase
from repro.obs import configure_tracer, get_registry, get_tracer
from repro.workloads import get_family

SEED = 20160909
MICRO_CALLS = 200_000
MICRO_BATCHES = 5
QA_REPEATS = 8
GA_REPEATS = 10
GA_BUDGET_MS = 60.0
MAX_DISABLED_OVERHEAD = 0.03


def _times_of(callable_, repeats):
    """Per-iteration wall-clock seconds (list) of ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - start)
    return times


def _scenario(name, family, times_s, extra=None):
    """One BENCH scenario record from per-iteration wall clocks."""
    latencies_ms = [t * 1000.0 for t in times_s]
    duration_s = sum(times_s)
    record = {
        "name": name,
        "family": family,
        "jobs": len(times_s),
        "failures": 0,
        "duration_s": round(duration_s, 3),
        "throughput_jobs_per_s": round(len(times_s) / duration_s if duration_s else 0.0, 3),
        "latency_ms": summarize_latencies(latencies_ms),
        "params": {},
        "seed": SEED,
    }
    if extra:
        record["exhibit"] = extra
    return record


def bench_obs_overhead(benchmark, save_exhibit):
    was_enabled = get_tracer().enabled
    configure_tracer(False)
    tracer = get_tracer()
    try:
        exhibit_lines = ["Observability disabled-path overhead", ""]
        scenarios = []

        # ---------------- micro: no-op span / counter inc ---------------- #
        span = tracer.span

        def span_batch():
            for _ in range(MICRO_CALLS):
                span("bench.noop")

        counter = get_registry().counter("repro_bench_obs_overhead_total")
        inc = counter.inc

        def inc_batch():
            for _ in range(MICRO_CALLS):
                inc()

        span_batch_s = _times_of(span_batch, MICRO_BATCHES)
        inc_batch_s = _times_of(inc_batch, MICRO_BATCHES)
        span_call_s = min(span_batch_s) / MICRO_CALLS
        inc_call_s = min(inc_batch_s) / MICRO_CALLS
        scenarios.append(
            _scenario(
                "noop_span_micro",
                "micro",
                span_batch_s,
                extra={
                    "calls_per_batch": MICRO_CALLS,
                    "span_ns_per_call": round(span_call_s * 1e9, 1),
                    "counter_inc_ns_per_call": round(inc_call_s * 1e9, 1),
                },
            )
        )
        exhibit_lines.append(
            f"  disabled span(): {span_call_s * 1e9:7.1f} ns/call   "
            f"Counter.inc(): {inc_call_s * 1e9:7.1f} ns/call"
        )

        # ---------------- QA pipeline: span-densest operation ------------- #
        problem = generate_paper_testcase(10, 2, seed=SEED)
        pipeline = QuantumMQO(seed=SEED)
        pipeline.solve(problem, num_reads=100)  # warm caches

        # Count the spans one solve emits (enabled run, then drained).
        configure_tracer(True)
        get_tracer().drain()
        pipeline.solve(problem, num_reads=100)
        spans_per_solve = len(get_tracer().drain())
        configure_tracer(False)
        assert spans_per_solve >= 5, spans_per_solve

        qa_s = _times_of(lambda: pipeline.solve(problem, num_reads=100), QA_REPEATS)
        qa_overhead = spans_per_solve * span_call_s / min(qa_s)
        scenarios.append(
            _scenario(
                "qa_pipeline_disabled",
                "paper",
                qa_s,
                extra={
                    "spans_per_solve": spans_per_solve,
                    "overhead_fraction": round(qa_overhead, 6),
                },
            )
        )
        exhibit_lines.append(
            f"  QA solve: {min(qa_s) * 1000:8.2f} ms/job, {spans_per_solve} span sites "
            f"-> {qa_overhead:.4%} overhead"
        )

        # ---------------- GA anytime: counter-instrumented hot path ------- #
        tpch = get_family("tpch_mix").build(SEED, num_queries=180, density=0.5)
        ga = GeneticAlgorithmSolver(population_size=50)
        improvements = get_registry().counter("repro_solver_improvements_total")

        before = improvements.value
        ga.solve(tpch, GA_BUDGET_MS, seed=SEED)
        incs_per_job = improvements.value - before

        ga_s = _times_of(lambda: ga.solve(tpch, GA_BUDGET_MS, seed=SEED), GA_REPEATS)
        ga_overhead = incs_per_job * inc_call_s / min(ga_s)
        scenarios.append(
            _scenario(
                "ga_anytime_disabled",
                "tpch_mix",
                ga_s,
                extra={
                    "budget_ms": GA_BUDGET_MS,
                    "counter_incs_per_job": incs_per_job,
                    "overhead_fraction": round(ga_overhead, 6),
                },
            )
        )
        exhibit_lines.append(
            f"  GA anytime: {min(ga_s) * 1000:8.2f} ms/job, {incs_per_job} counter incs "
            f"-> {ga_overhead:.4%} overhead"
        )

        benchmark.pedantic(span_batch, rounds=1, iterations=1)

        all_times = span_batch_s + qa_s + ga_s
        all_latencies = [t * 1000.0 for t in all_times]
        total_jobs = sum(s["jobs"] for s in scenarios)
        total_duration = sum(s["duration_s"] for s in scenarios)
        totals = {
            "jobs": total_jobs,
            "failures": 0,
            "duration_s": round(total_duration, 3),
            "throughput_jobs_per_s": round(
                total_jobs / total_duration if total_duration else 0.0, 3
            ),
            "latency_ms": summarize_latencies(all_latencies),
        }
        document = build_bench_document(
            suite="obs",
            mode="service",
            scenarios=scenarios,
            totals=totals,
            config={
                "solver": "QA/GA(50)",
                "budget_ms": GA_BUDGET_MS,
                "seed": SEED,
                "span_ns_per_call": round(span_call_s * 1e9, 1),
                "counter_inc_ns_per_call": round(inc_call_s * 1e9, 1),
                "overhead_fractions": {
                    "qa_pipeline": round(qa_overhead, 6),
                    "ga_anytime": round(ga_overhead, 6),
                },
            },
        )
        results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
        results_dir.mkdir(exist_ok=True)
        save_bench_document(document, results_dir / "BENCH_obs.json")

        save_exhibit("obs_overhead", "\n".join(exhibit_lines))

        assert qa_overhead <= MAX_DISABLED_OVERHEAD, (
            f"disabled-path span overhead above {MAX_DISABLED_OVERHEAD:.0%} on the "
            f"QA pipeline: {qa_overhead:.4%}"
        )
        assert ga_overhead <= MAX_DISABLED_OVERHEAD, (
            f"disabled-path counter overhead above {MAX_DISABLED_OVERHEAD:.0%} on the "
            f"GA anytime scenario: {ga_overhead:.4%}"
        )
    finally:
        configure_tracer(was_enabled)
