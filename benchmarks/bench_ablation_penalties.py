"""Ablation: minimal penalty weights versus aggressively scaled penalties.

The paper argues for choosing the validity-penalty weights w_L and w_M as
low as possible because a large weight range degrades annealing quality
(Section 4).  This ablation solves the same instance with the minimal
weights (paper), with 5x scaled weights and with 25x scaled weights and
reports the achieved solution quality.
"""

from repro.core.logical import LogicalMappingConfig
from repro.core.pipeline import QuantumMQO
from repro.experiments.workloads import generate_embedded_testcase
from repro.utils.tables import format_table


def bench_ablation_penalty_scaling(benchmark, runner, profile, save_exhibit):
    testcase = generate_embedded_testcase(
        max(8, int(96 * profile.query_scale)), 2, runner.topology, seed=13
    )
    scales = {"minimal (paper)": 1.0, "5x penalties": 5.0, "25x penalties": 25.0}

    def run_all():
        rows = []
        for label, scale in scales.items():
            pipeline = QuantumMQO(
                device=runner.device,
                embedder=testcase.embedding,
                logical_config=LogicalMappingConfig(weight_scale=scale),
                seed=11,
            )
            result = pipeline.solve(
                testcase.problem, num_reads=profile.num_reads, num_gauges=profile.num_gauges
            )
            rows.append((label, result.best_solution.cost, result.num_invalid_reads))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["penalty weights", "best cost", "invalid reads"],
        rows,
        title="Ablation: penalty-weight scaling (paper recommends minimal weights)",
    )
    save_exhibit("ablation_penalties", table)

    by_label = {row[0]: row for row in rows}
    # The paper's minimal weights should not be beaten by the most
    # aggressively scaled variant (larger analog range hurts).
    assert by_label["minimal (paper)"][1] <= by_label["25x penalties"][1] + 1e-9
