"""Table 1: milliseconds until LIN-MQO finds the optimal solution.

The paper reports the minimum, median and maximum time the integer
linear programming solver (applied directly to the MQO formulation)
needs to find the optimal solution, for the four test-case classes.
The absolute times depend on the profile's instance sizes and on our
pure-Python branch-and-bound being slower than a commercial solver; the
expected *shape* — more queries take disproportionately longer — is
asserted below.
"""

from repro.experiments.tables import table1_rows, table1_table


def bench_table1_time_to_optimal(benchmark, evaluation_results, save_exhibit):
    def build():
        return table1_rows(evaluation_results)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_exhibit("table1_lin_mqo_time_to_optimal", table1_table(evaluation_results))

    assert len(rows) == len(evaluation_results)
    for _queries, minimum, median, maximum in rows:
        assert 0.0 <= minimum <= median <= maximum
    # The largest class (most queries) should not be solved faster than the
    # smallest class on median.
    assert rows[0][2] >= rows[-1][2] * 0.5
