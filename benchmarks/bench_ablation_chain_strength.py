"""Ablation: Choi's per-chain strength rule versus a uniform chain strength.

The paper sets the equality-enforcing chain weights per chain using
Choi's bound (Section 5).  A common simpler alternative is one uniform
chain strength for the whole problem.  This ablation solves the same
embedded instance with both rules (and with a deliberately too-weak
uniform strength) and compares solution quality and broken-chain rates.
"""

from repro.core.physical import PhysicalMappingConfig
from repro.core.pipeline import QuantumMQO
from repro.experiments.workloads import generate_embedded_testcase
from repro.utils.tables import format_table


def bench_ablation_chain_strength(benchmark, runner, profile, save_exhibit):
    testcase = generate_embedded_testcase(
        max(6, int(24 * profile.query_scale * 4)), 4, runner.topology, seed=42
    )
    strong_uniform = 2.0 * max(
        abs(w) for w in list(testcase.problem.savings.values()) + [testcase.problem.max_plan_cost()]
    )
    configs = {
        "Choi bound (paper)": PhysicalMappingConfig(),
        "uniform (strong)": PhysicalMappingConfig(uniform_chain_strength=strong_uniform),
        "uniform (too weak)": PhysicalMappingConfig(uniform_chain_strength=0.25),
    }

    def run_all():
        rows = []
        for label, config in configs.items():
            pipeline = QuantumMQO(
                device=runner.device,
                embedder=testcase.embedding,
                physical_config=config,
                seed=7,
            )
            result = pipeline.solve(
                testcase.problem, num_reads=profile.num_reads, num_gauges=profile.num_gauges
            )
            rows.append(
                (
                    label,
                    result.best_solution.cost,
                    result.num_broken_chain_reads,
                    result.num_invalid_reads,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["chain-strength rule", "best cost", "broken-chain reads", "invalid reads"],
        rows,
        title="Ablation: chain-strength rule (lower cost / fewer broken chains is better)",
    )
    save_exhibit("ablation_chain_strength", table)

    by_label = {row[0]: row for row in rows}
    # A clearly too-weak chain strength must produce more broken chains than
    # the paper's rule.
    assert by_label["uniform (too weak)"][2] >= by_label["Choi bound (paper)"][2]
    # The paper's rule should not be worse than the too-weak setting in cost.
    assert by_label["Choi bound (paper)"][1] <= by_label["uniform (too weak)"][1] + 1e-9
