"""Figure 5: solution cost as a function of optimization time (5 plans/query).

The paper's Figure 5 repeats the Figure 4 comparison for the class with
108 queries and five alternative plans per query.  There the quantum
annealer's advantage shrinks: it still dominates for very short
optimization times, but the integer programming solver reaches optimal
solutions within roughly a hundred milliseconds, and the quality gap of
the annealer grows compared with the two-plan class because five-plan
queries need more qubits per logical variable.
"""

from repro.experiments.figures import figure5_table, quality_vs_time_rows
from repro.experiments.runner import QA_SOLVER_NAME


def bench_figure5_cost_vs_time_five_plans(
    benchmark, runner, profile, evaluation_results, save_exhibit
):
    five_plan_class = next(c for c in evaluation_results if c.plans_per_query == 5)
    two_plan_class = next(c for c in evaluation_results if c.plans_per_query == 2)
    results = evaluation_results[five_plan_class]
    solver_names = runner.solver_names()

    def build():
        return quality_vs_time_rows(results, profile.checkpoints_ms, solver_names)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_exhibit(
        "figure5_quality_vs_time_5plans",
        figure5_table(results, profile.checkpoints_ms, solver_names, five_plan_class),
    )

    qa_index = 1 + solver_names.index(QA_SOLVER_NAME)
    lin_index = 1 + solver_names.index("LIN-MQO")
    # Structural checks hold at every profile scale.
    for column in range(1, len(solver_names) + 1):
        series = [row[column] for row in rows]
        assert series == sorted(series, reverse=True)
        assert all(0.0 <= value <= 1.0 for value in series)
    # By the final checkpoint the exact solver has caught up with (or
    # overtaken) the annealer — the paper reports optimal solutions within
    # ~100 ms for this class.
    assert rows[-1][lin_index] <= rows[-1][qa_index] + 1e-9

    # The ordering claims of the paper (QA superior at small time scales,
    # larger QA quality gap than in the two-plan class) only materialise on
    # instances of non-trivial size; the smoke profile runs toy instances.
    if five_plan_class.num_queries >= 20:
        assert rows[0][qa_index] <= rows[0][lin_index] + 1e-9
        two_plan_rows = quality_vs_time_rows(
            evaluation_results[two_plan_class], profile.checkpoints_ms, solver_names
        )
        assert rows[-1][qa_index] >= two_plan_rows[-1][qa_index] - 0.05
