"""Ablation: compact per-cell embedding versus a single global TRIAD.

DESIGN.md calls out the embedding pattern as a key design choice: the
clustered / per-cell patterns spend far fewer qubits than one global
TRIAD connecting every pair of plans, at the price of supporting only
sharing links the hardware can couple.  This ablation embeds the same
small workload both ways and compares qubit usage, chain lengths and the
resulting annealing quality.
"""

from repro.core.pipeline import QuantumMQO
from repro.embedding.triad import TriadEmbedder, triad_capacity
from repro.exceptions import EmbeddingNotFoundError
from repro.experiments.workloads import generate_embedded_testcase
from repro.utils.tables import format_table


def bench_ablation_embedding_pattern(benchmark, runner, profile, save_exhibit):
    # Pick the largest workload whose global TRIAD still fits on the
    # profile's (possibly defective) topology.
    topology = runner.topology
    upper = triad_capacity(topology.rows, topology.cols, topology.shore) // 2
    testcase = None
    triad_embedding = None
    for num_queries in range(min(20, upper), 3, -2):
        candidate = generate_embedded_testcase(num_queries, 2, topology, seed=31)
        try:
            triad_embedding = TriadEmbedder(topology).embed_clique(
                [plan.index for plan in candidate.problem.plans]
            )
        except EmbeddingNotFoundError:
            continue  # try a smaller workload
        testcase = candidate
        break
    assert testcase is not None and triad_embedding is not None
    embeddings = {
        "per-cell (paper workloads)": testcase.embedding,
        "single global TRIAD": triad_embedding,
    }

    def run_all():
        rows = []
        for label, embedding in embeddings.items():
            pipeline = QuantumMQO(device=runner.device, embedder=embedding, seed=3)
            result = pipeline.solve(
                testcase.problem, num_reads=profile.num_reads, num_gauges=profile.num_gauges
            )
            rows.append(
                (
                    label,
                    embedding.num_qubits,
                    round(embedding.average_chain_length(), 2),
                    embedding.max_chain_length(),
                    result.best_solution.cost,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["embedding", "qubits", "qubits/variable", "max chain", "best cost"],
        rows,
        title="Ablation: embedding pattern (same 20-query workload)",
    )
    save_exhibit("ablation_embedding", table)

    by_label = {row[0]: row for row in rows}
    per_cell = by_label["per-cell (paper workloads)"]
    triad = by_label["single global TRIAD"]
    # The structured per-cell pattern uses far fewer qubits and shorter chains.
    assert per_cell[1] < triad[1]
    assert per_cell[3] <= triad[3]
