"""Partition–solve–stitch decomposition at giant-instance scale.

Measures the two claims behind the decomposition fast path on the
``warehouse`` family (dense subject areas, sparse conformed links):

* **parallel vs sequential** — the same partition and per-cluster
  solver run twice at 10k plans: once through the wave schedule with a
  thread pool, once with the legacy fully-sequential conditioning.  The
  speedup is recorded per scenario (advisory on a single-core
  container, where the win comes from overlapping per-cluster overhead
  rather than real cores).
* **quality vs GREEDY** — at 10k and 50k plans the stitched cost is
  compared against the one-pass constructive greedy, the only other
  path that completes at this scale (the direct QA pipeline stops at
  device capacity, ~1.2k plans).

Each whole-instance solve is one "job"; its wall-clock is the latency
sample.  Scale knobs (environment): ``REPRO_BENCH_DECOMP_Q10`` /
``REPRO_BENCH_DECOMP_Q50`` (queries at 3 plans each, defaults 3400 /
16700 → ~10k / ~50k plans), ``REPRO_BENCH_DECOMP_CLUSTER_MS``
(per-cluster budget, default 5), ``REPRO_BENCH_DECOMP_WORKERS``
(parallel dispatch width, default 8) and
``REPRO_BENCH_DECOMP_CLUSTER_SIZE`` (queries per cluster, default 8).
"""

import os
import time
from pathlib import Path

from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.core.decomposition import ParallelDecomposition
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.registry import default_registry
from repro.workloads.families import build_warehouse

Q10 = int(os.environ.get("REPRO_BENCH_DECOMP_Q10", "3400"))
Q50 = int(os.environ.get("REPRO_BENCH_DECOMP_Q50", "16700"))
CLUSTER_MS = float(os.environ.get("REPRO_BENCH_DECOMP_CLUSTER_MS", "5"))
WORKERS = int(os.environ.get("REPRO_BENCH_DECOMP_WORKERS", "8"))
CLUSTER_SIZE = int(os.environ.get("REPRO_BENCH_DECOMP_CLUSTER_SIZE", "8"))
CLUSTER_SOLVERS = ("CLIMB",)
SEED = 20160909


def _decomposed_solve(problem, sequential):
    """One timed whole-instance solve; returns (outcome, wall_ms)."""
    # A fresh frontend per run: the result cache must not leak cluster
    # solves from the parallel run into the sequential one.
    pipeline = ParallelDecomposition(
        frontend=ServiceFrontend(cache=ResultCache(capacity=16)),
        max_cluster_size=CLUSTER_SIZE,
        cluster_solvers=CLUSTER_SOLVERS,
        max_workers=1 if sequential else WORKERS,
        cluster_budget_ms=CLUSTER_MS,
        sequential_conditioning=sequential,
    )
    start = time.perf_counter()
    outcome = pipeline.solve(problem, time_budget_ms=3_600_000.0, seed=SEED)
    wall_ms = (time.perf_counter() - start) * 1000.0
    assert not outcome.errors, f"cluster solves failed: {outcome.errors}"
    assert outcome.solution.is_valid
    return outcome, wall_ms


def _greedy_cost(problem):
    """Cost and wall-ms of the GREEDY reference on the same instance."""
    solver = default_registry().create("GREEDY")
    start = time.perf_counter()
    trajectory = solver.solve(problem, time_budget_ms=60_000.0, seed=SEED)
    wall_ms = (time.perf_counter() - start) * 1000.0
    return trajectory.best_cost, wall_ms


def _scenario(name, outcome, wall_ms, extra_params):
    """One schema-shaped scenario record for a single decomposed solve."""
    return {
        "name": name,
        "family": "warehouse",
        "jobs": 1,
        "failures": 0,
        "duration_s": round(wall_ms / 1000.0, 3),
        "throughput_jobs_per_s": round(1000.0 / wall_ms, 3) if wall_ms else 0.0,
        "latency_ms": summarize_latencies([wall_ms]),
        "params": {
            "plans": outcome.problem.num_plans,
            "clusters": outcome.num_clusters,
            "waves": outcome.num_waves,
            "cost": outcome.best_cost,
            "cluster_budget_ms": CLUSTER_MS,
            **extra_params,
        },
        "seed": SEED,
    }


def bench_decomposition(benchmark, save_exhibit):
    problem_10k = build_warehouse(seed=3, num_queries=Q10, plans_per_query=3)
    problem_50k = build_warehouse(seed=3, num_queries=Q50, plans_per_query=3)
    results = {}

    def run_all():
        for label, problem in (("10k", problem_10k), ("50k", problem_50k)):
            problem.arrays()  # warm the columnar view outside the timing
            par, par_ms = _decomposed_solve(problem, sequential=False)
            entry = {"parallel": (par, par_ms)}
            if label == "10k":  # the A/B only needs one scale
                entry["sequential"] = _decomposed_solve(problem, sequential=True)
            entry["greedy"] = _greedy_cost(problem)
            results[label] = entry

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    scenarios = []
    latencies = []
    par10, par10_ms = results["10k"]["parallel"]
    seq10, seq10_ms = results["10k"]["sequential"]
    par50, par50_ms = results["50k"]["parallel"]
    greedy10_cost, _ = results["10k"]["greedy"]
    greedy50_cost, greedy50_ms = results["50k"]["greedy"]
    speedup = seq10_ms / par10_ms if par10_ms else 0.0

    # Quality must beat the only other path that completes at this scale.
    assert par10.best_cost < greedy10_cost, (
        f"10k: decomposition ({par10.best_cost}) did not beat GREEDY ({greedy10_cost})"
    )
    assert par50.best_cost < greedy50_cost, (
        f"50k: decomposition ({par50.best_cost}) did not beat GREEDY ({greedy50_cost})"
    )
    # The wave schedule must expose real parallelism at 10k plans.
    assert par10.num_waves < par10.num_clusters / 4, (
        f"wave schedule too deep: {par10.num_waves} waves for {par10.num_clusters} clusters"
    )

    for name, outcome, wall_ms, params in (
        ("warehouse-10k-parallel", par10, par10_ms,
         {"workers": WORKERS, "speedup_vs_sequential": round(speedup, 3),
          "greedy_cost": greedy10_cost}),
        ("warehouse-10k-sequential", seq10, seq10_ms, {"workers": 1}),
        ("warehouse-50k-parallel", par50, par50_ms,
         {"workers": WORKERS, "greedy_cost": greedy50_cost,
          "greedy_wall_ms": round(greedy50_ms, 3)}),
    ):
        scenarios.append(_scenario(name, outcome, wall_ms, params))
        latencies.append(wall_ms)

    duration_s = sum(s["duration_s"] for s in scenarios)
    totals = {
        "jobs": len(scenarios),
        "failures": 0,
        "duration_s": round(duration_s, 3),
        "throughput_jobs_per_s": round(len(scenarios) / duration_s, 3) if duration_s else 0.0,
        "latency_ms": summarize_latencies(latencies),
    }
    document = build_bench_document(
        suite="decomposition",
        mode="service",
        scenarios=scenarios,
        totals=totals,
        config={
            "family": "warehouse",
            "queries": {"10k": Q10, "50k": Q50},
            "plans_per_query": 3,
            "cluster_solvers": list(CLUSTER_SOLVERS),
            "cluster_budget_ms": CLUSTER_MS,
            "max_cluster_size": CLUSTER_SIZE,
            "workers": WORKERS,
            "cpu_note": "speedup is advisory on single-core containers",
        },
    )
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    save_bench_document(document, results_dir / "BENCH_decomposition.json")

    gap10 = (greedy10_cost - par10.best_cost) / abs(greedy10_cost) if greedy10_cost else 0.0
    gap50 = (greedy50_cost - par50.best_cost) / abs(greedy50_cost) if greedy50_cost else 0.0
    save_exhibit(
        "BENCH_decomposition",
        "\n".join(
            [
                "Partition-solve-stitch decomposition (warehouse family, "
                f"CLIMB @ {CLUSTER_MS:.0f} ms per cluster)",
                "",
                f"  10k plans: {par10.num_clusters} clusters / {par10.num_waves} waves; "
                f"parallel {par10_ms / 1000.0:.2f} s vs sequential {seq10_ms / 1000.0:.2f} s "
                f"({speedup:.2f}x); cost {par10.best_cost:.0f} vs GREEDY "
                f"{greedy10_cost:.0f} ({gap10:+.1%})",
                f"  50k plans: {par50.num_clusters} clusters / {par50.num_waves} waves; "
                f"parallel {par50_ms / 1000.0:.2f} s; cost {par50.best_cost:.0f} vs GREEDY "
                f"{greedy50_cost:.0f} ({gap50:+.1%})",
            ]
        ),
    )
