"""Figure 6: average quantum speedup versus qubits per logical variable.

The paper's Figure 6 aggregates all four test-case classes: for each
class it plots the average speedup of the quantum annealer (time for the
best classical solver to match the quality of the first annealing run,
divided by the device time of that run) against the number of qubits
needed per logical variable.  The key shape: the speedup decreases as
more qubits per variable are required (i.e. as the number of plans per
query grows).
"""

from repro.experiments.figures import figure6_rows, figure6_table


def bench_figure6_speedup_vs_qubits_per_variable(
    benchmark, profile, evaluation_results, save_exhibit
):
    def build():
        return figure6_rows(evaluation_results, profile.classical_budget_ms)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_exhibit(
        "figure6_speedup",
        figure6_table(evaluation_results, profile.classical_budget_ms),
    )

    assert len(rows) == len(evaluation_results)
    ratios = [row[1] for row in rows]
    speedups = [row[2] for row in rows]
    # Qubits per variable grow from the 2-plan class towards the 5-plan class.
    assert ratios == sorted(ratios)
    assert ratios[0] >= 1.0
    assert all(speedup > 0 for speedup in speedups)
    # Headline shape: the class with the fewest qubits per variable enjoys the
    # largest quantum speedup, the most qubit-hungry class the smallest.
    assert speedups[0] >= speedups[-1]
