"""Sparse vs dense annealing hot path on a 512-variable Chimera QUBO.

The PR's claim: compiling QUBOs to CSR flat arrays and sweeping with
gather/CSR kernels makes the simulated annealer ≥5x faster and ≥10x
smaller in memory than the historical dense ``(n, n)`` implementation on
Chimera-shaped problems (degree ≤ 6), at equal seeds and sweeps.

Three exhibits:

* wall clock of the new sparse backend vs a faithful reimplementation
  of the pre-PR dense sampler (dense matrix, ``np.where`` Metropolis),
* compiled-problem memory: sparse arrays vs the dense coupling matrix,
* gauge-batch amortisation: the device's fused block-diagonal anneal
  vs sequentially annealing each gauge batch.

Results are persisted as JSON (``benchmark_results/sparse_annealer.json``)
so regressions are machine-checkable; `docs/annealer.md` quotes these
numbers.
"""

import json
import time
import warnings
from pathlib import Path

import numpy as np

from repro.annealer.compile import CompileCache, compile_qubo, greedy_coloring
from repro.annealer.schedule import default_schedule_for
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.chimera.topology import ChimeraGraph
from repro.qubo.random_qubo import random_chimera_qubo

NUM_SWEEPS = 64
NUM_READS = 32
SEED = 20160909
REPEATS = 5


class OldDenseSampler:
    """Faithful reimplementation of the pre-PR dense annealing hot path.

    Dense ``(n, n)`` coupling matrix, ``(num_reads, n)`` state layout,
    and the historical ``np.where``-based Metropolis step (which
    evaluates ``exp`` on every lane).  Kept here, not in the library, so
    the benchmark always races the new code against the true baseline.
    """

    def __init__(self, num_sweeps: int) -> None:
        self.num_sweeps = num_sweeps

    def sample_states(self, qubo, num_reads: int, seed) -> np.ndarray:
        """Anneal ``num_reads`` reads and return the final state matrix."""
        variables = qubo.variables
        index = {var: i for i, var in enumerate(variables)}
        n = len(variables)
        linear = np.zeros(n)
        coupling = np.zeros((n, n))
        adjacency = [[] for _ in range(n)]
        for var, weight in qubo.linear.items():
            linear[index[var]] = weight
        for (u, v), weight in qubo.quadratic.items():
            i, j = index[u], index[v]
            coupling[i, j] += weight
            coupling[j, i] += weight
            adjacency[i].append(j)
            adjacency[j].append(i)
        classes = [np.asarray(cls, dtype=int) for cls in greedy_coloring(adjacency)]
        max_abs = max(float(np.max(np.abs(linear))), float(np.max(np.abs(coupling))))
        rng = np.random.default_rng(seed)
        states = rng.integers(0, 2, size=(num_reads, n)).astype(float)
        betas = default_schedule_for(max_abs, self.num_sweeps).as_array()
        for beta in betas:
            for color_class in classes:
                local_field = linear[color_class] + states @ coupling[:, color_class]
                current = states[:, color_class]
                delta = (1.0 - 2.0 * current) * local_field
                accept = np.where(
                    delta <= 0.0, 1.0, np.exp(-beta * np.clip(delta, 0.0, 700.0))
                )
                flips = rng.random(size=current.shape) < accept
                states[:, color_class] = np.where(flips, 1.0 - current, current)
        return states


def _best_of(callable_, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def bench_sparse_annealer(benchmark, save_exhibit):
    topology = ChimeraGraph(8, 8)  # 512 qubits, degree <= 6
    qubo = random_chimera_qubo(topology.edges(), topology.qubits, seed=7)
    assert qubo.num_variables == 512

    sparse = SimulatedAnnealingSampler(
        num_sweeps=NUM_SWEEPS, compile_cache=CompileCache(maxsize=0)
    )
    old_dense = OldDenseSampler(num_sweeps=NUM_SWEEPS)

    def run_sparse():
        return sparse.sample_states(qubo, num_reads=NUM_READS, seed=SEED)

    def run_old_dense():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # the old path warns on exp overflow
            return old_dense.sample_states(qubo, NUM_READS, SEED)

    run_sparse(), run_old_dense()  # warm up numpy/scipy kernels
    sparse_s = _best_of(run_sparse)
    dense_s = _best_of(run_old_dense)
    benchmark.pedantic(run_sparse, rounds=1, iterations=1)
    speedup = dense_s / sparse_s

    # Optional lane: the native numba sweep kernel (skips cleanly when
    # the optional dependency is absent, e.g. in CI).
    from repro.annealer.numba_kernels import HAVE_NUMBA

    numba_s = None
    if HAVE_NUMBA:
        native = SimulatedAnnealingSampler(
            num_sweeps=NUM_SWEEPS, backend="numba", compile_cache=CompileCache(maxsize=0)
        )

        def run_numba():
            return native.sample_states(qubo, num_reads=NUM_READS, seed=SEED)

        run_numba()  # warm up (triggers JIT compilation)
        numba_s = _best_of(run_numba)

    compiled = compile_qubo(qubo)
    dense_bytes = compiled.num_variables**2 * 8
    sparse_bytes = compiled.nbytes_sparse()
    memory_ratio = dense_bytes / sparse_bytes

    # Gauge-batch amortisation: 10 same-structure blocks fused vs looped.
    from repro.annealer.batched import BatchedAnnealer

    small_topology = ChimeraGraph(3, 3)  # service-sized problems: dispatch-bound
    blocks = [
        random_chimera_qubo(small_topology.edges(), small_topology.qubits, seed=s)
        for s in range(10)
    ]
    batched = BatchedAnnealer(num_sweeps=NUM_SWEEPS)
    looped = SimulatedAnnealingSampler(num_sweeps=NUM_SWEEPS)
    batched.sample_blocks(blocks, num_reads=4, seed=0)  # warm up

    def run_fused():
        return batched.sample_blocks(blocks, num_reads=NUM_READS, seed=SEED)

    def run_looped():
        return [looped.sample(b, num_reads=NUM_READS, seed=SEED) for b in blocks]

    fused_s = _best_of(run_fused, repeats=3)
    looped_s = _best_of(run_looped, repeats=3)

    record = {
        "variables": compiled.num_variables,
        "interactions": qubo.num_interactions,
        "num_sweeps": NUM_SWEEPS,
        "num_reads": NUM_READS,
        "sparse_ms": round(sparse_s * 1000, 2),
        "dense_ms": round(dense_s * 1000, 2),
        "speedup": round(speedup, 2),
        "sparse_bytes": sparse_bytes,
        "dense_bytes": dense_bytes,
        "memory_ratio": round(memory_ratio, 2),
        "gauge_batch_fused_ms": round(fused_s * 1000, 2),
        "gauge_batch_looped_ms": round(looped_s * 1000, 2),
        "gauge_batch_speedup": round(looped_s / fused_s, 2),
    }
    if numba_s is not None:
        record["numba_ms"] = round(numba_s * 1000, 2)
        record["numba_speedup_vs_sparse"] = round(sparse_s / numba_s, 2)
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "sparse_annealer.json").write_text(json.dumps(record, indent=2))

    lines = ["Sparse vs dense annealing hot path (512-variable Chimera QUBO)", ""]
    lines += [f"  {key:>22}: {value}" for key, value in record.items()]
    save_exhibit("sparse_annealer", "\n".join(lines))

    assert speedup >= 5.0, f"sparse hot path too slow vs dense baseline: {record}"
    assert memory_ratio >= 10.0, f"sparse arrays too large vs dense matrix: {record}"
