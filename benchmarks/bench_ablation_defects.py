"""Ablation: sensitivity of the device capacity to the broken-qubit yield.

The D-Wave 2X used in the paper had 55 of 1152 qubit sites broken, which
is what limits the maximal class sizes (537 / 253 / 140 / 108 queries).
This ablation sweeps the defect rate and reports how many queries of each
plans-per-query setting still fit, quantifying how sensitive the paper's
problem-size limits are to manufacturing yield.
"""

from repro.chimera.defects import DefectModel
from repro.chimera.topology import ChimeraGraph
from repro.embedding.native import NativeClusteredEmbedder
from repro.utils.tables import format_table


def bench_ablation_defect_sensitivity(benchmark, save_exhibit):
    defect_rates = (0.0, 55.0 / 1152.0, 0.10, 0.20)
    plans_range = (2, 3, 4, 5)

    def sweep():
        rows = []
        for rate in defect_rates:
            topology = ChimeraGraph(12, 12)
            if rate > 0:
                topology = DefectModel(broken_fraction=rate).apply(topology, seed=17)
            embedder = NativeClusteredEmbedder(topology)
            rows.append(
                tuple(
                    [f"{rate * 100:.1f}%", topology.num_qubits]
                    + [embedder.capacity(plans) for plans in plans_range]
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["defect rate", "functional qubits"]
        + [f"max queries @ {plans} plans" for plans in plans_range],
        rows,
        title="Ablation: device yield vs representable problem size",
    )
    save_exhibit("ablation_defects", table)

    # Capacity decreases monotonically as the defect rate grows, for every
    # plans-per-query setting.
    for column in range(2, 2 + len(plans_range)):
        capacities = [row[column] for row in rows]
        assert capacities == sorted(capacities, reverse=True)
    # The paper-yield row brackets the published 537-query limit for 2 plans.
    paper_row = rows[1]
    assert 480 <= paper_row[2] <= 576
