"""Service-layer throughput: sequential loop versus batch executor.

Solves the same 32-instance workload twice — once inline (workers=0,
the pre-service status quo of one instance at a time on one core) and
once on a 4-worker process pool — and records the wall-clock speedup.
Each job runs the CLIMB heuristic under a fixed per-job budget, so the
workload is budget-bound and the comparison measures the executor's
concurrency, not solver luck.

Besides the usual text exhibit, the speedup is persisted as JSON
(``benchmark_results/service_throughput.json``) so regressions are
machine-checkable.
"""

import json
import time
from pathlib import Path

from repro.mqo.generator import generate_paper_testcase
from repro.service.batch import BatchExecutor
from repro.service.jobs import SolveRequest

NUM_INSTANCES = 32
WORKERS = 4
BUDGET_MS = 150.0
BASE_SEED = 20160909


def _workload():
    return [
        SolveRequest(
            problem=generate_paper_testcase(6, 2, seed=index),
            solver="CLIMB",
            time_budget_ms=BUDGET_MS,
            job_id=f"bench-{index}",
        )
        for index in range(NUM_INSTANCES)
    ]


def bench_service_batch_throughput(benchmark, save_exhibit):
    requests = _workload()

    start = time.perf_counter()
    sequential = BatchExecutor(workers=0).run(requests, base_seed=BASE_SEED)
    sequential_s = time.perf_counter() - start

    def run_batch():
        return BatchExecutor(workers=WORKERS).run(requests, base_seed=BASE_SEED)

    start = time.perf_counter()
    batched = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    batched_s = time.perf_counter() - start

    assert len(sequential) == len(batched) == NUM_INSTANCES
    assert all(result.ok for result in sequential + batched)
    # Per-job seeds derive from (base_seed, position) only, so both runs
    # hand every solver the same stream.  (Exact cost equality is not
    # asserted: CLIMB is wall-clock-budgeted, so worker contention can
    # truncate restarts differently.)
    assert [r.seed for r in sequential] == [r.seed for r in batched]

    speedup = sequential_s / batched_s
    record = {
        "instances": NUM_INSTANCES,
        "workers": WORKERS,
        "budget_ms_per_job": BUDGET_MS,
        "sequential_s": round(sequential_s, 3),
        "batch_s": round(batched_s, 3),
        "speedup": round(speedup, 3),
    }
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "service_throughput.json").write_text(json.dumps(record, indent=2))

    lines = ["Service throughput: sequential loop vs batch executor", ""]
    lines += [f"  {key:>18}: {value}" for key, value in record.items()]
    save_exhibit("service_throughput", "\n".join(lines))

    # The batch executor must beat the sequential loop on a budget-bound
    # workload; 4 workers leave comfortable margin over pool overhead.
    assert speedup > 1.2, f"batch executor too slow: {record}"
