"""Service-layer throughput: sequential loop versus batch executor.

Solves the same 32-instance workload twice — once inline (workers=0,
the pre-service status quo of one instance at a time on one core) and
once on a 4-worker process pool — and records the wall-clock speedup.
Each job runs the CLIMB heuristic under a fixed per-job budget, so the
workload is budget-bound and the comparison measures the executor's
concurrency, not solver luck.

Both passes are persisted as one schema-validated BENCH document
(``benchmark_results/BENCH_service.json``; scenario ``sequential``
versus ``batch-pool``), so the speedup is machine-checkable with the
same tooling as every other benchmark.
"""

import time
from pathlib import Path

from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.mqo.generator import generate_paper_testcase
from repro.service.batch import BatchExecutor
from repro.service.jobs import SolveRequest

NUM_INSTANCES = 32
WORKERS = 4
BUDGET_MS = 150.0
BASE_SEED = 20160909


def _workload():
    return [
        SolveRequest(
            problem=generate_paper_testcase(6, 2, seed=index),
            solver="CLIMB",
            time_budget_ms=BUDGET_MS,
            job_id=f"bench-{index}",
        )
        for index in range(NUM_INSTANCES)
    ]


def _scenario(name, results, elapsed_s):
    """One BENCH scenario block from a pass over the workload."""
    latencies_ms = [result.total_time_ms for result in results]
    return {
        "name": name,
        "family": "paper",
        "jobs": len(results),
        "failures": sum(1 for result in results if not result.ok),
        "duration_s": round(elapsed_s, 3),
        "throughput_jobs_per_s": round(len(results) / elapsed_s, 3),
        "latency_ms": summarize_latencies(latencies_ms),
    }


def bench_service_batch_throughput(benchmark, save_exhibit):
    requests = _workload()

    start = time.perf_counter()
    sequential = BatchExecutor(workers=0).run(requests, base_seed=BASE_SEED)
    sequential_s = time.perf_counter() - start

    def run_batch():
        return BatchExecutor(workers=WORKERS).run(requests, base_seed=BASE_SEED)

    start = time.perf_counter()
    batched = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    batched_s = time.perf_counter() - start

    assert len(sequential) == len(batched) == NUM_INSTANCES
    assert all(result.ok for result in sequential + batched)
    # Per-job seeds derive from (base_seed, position) only, so both runs
    # hand every solver the same stream.  (Exact cost equality is not
    # asserted: CLIMB is wall-clock-budgeted, so worker contention can
    # truncate restarts differently.)
    assert [r.seed for r in sequential] == [r.seed for r in batched]

    speedup = sequential_s / batched_s
    scenarios = [
        _scenario("sequential", sequential, sequential_s),
        _scenario("batch-pool", batched, batched_s),
    ]
    totals = {
        "jobs": 2 * NUM_INSTANCES,
        "failures": 0,
        "duration_s": round(sequential_s + batched_s, 3),
        "throughput_jobs_per_s": round(
            2 * NUM_INSTANCES / (sequential_s + batched_s), 3
        ),
        "latency_ms": summarize_latencies(
            [r.total_time_ms for r in sequential + batched]
        ),
    }
    document = build_bench_document(
        suite="service",
        mode="service",
        scenarios=scenarios,
        totals=totals,
        config={
            "instances": NUM_INSTANCES,
            "workers": WORKERS,
            "budget_ms": BUDGET_MS,
            "base_seed": BASE_SEED,
            "speedup": round(speedup, 3),
        },
    )
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    save_bench_document(document, results_dir / "BENCH_service.json")

    lines = ["Service throughput: sequential loop vs batch executor", ""]
    lines += [
        f"  {'instances':>18}: {NUM_INSTANCES}",
        f"  {'workers':>18}: {WORKERS}",
        f"  {'budget_ms_per_job':>18}: {BUDGET_MS}",
        f"  {'sequential_s':>18}: {round(sequential_s, 3)}",
        f"  {'batch_s':>18}: {round(batched_s, 3)}",
        f"  {'speedup':>18}: {round(speedup, 3)}",
    ]
    save_exhibit("service_throughput", "\n".join(lines))

    # The batch executor must beat the sequential loop on a budget-bound
    # workload; 4 workers leave comfortable margin over pool overhead.
    assert speedup > 1.2, f"batch executor too slow: {document['config']}"
