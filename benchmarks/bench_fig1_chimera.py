"""Figure 1: the Chimera unit-cell structure of the D-Wave 2X.

The paper's Figure 1 shows four neighbouring unit cells of eight qubits
each, connected in the Chimera structure.  This benchmark rebuilds the
full device topology, verifies its structural invariants (cell count,
qubit count, maximum degree of six) and renders a four-cell extract.
"""

from repro.chimera.hardware import DWAVE_2X
from repro.utils.tables import format_table


def bench_figure1_chimera_structure(benchmark, save_exhibit):
    def build():
        return DWAVE_2X.build_topology(seed=0)

    topology = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ("unit cells", topology.num_cells),
        ("qubit sites", topology.num_qubits_total),
        ("functional qubits", topology.num_qubits),
        ("broken qubits", len(topology.broken_qubits)),
        ("couplers", topology.num_couplers),
        ("max couplers per qubit", topology.max_degree()),
    ]
    table = format_table(
        ["property", "value"],
        rows,
        title="Figure 1: D-Wave 2X Chimera structure (simulated device)",
    )
    art = topology.render_ascii(max_cells=2)
    save_exhibit("figure1_chimera", table + "\n\nFour neighbouring unit cells:\n" + art)

    assert topology.num_cells == 144
    assert topology.num_qubits_total == 1152
    assert topology.num_qubits == 1097
    assert topology.max_degree() <= 6
