"""Cross-request anneal fusion: open-loop streaming A/B measurement.

Takes the built-in ``stream-poisson`` / ``stream-bursty`` suites as the
measuring stick, but re-registers their scenarios under hot arrival
schedules (``stream-poisson-hot`` / ``stream-bursty-hot``) sized to
push a solo :class:`~repro.server.workers.WorkerPool` past saturation:
at the bench's small QA budget one solve costs ~20 ms of single-core
time, so the default 50 jobs/s Poisson rate and 16-job bursts make the
solo tier queue while the :class:`~repro.server.workers.FusionPool`
drains the same schedule by annealing whole windows as one fused
block-diagonal problem (see ``docs/fusion.md``).

Each suite runs twice against a real server on an ephemeral port —
fusion off, then fusion on — submitting on the *same* deterministic
arrival schedule.  Open-loop latency is measured from each job's
scheduled arrival, so queueing delay is part of the number; that is
exactly the delay fusion attacks, and where its p99 win shows up.  The
bench asserts the fused run actually coalesced windows and did not
lose on tail latency; the committed ``BENCH_fusion.json`` baseline plus
``tools/check_bench_regression.py`` then hold the numbers over time.

Scale knobs (environment): ``REPRO_BENCH_FUSION_BUDGET_MS`` (default
15 — small budgets amortise per-job dispatch best),
``REPRO_BENCH_FUSION_RATE`` (Poisson jobs/s, default 50),
``REPRO_BENCH_FUSION_SECONDS`` (default 3),
``REPRO_BENCH_FUSION_WINDOW_MS`` (default 5) and
``REPRO_BENCH_FUSION_WORKERS`` (default 2).

Caveat: on a single-core container the fused win comes from amortised
per-job dispatch overhead (one fused sweep loop instead of one loop per
job), not parallel sweep arithmetic — the same caveat the sharded-tier
numbers in ``BENCH_server.json`` carry.  Expect larger wins on real
cores.
"""

import os
from pathlib import Path

from repro.bench.orchestrator import BenchOrchestrator, BenchRunConfig
from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.suites import WorkloadSuite, get_suite, register_suite

BUDGET_MS = float(os.environ.get("REPRO_BENCH_FUSION_BUDGET_MS", "15"))
RATE_PER_S = float(os.environ.get("REPRO_BENCH_FUSION_RATE", "50"))
DURATION_S = float(os.environ.get("REPRO_BENCH_FUSION_SECONDS", "3"))
WINDOW_MS = float(os.environ.get("REPRO_BENCH_FUSION_WINDOW_MS", "5"))
WORKERS = int(os.environ.get("REPRO_BENCH_FUSION_WORKERS", "2"))
MAX_JOBS_PER_WINDOW = 16
SOLVER = "QA"

#: A fused run may exceed the solo p99 by at most this factor before the
#: bench fails outright — sized so an unsaturated fast runner (where the
#: admission window is pure overhead) does not flake; the regression
#: gate holds the actual committed numbers.
_P99_NOISE_FACTOR = 1.25


def _register_hot_suites():
    """Re-register the stream scenarios under fusion-stressing arrivals."""
    hot = []
    for base_name, arrival in (
        (
            "stream-poisson",
            ArrivalProcess(
                kind="poisson", rate_per_s=RATE_PER_S, duration_s=DURATION_S
            ),
        ),
        (
            "stream-bursty",
            ArrivalProcess(
                kind="bursty",
                rate_per_s=RATE_PER_S / 3.0,
                duration_s=DURATION_S,
                burst_every_s=0.5,
                burst_size=16,
            ),
        ),
    ):
        base = get_suite(base_name)
        name = f"{base_name}-hot"
        register_suite(
            WorkloadSuite(
                name=name,
                description=f"{base_name} at a fusion-stressing arrival rate",
                scenarios=base.scenarios,
                default_budget_ms=BUDGET_MS,
                instances_per_scenario=1,
                arrival=arrival,
            ),
            replace=True,
        )
        hot.append(name)
    return hot


def _run_variant(suite, fusion_window_ms):
    """One orchestrator run; returns (scenario, totals, latencies, stats)."""
    orchestrator = BenchOrchestrator(
        BenchRunConfig(
            suite=suite,
            mode="server",
            solver=SOLVER,
            budget_ms=BUDGET_MS,
            seed=20160909,
            workers=WORKERS,
            fusion_window_ms=fusion_window_ms,
            fusion_max_jobs=MAX_JOBS_PER_WINDOW,
            quality_reference="",  # latency A/B; quality is covered elsewhere
        )
    )
    document = orchestrator.run()
    totals = document["totals"]
    label = "fused" if fusion_window_ms > 0 else "solo"
    scenario = {
        "name": f"{suite}-{label}",
        "family": "paper",
        "jobs": totals["jobs"],
        "failures": totals["failures"],
        "duration_s": totals["duration_s"],
        "throughput_jobs_per_s": totals["throughput_jobs_per_s"],
        "latency_ms": totals["latency_ms"],
        "params": {"suite": suite, "fusion_window_ms": fusion_window_ms},
        "seed": 20160909,
    }
    stats = orchestrator._server_stats or {}
    return scenario, totals, orchestrator.last_latencies, stats


def bench_fusion(benchmark, save_exhibit):
    suites = _register_hot_suites()
    scenarios = []
    comparisons = []
    all_latencies = []

    def run_variants():
        for suite in suites:
            solo_scenario, solo_totals, solo_latencies, _ = _run_variant(suite, 0.0)
            fused_scenario, fused_totals, fused_latencies, fused_stats = _run_variant(
                suite, WINDOW_MS
            )
            scenarios.extend([solo_scenario, fused_scenario])
            all_latencies.extend(solo_latencies)
            all_latencies.extend(fused_latencies)
            comparisons.append((suite, solo_totals, fused_totals, fused_stats))

    benchmark.pedantic(run_variants, rounds=1, iterations=1)

    for suite, solo_totals, fused_totals, fused_stats in comparisons:
        assert solo_totals["failures"] == 0, f"{suite}: solo run had failures"
        assert fused_totals["failures"] == 0, f"{suite}: fused run had failures"
        counters = fused_stats.get("counters", {})
        windows = counters.get("fusion_windows", 0)
        fused_jobs = counters.get("fusion_jobs", 0)
        assert windows > 0, (
            f"{suite}: the fused run never coalesced a window — the "
            "measurement compared two identical solo runs"
        )
        assert fused_jobs / windows > 1.2, (
            f"{suite}: windows averaged {fused_jobs / windows:.2f} jobs — the "
            "arrival schedule never made fusion coalesce; raise the rate"
        )
        assert (
            fused_totals["latency_ms"]["p99"]
            <= solo_totals["latency_ms"]["p99"] * _P99_NOISE_FACTOR
        ), f"{suite}: fusion made tail latency worse beyond noise"

    jobs = sum(s["jobs"] for s in scenarios)
    duration_s = sum(s["duration_s"] for s in scenarios)
    # Totals aggregate every scenario (schema: jobs sum up); the
    # per-suite solo-vs-fused comparison lives in the scenario records.
    totals = {
        "jobs": jobs,
        "failures": 0,
        "duration_s": round(duration_s, 3),
        "throughput_jobs_per_s": round(jobs / duration_s if duration_s else 0.0, 3),
        "latency_ms": summarize_latencies(all_latencies),
    }
    document = build_bench_document(
        suite="fusion",
        mode="server",
        scenarios=scenarios,
        totals=totals,
        config={
            "suites": suites,
            "solver": SOLVER,
            "budget_ms": BUDGET_MS,
            "rate_per_s": RATE_PER_S,
            "duration_s": DURATION_S,
            "fusion_window_ms": WINDOW_MS,
            "fusion_max_jobs": MAX_JOBS_PER_WINDOW,
            "workers": WORKERS,
        },
    )
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    save_bench_document(document, results_dir / "BENCH_fusion.json")

    lines = [
        f"Anneal fusion A/B: QA @ {BUDGET_MS:.0f} ms budget, "
        f"{RATE_PER_S:.0f} jobs/s for {DURATION_S:.0f} s, "
        f"{WORKERS} workers, {WINDOW_MS:.0f} ms window",
        "",
    ]
    for suite, solo_totals, fused_totals, fused_stats in comparisons:
        solo_p99 = solo_totals["latency_ms"]["p99"]
        fused_p99 = fused_totals["latency_ms"]["p99"]
        counters = fused_stats.get("counters", {})
        windows = counters.get("fusion_windows", 0)
        fused_jobs = counters.get("fusion_jobs", 0)
        mean_batch = fused_jobs / windows if windows else 0.0
        lines.append(
            f"  {suite}: p99 {solo_p99:.1f} ms solo -> {fused_p99:.1f} ms fused "
            f"({solo_p99 / fused_p99 if fused_p99 else 0.0:.2f}x), "
            f"{windows} windows, {mean_batch:.1f} jobs/window"
        )
    save_exhibit("BENCH_fusion", "\n".join(lines))
