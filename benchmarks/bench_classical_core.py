"""Array-backed classical core vs the legacy object-loop paths.

The PR's claim: threading the columnar ``ProblemArrays`` view through
QUBO construction and the heuristic baselines makes the classical
pre/post-processing around the anneal ≥5x faster on QUBO construction
and ≥3x faster on GA/hill-climbing solve wall-clock at 512-plan scale
(the ``tpch_mix``/``oversubscribed`` workload families), with identical
semantics (same coefficients, same moves, same RNG draws).

Three exhibits, each racing the new code against a faithful
reimplementation of the pre-PR path (kept here, not in the library, so
the benchmark always measures against the true baseline):

* QUBO construction: whole-array ``LogicalMapping`` -> flat arrays vs
  the per-coefficient ``add_linear``/``add_quadratic`` dict build,
* GA solve: batched population evaluation vs per-chromosome
  ``solution_from_choices`` round-trips (identical RNG stream),
* hill climbing: one vectorised swap-delta sweep per move vs the
  per-candidate ``swap_delta`` scan (identical move sequences).

Results land in a schema-valid ``benchmark_results/BENCH_classical.json``
gated by ``tools/check_bench_regression.py`` against the committed
baseline.  The totals are dominated by the fixed-budget anytime
scenario, so the gated numbers track the time budget rather than raw
machine speed; the speedup *ratios* are asserted right here.
"""

import time
from pathlib import Path

import numpy as np

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.core.logical import LogicalMapping
from repro.qubo.model import QUBOModel
from repro.workloads import get_family

SEED = 20160909
QUBO_REPEATS = 15
SOLVE_REPEATS = 3
GA_GENERATIONS = 8
HC_RESTARTS = 2
ANYTIME_BUDGET_MS = 120.0
HUGE_BUDGET_MS = 1e9


# --------------------------------------------------------------------- #
# Faithful legacy reimplementations (the pre-PR hot paths)
# --------------------------------------------------------------------- #
def legacy_build_qubo(problem):
    """The pre-PR logical mapping: per-coefficient dict accumulation."""
    epsilon = 0.25
    w_l = problem.max_plan_cost() + epsilon
    w_m = w_l + problem.max_total_savings_per_plan() + epsilon
    qubo = QUBOModel()
    for plan in problem.plans:
        qubo.add_linear(plan.index, plan.cost - w_l)
    for query in problem.queries:
        indices = query.plan_indices
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                qubo.add_quadratic(indices[i], indices[j], w_m)
    for (p1, p2), saving in problem.interaction_pairs():
        qubo.add_quadratic(p1, p2, -saving)
    return qubo


class LegacyEvalGA(GeneticAlgorithmSolver):
    """The new GA loop with the pre-PR per-chromosome fitness evaluation.

    Only the evaluation differs, so the RNG stream and the evolutionary
    trajectory are identical to the array-backed solver — the race
    isolates exactly the claimed win.
    """

    @staticmethod
    def _evaluate_batch(problem, chromosomes):
        return np.asarray(
            [
                problem.solution_from_choices([int(c) for c in chrom]).cost
                for chrom in chromosomes
            ]
        )


class LegacySelectionState:
    """The pre-PR dict-based SelectionState (verbatim hot-path logic)."""

    def __init__(self, problem, choices):
        self.problem = problem
        self._choices = []
        self._selected_plan = []
        self._selected_set = set()
        for query, choice in zip(problem.queries, choices):
            plan = query.plan_indices[choice]
            self._choices.append(int(choice))
            self._selected_plan.append(plan)
            self._selected_set.add(plan)
        self._cost = problem.selection_cost(self._selected_set)

    def _realized_savings(self, plan, excluding_query):
        total = 0.0
        for partner, saving in self.problem.sharing_partners(plan).items():
            if partner in self._selected_set:
                if self.problem.query_of_plan(partner) == excluding_query:
                    continue
                total += saving
        return total

    def swap_delta(self, query_index, new_choice):
        query = self.problem.query(query_index)
        old_plan = self._selected_plan[query_index]
        new_plan = query.plan_indices[new_choice]
        if new_plan == old_plan:
            return 0.0
        delta = self.problem.plan_cost(new_plan) - self.problem.plan_cost(old_plan)
        delta -= self._realized_savings(new_plan, excluding_query=query_index)
        delta += self._realized_savings(old_plan, excluding_query=query_index)
        return delta

    def apply_swap(self, query_index, new_choice):
        delta = self.swap_delta(query_index, new_choice)
        query = self.problem.query(query_index)
        old_plan = self._selected_plan[query_index]
        new_plan = query.plan_indices[new_choice]
        if new_plan != old_plan:
            self._selected_set.discard(old_plan)
            self._selected_set.add(new_plan)
            self._selected_plan[query_index] = new_plan
            self._choices[query_index] = int(new_choice)
            self._cost += delta
        return delta

    def best_cost(self):
        return self.problem.selection_cost(self._selected_set)


def legacy_hill_climb(problem, seed, max_restarts):
    """The pre-PR iterated hill climbing: per-candidate swap_delta scans."""
    rng = np.random.default_rng(seed)
    best = float("inf")
    for _ in range(max_restarts):
        choices = [int(rng.integers(0, query.num_plans)) for query in problem.queries]
        state = LegacySelectionState(problem, choices)
        while True:
            best_delta = 0.0
            best_move = None
            for query in problem.queries:
                current = state._choices[query.index]
                for choice in range(query.num_plans):
                    if choice == current:
                        continue
                    delta = state.swap_delta(query.index, choice)
                    if delta < best_delta - 1e-12:
                        best_delta = delta
                        best_move = (query.index, choice)
            if best_move is None:
                break
            state.apply_swap(*best_move)
        best = min(best, state.best_cost())
    return best


# --------------------------------------------------------------------- #
# Harness helpers
# --------------------------------------------------------------------- #
def _times_of(callable_, repeats):
    """Per-iteration wall-clock seconds (list) of ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - start)
    return times


def _scenario(name, family, times_s, extra=None):
    """One BENCH scenario record from per-iteration wall clocks."""
    latencies_ms = [t * 1000.0 for t in times_s]
    duration_s = sum(times_s)
    record = {
        "name": name,
        "family": family,
        "jobs": len(times_s),
        "failures": 0,
        "duration_s": round(duration_s, 3),
        "throughput_jobs_per_s": round(len(times_s) / duration_s if duration_s else 0.0, 3),
        "latency_ms": summarize_latencies(latencies_ms),
        "params": {},
        "seed": SEED,
    }
    if extra:
        record["exhibit"] = extra
    return record


def bench_classical_core(benchmark, save_exhibit):
    # 512-plan scale instances of the two large workload families.
    tpch = get_family("tpch_mix").build(SEED, num_queries=180, density=0.5)
    oversub = get_family("oversubscribed").build(
        SEED, plans_per_query=2, capacity_factor=2.0, cell_rows=8, cell_cols=8
    )
    assert tpch.num_plans >= 450, tpch.num_plans
    assert oversub.num_plans >= 450, oversub.num_plans

    scenarios = []
    exhibit_lines = ["Array-backed classical core vs legacy object loops", ""]
    speedups = {}
    all_times = []  # per-iteration wall clocks of every measured (new-path) job

    # ---------------- QUBO construction ---------------- #
    for problem, family in ((tpch, "tpch_mix"), (oversub, "oversubscribed")):
        problem.arrays()  # memoised columnar view, warm in production too

        def build_new(problem=problem):
            return LogicalMapping(problem).qubo.to_arrays()

        def build_legacy(problem=problem):
            return legacy_build_qubo(problem).to_arrays()

        # Equal coefficients before racing (same variables/edges/weights).
        order_new, lin_new, edges_new, w_new = build_new()
        order_old, lin_old, edges_old, w_old = build_legacy()
        assert order_new == order_old
        assert np.array_equal(lin_new, lin_old)
        assert np.array_equal(edges_new, edges_old) and np.array_equal(w_new, w_old)

        new_s = _times_of(build_new, QUBO_REPEATS)
        legacy_s = _times_of(build_legacy, QUBO_REPEATS)
        all_times.extend(new_s)
        speedup = min(legacy_s) / min(new_s)
        speedups[f"qubo_{family}"] = speedup
        scenarios.append(
            _scenario(
                f"qubo_construction_{family}",
                family,
                new_s,
                extra={
                    "plans": problem.num_plans,
                    "savings": problem.num_savings,
                    "legacy_ms": round(min(legacy_s) * 1000, 3),
                    "array_ms": round(min(new_s) * 1000, 3),
                    "speedup": round(speedup, 2),
                },
            )
        )
        exhibit_lines.append(
            f"  QUBO build   {family:>14}: {min(legacy_s) * 1000:8.2f} ms -> "
            f"{min(new_s) * 1000:7.2f} ms  ({speedup:.1f}x)"
        )

    # ---------------- GA solve ---------------- #
    new_ga = GeneticAlgorithmSolver(population_size=50, max_generations=GA_GENERATIONS)
    old_ga = LegacyEvalGA(population_size=50, max_generations=GA_GENERATIONS)
    new_cost = new_ga.solve(tpch, HUGE_BUDGET_MS, seed=SEED).best_cost
    old_cost = old_ga.solve(tpch, HUGE_BUDGET_MS, seed=SEED).best_cost
    assert np.isclose(new_cost, old_cost), (new_cost, old_cost)

    ga_new_s = _times_of(lambda: new_ga.solve(tpch, HUGE_BUDGET_MS, seed=SEED), SOLVE_REPEATS)
    ga_old_s = _times_of(lambda: old_ga.solve(tpch, HUGE_BUDGET_MS, seed=SEED), SOLVE_REPEATS)
    all_times.extend(ga_new_s)
    ga_speedup = min(ga_old_s) / min(ga_new_s)
    speedups["ga"] = ga_speedup
    scenarios.append(
        _scenario(
            "ga_solve_tpch_mix",
            "tpch_mix",
            ga_new_s,
            extra={
                "generations": GA_GENERATIONS,
                "population": 50,
                "legacy_ms": round(min(ga_old_s) * 1000, 2),
                "array_ms": round(min(ga_new_s) * 1000, 2),
                "speedup": round(ga_speedup, 2),
            },
        )
    )
    exhibit_lines.append(
        f"  GA(50) x{GA_GENERATIONS} gens  tpch_mix: {min(ga_old_s) * 1000:8.2f} ms -> "
        f"{min(ga_new_s) * 1000:7.2f} ms  ({ga_speedup:.1f}x)"
    )

    # ---------------- Hill-climbing solve ---------------- #
    new_hc = IteratedHillClimbing(max_restarts=HC_RESTARTS)

    def run_new_hc():
        return new_hc.solve(oversub, HUGE_BUDGET_MS, seed=SEED).best_cost

    def run_old_hc():
        return legacy_hill_climb(oversub, SEED, HC_RESTARTS)

    assert np.isclose(run_new_hc(), run_old_hc())
    hc_new_s = _times_of(run_new_hc, SOLVE_REPEATS)
    hc_old_s = _times_of(run_old_hc, SOLVE_REPEATS)
    all_times.extend(hc_new_s)
    hc_speedup = min(hc_old_s) / min(hc_new_s)
    speedups["hc"] = hc_speedup
    scenarios.append(
        _scenario(
            "hc_solve_oversubscribed",
            "oversubscribed",
            hc_new_s,
            extra={
                "restarts": HC_RESTARTS,
                "legacy_ms": round(min(hc_old_s) * 1000, 2),
                "array_ms": round(min(hc_new_s) * 1000, 2),
                "speedup": round(hc_speedup, 2),
            },
        )
    )
    exhibit_lines.append(
        f"  CLIMB x{HC_RESTARTS}      oversub.: {min(hc_old_s) * 1000:8.2f} ms -> "
        f"{min(hc_new_s) * 1000:7.2f} ms  ({hc_speedup:.1f}x)"
    )

    # ---------------- Fixed-budget anytime scenario ---------------- #
    # Budget-bound jobs dominate the totals, so the regression-gated
    # throughput/p99 track the time budget, not raw machine speed.
    budget_ga = GeneticAlgorithmSolver(population_size=50)
    budget_s = _times_of(
        lambda: budget_ga.solve(tpch, ANYTIME_BUDGET_MS, seed=SEED), 20
    )
    all_times.extend(budget_s)
    scenarios.append(
        _scenario(
            "ga_anytime_budget_tpch_mix",
            "tpch_mix",
            budget_s,
            extra={"budget_ms": ANYTIME_BUDGET_MS},
        )
    )

    benchmark.pedantic(lambda: LogicalMapping(tpch).qubo, rounds=1, iterations=1)

    all_latencies = [t * 1000.0 for t in all_times]
    total_jobs = sum(s["jobs"] for s in scenarios)
    total_duration = sum(s["duration_s"] for s in scenarios)
    totals = {
        "jobs": total_jobs,
        "failures": 0,
        "duration_s": round(total_duration, 3),
        "throughput_jobs_per_s": round(total_jobs / total_duration if total_duration else 0.0, 3),
        "latency_ms": summarize_latencies(all_latencies),
    }
    document = build_bench_document(
        suite="classical",
        mode="service",
        scenarios=scenarios,
        totals=totals,
        config={
            "solver": "GA(50)/CLIMB/LogicalMapping",
            "budget_ms": ANYTIME_BUDGET_MS,
            "seed": SEED,
            "speedups": {key: round(value, 2) for key, value in speedups.items()},
        },
    )
    results_dir = Path(__file__).resolve().parent.parent / "benchmark_results"
    results_dir.mkdir(exist_ok=True)
    save_bench_document(document, results_dir / "BENCH_classical.json")

    save_exhibit("classical_core", "\n".join(exhibit_lines))

    for family in ("tpch_mix", "oversubscribed"):
        assert speedups[f"qubo_{family}"] >= 5.0, (
            f"QUBO construction speedup below 5x on {family}: {speedups}"
        )
    assert speedups["ga"] >= 3.0, f"GA solve speedup below 3x: {speedups}"
    assert speedups["hc"] >= 3.0, f"hill-climbing solve speedup below 3x: {speedups}"
