"""Figure 3: the clustered embedding pattern.

The paper's Figure 3 shows four clusters of eight plans each, every
cluster embedded as its own TRIAD, with sparse couplers between clusters
available for work-sharing links.  This benchmark reproduces that
configuration, reports per-cluster qubit usage and counts how many
cross-cluster plan pairs the placement can couple.
"""

from repro.chimera.topology import ChimeraGraph
from repro.embedding.clustered import ClusteredEmbedder, clustered_qubit_count
from repro.utils.tables import format_table


def bench_figure3_clustered_pattern(benchmark, save_exhibit):
    topology = ChimeraGraph(12, 12)
    clusters = [[f"c{c}_p{p}" for p in range(8)] for c in range(4)]
    embedder = ClusteredEmbedder(topology)

    def build():
        embedding = embedder.embed(clusters)
        cross = embedder.realizable_cross_cluster_pairs(embedding, clusters)
        return embedding, cross

    embedding, cross_pairs = benchmark.pedantic(build, rounds=1, iterations=1)

    intra_pairs = 4 * (8 * 7 // 2)
    all_cross = (32 * 31 // 2) - intra_pairs
    rows = [
        ("clusters", 4),
        ("plans per cluster", 8),
        ("qubits used", embedding.num_qubits),
        ("qubits (closed form)", clustered_qubit_count(4, 8)),
        ("intra-cluster pairs couplable", intra_pairs),
        ("cross-cluster pairs couplable", len(cross_pairs)),
        ("cross-cluster pairs total", all_cross),
    ]
    table = format_table(
        ["property", "value"],
        rows,
        title="Figure 3: clustered embedding pattern (4 clusters x 8 plans)",
    )
    save_exhibit("figure3_clustered", table)

    assert embedding.num_qubits == clustered_qubit_count(4, 8)
    # Inter-cluster connectivity is sparse: only a fraction of all
    # cross-cluster pairs can carry a work-sharing link.
    assert 0 < len(cross_pairs) < all_cross
