"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_title_is_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in text
        assert "1.2345" not in text

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_column_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        # All rows share the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
