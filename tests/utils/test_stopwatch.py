"""Tests for repro.utils.stopwatch."""

import time

import pytest

from repro.utils.stopwatch import Stopwatch, VirtualClock


class TestStopwatch:
    def test_elapsed_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().elapsed_ms()

    def test_started_flag(self):
        watch = Stopwatch()
        assert not watch.started
        watch.start()
        assert watch.started

    def test_elapsed_increases(self):
        watch = Stopwatch().start()
        first = watch.elapsed_ms()
        time.sleep(0.005)
        second = watch.elapsed_ms()
        assert second > first >= 0.0

    def test_restart_resets(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        before = watch.elapsed_ms()
        watch.start()
        assert watch.elapsed_ms() < before

    def test_context_manager_starts(self):
        with Stopwatch() as watch:
            assert watch.elapsed_ms() >= 0.0


class TestVirtualClock:
    def test_initial_value(self):
        assert VirtualClock().elapsed_ms() == 0.0
        assert VirtualClock(start_ms=5.0).elapsed_ms() == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.elapsed_ms() == pytest.approx(4.0)

    def test_negative_start_raises(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ms=-1.0)

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_start_is_noop(self):
        clock = VirtualClock(start_ms=3.0)
        assert clock.start() is clock
        assert clock.elapsed_ms() == 3.0
