"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = ensure_rng(np.random.SeedSequence(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRng:
    def test_spawn_count(self, rng):
        children = spawn_rng(rng, 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_spawn_children_are_independent_streams(self):
        children = spawn_rng(ensure_rng(3), 2)
        a = children[0].integers(0, 10**9, size=10)
        b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic_given_parent_seed(self):
        first = [c.integers(0, 10**9) for c in spawn_rng(ensure_rng(5), 3)]
        second = [c.integers(0, 10**9) for c in spawn_rng(ensure_rng(5), 3)]
        assert first == second

    def test_spawn_zero_children(self, rng):
        assert spawn_rng(rng, 0) == []

    def test_spawn_negative_raises(self, rng):
        with pytest.raises(ValueError):
            spawn_rng(rng, -1)
