"""Tests for the embedded family and the experiments-module migration."""

from repro.chimera.topology import ChimeraGraph
from repro.mqo.serialization import problem_to_dict
from repro.workloads import get_family
from repro.workloads.embedded import (
    PAPER_CLASS_SIZES,
    EmbeddedTestCase,
    generate_embedded_testcase,
)


class TestEmbeddedFamily:
    def test_registered(self):
        family = get_family("embedded")
        assert "paper" in family.tags

    def test_builds_same_problem_as_generator(self):
        """The registered family and the direct generator must agree."""
        family = get_family("embedded")
        built = family.build(7, num_queries=6, plans_per_query=2, cell_rows=4, cell_cols=4)
        case = generate_embedded_testcase(6, 2, ChimeraGraph(4, 4), seed=7)
        assert isinstance(case, EmbeddedTestCase)
        lhs, rhs = problem_to_dict(built), problem_to_dict(case.problem)
        lhs["name"] = rhs["name"] = ""
        assert lhs == rhs

    def test_deterministic(self):
        family = get_family("embedded")
        a = family.build(11, num_queries=4, plans_per_query=3)
        b = family.build(11, num_queries=4, plans_per_query=3)
        assert problem_to_dict(a) == problem_to_dict(b)


class TestDeprecationShims:
    def test_experiments_modules_reexport(self):
        """The legacy import locations keep working (thin shims)."""
        from repro.experiments import scenarios as legacy_scenarios
        from repro.experiments import workloads as legacy_workloads
        from repro.workloads import embedded

        assert legacy_workloads.EmbeddedTestCase is embedded.EmbeddedTestCase
        assert legacy_workloads.generate_embedded_testcase is (
            embedded.generate_embedded_testcase
        )
        assert legacy_scenarios.TestCaseClass is embedded.TestCaseClass
        assert legacy_scenarios.paper_test_classes is embedded.paper_test_classes
        assert legacy_scenarios.PAPER_CLASS_SIZES is PAPER_CLASS_SIZES
