"""Tests for the deterministic open-loop arrival processes."""

import pytest

from repro.workloads import (
    ArrivalProcess,
    WorkloadError,
    arrival_times,
    bursty_arrivals,
    poisson_arrivals,
    schedule_jobs,
)
from repro.workloads.suites import get_suite


class TestPoisson:
    def test_deterministic_for_fixed_seed(self):
        assert poisson_arrivals(20.0, 5.0, seed=3) == poisson_arrivals(20.0, 5.0, seed=3)
        assert poisson_arrivals(20.0, 5.0, seed=3) != poisson_arrivals(20.0, 5.0, seed=4)

    def test_sorted_and_inside_the_window(self):
        times = poisson_arrivals(50.0, 2.0, seed=1)
        assert times == sorted(times)
        assert all(0.0 < t < 2.0 for t in times)

    def test_rate_roughly_matches(self):
        # 200 expected arrivals: the realised count stays within a wide
        # deterministic band for this fixed seed.
        times = poisson_arrivals(20.0, 10.0, seed=42)
        assert 120 < len(times) < 300

    def test_invalid_parameters_raise(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(0.0, 1.0, seed=0)
        with pytest.raises(WorkloadError):
            poisson_arrivals(1.0, 0.0, seed=0)


class TestBursty:
    def test_deterministic_and_sorted(self):
        a = bursty_arrivals(5.0, 4.0, seed=7, burst_every_s=1.0, burst_size=6)
        b = bursty_arrivals(5.0, 4.0, seed=7, burst_every_s=1.0, burst_size=6)
        assert a == b
        assert a == sorted(a)

    def test_bursts_add_arrivals_over_background(self):
        background = poisson_arrivals(5.0, 4.0, seed=7)
        with_bursts = bursty_arrivals(5.0, 4.0, seed=7, burst_every_s=1.0, burst_size=6)
        # 3 full burst epochs inside the window (t=1, 2, 3).
        assert len(with_bursts) == len(background) + 3 * 6

    def test_bursts_cluster_near_epochs(self):
        times = bursty_arrivals(
            0.1, 4.0, seed=9, burst_every_s=1.0, burst_size=5, burst_spread_s=0.01
        )
        near_epochs = [
            t for t in times if any(abs(t - epoch) <= 0.011 for epoch in (1, 2, 3))
        ]
        assert len(near_epochs) >= 15


class TestArrivalProcess:
    def test_round_trips_through_dict(self):
        process = ArrivalProcess(
            kind="bursty", rate_per_s=4.0, duration_s=2.0, burst_size=3
        )
        rebuilt = ArrivalProcess.from_dict(process.to_dict())
        assert rebuilt == process
        assert rebuilt.times(5) == process.times(5)

    def test_dispatches_by_kind(self):
        poisson = ArrivalProcess(kind="poisson", rate_per_s=8.0, duration_s=2.0)
        assert arrival_times(poisson, 3) == poisson_arrivals(8.0, 2.0, seed=3)

    def test_unknown_kind_raises(self):
        with pytest.raises(WorkloadError, match="kind"):
            ArrivalProcess(kind="constant", rate_per_s=1.0, duration_s=1.0)


class TestScheduleJobs:
    def test_cycles_specs_with_per_scenario_instances(self):
        suite = get_suite("smoke")
        specs = list(suite.scenarios[:3])
        process = ArrivalProcess(kind="poisson", rate_per_s=30.0, duration_s=1.0)
        submissions = schedule_jobs(specs, process, seed=2)
        assert submissions == schedule_jobs(specs, process, seed=2)
        assert [due for due, _, _ in submissions] == sorted(
            due for due, _, _ in submissions
        )
        for position, (_due, spec, instance) in enumerate(submissions):
            assert spec is specs[position % 3]
            assert instance == position // 3

    def test_empty_specs_raise(self):
        process = ArrivalProcess(kind="poisson", rate_per_s=1.0, duration_s=1.0)
        with pytest.raises(WorkloadError):
            schedule_jobs([], process, seed=0)
