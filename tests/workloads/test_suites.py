"""Tests for the workload suite registry and the built-in suites."""

import pytest

from repro.workloads import (
    ScenarioSpec,
    WorkloadError,
    WorkloadSuite,
    get_suite,
    list_suites,
    register_suite,
)


class TestRegistry:
    def test_builtin_suites_registered(self):
        names = [suite.name for suite in list_suites()]
        for expected in ("smoke", "standard", "stress", "stream-poisson", "stream-bursty"):
            assert expected in names

    def test_unknown_suite_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload suite"):
            get_suite("nope")

    def test_duplicate_registration_raises(self):
        with pytest.raises(WorkloadError, match="already registered"):
            register_suite(get_suite("smoke"))


class TestSuiteValidation:
    def test_duplicate_scenario_names_rejected(self):
        spec = ScenarioSpec("twin", "paper", seed=1)
        with pytest.raises(WorkloadError, match="duplicate scenario names"):
            WorkloadSuite(name="bad", description="", scenarios=(spec, spec))

    def test_unknown_family_rejected_at_construction(self):
        spec = ScenarioSpec("ghost", "no-such-family", seed=1)
        with pytest.raises(WorkloadError, match="unknown workload family"):
            WorkloadSuite(name="bad", description="", scenarios=(spec,))

    def test_invalid_defaults_rejected(self):
        spec = ScenarioSpec("ok", "paper", seed=1)
        with pytest.raises(WorkloadError):
            WorkloadSuite(name="bad", description="", scenarios=(spec,), default_budget_ms=0)
        with pytest.raises(WorkloadError):
            WorkloadSuite(
                name="bad", description="", scenarios=(spec,), instances_per_scenario=0
            )


class TestBuiltinSuiteContents:
    def test_smoke_covers_at_least_six_families(self):
        smoke = get_suite("smoke")
        assert len(smoke.families) >= 6

    def test_smoke_scenarios_build_quickly_and_deterministically(self):
        smoke = get_suite("smoke")
        for spec in smoke.scenarios:
            problem = spec.build(0)
            assert problem.num_queries >= 2
            # Smoke instances must stay small: the whole suite has to
            # run in the CI bench job in seconds.
            assert problem.num_plans <= 64

    def test_stream_suites_carry_an_arrival_process(self):
        for name in ("stream-poisson", "stream-bursty"):
            suite = get_suite(name)
            assert suite.arrival is not None
            assert suite.arrival.times(0)  # non-empty schedule

    def test_standard_and_stress_are_bigger_than_smoke(self):
        smoke_plans = sum(s.build(0).num_plans for s in get_suite("smoke").scenarios)
        standard_plans = sum(
            s.build(0).num_plans for s in get_suite("standard").scenarios
        )
        assert standard_plans > smoke_plans


class TestScenarioSpecSerialization:
    def test_round_trips_through_dict(self):
        spec = ScenarioSpec("s", "zipf", seed=4, params={"num_queries": 5})
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_invalid_dict_raises(self):
        with pytest.raises(WorkloadError):
            ScenarioSpec.from_dict({"family": "zipf"})  # no name
