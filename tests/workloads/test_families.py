"""Tests for the workload family registry and the built-in families."""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.chimera.topology import ChimeraGraph
from repro.embedding.native import NativeClusteredEmbedder
from repro.mqo.serialization import problem_from_dict, problem_to_dict
from repro.workloads import (
    ScenarioSpec,
    WorkloadError,
    get_family,
    list_families,
    register_family,
    workload_family,
)
from repro.workloads.base import WorkloadFamily

#: Families exercised with their default parameters throughout.
ALL_FAMILY_NAMES = [family.name for family in list_families()]


def canonical_bytes(problem) -> bytes:
    """Byte-exact serialised form used by the determinism assertions."""
    return json.dumps(problem_to_dict(problem), sort_keys=True).encode()


class TestRegistry:
    def test_at_least_six_distinct_families_registered(self):
        assert len(ALL_FAMILY_NAMES) >= 6
        assert len(set(ALL_FAMILY_NAMES)) == len(ALL_FAMILY_NAMES)

    def test_expected_catalog_present(self):
        for name in (
            "star",
            "chain",
            "clique",
            "bipartite",
            "zipf",
            "correlated",
            "tpch_mix",
            "oversubscribed",
            "paper",
            "random",
            "clustered",
            "warehouse",
        ):
            assert get_family(name).name == name

    def test_unknown_family_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload family"):
            get_family("definitely-not-registered")

    def test_duplicate_registration_raises(self):
        family = get_family("star")
        with pytest.raises(WorkloadError, match="already registered"):
            register_family(family)

    def test_decorator_registers_and_replace_overrides(self):
        @workload_family("testonly-family", "throwaway", tags=("test",))
        def build(seed, num_queries=2):
            return get_family("paper").build(seed, num_queries=num_queries)

        assert get_family("testonly-family").tags == ("test",)
        register_family(
            WorkloadFamily("testonly-family", "replaced", build), replace=True
        )
        assert get_family("testonly-family").description == "replaced"


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_FAMILY_NAMES)
    def test_fixed_seed_is_byte_deterministic(self, name):
        family = get_family(name)
        assert canonical_bytes(family.build(123)) == canonical_bytes(family.build(123))

    @pytest.mark.parametrize("name", ALL_FAMILY_NAMES)
    def test_different_seeds_differ(self, name):
        family = get_family(name)
        assert canonical_bytes(family.build(1)) != canonical_bytes(family.build(2))

    @pytest.mark.parametrize("name", ALL_FAMILY_NAMES)
    def test_scenario_spec_build_is_deterministic(self, name):
        spec = ScenarioSpec(name=f"{name}-spec", family=name, seed=7)
        assert canonical_bytes(spec.build(0)) == canonical_bytes(spec.build(0))
        # instance i uses seed + i: distinct instances, each reproducible
        assert canonical_bytes(spec.build(0)) != canonical_bytes(spec.build(1))


class TestStructure:
    @pytest.mark.parametrize("name", ALL_FAMILY_NAMES)
    def test_every_query_has_at_least_one_plan(self, name):
        problem = get_family(name).build(5)
        assert problem.num_queries >= 1
        assert all(query.num_plans >= 1 for query in problem.queries)

    @pytest.mark.parametrize("name", ALL_FAMILY_NAMES)
    def test_serialization_round_trip(self, name):
        problem = get_family(name).build(9)
        data = problem_to_dict(problem)
        rebuilt = problem_from_dict(json.loads(json.dumps(data)))
        assert problem_to_dict(rebuilt) == data

    def test_star_savings_all_touch_the_hub(self):
        problem = get_family("star").build(3, num_queries=7, plans_per_query=3)
        hub_plans = set(problem.queries[0].plan_indices)
        for p1, p2 in problem.savings:
            assert p1 in hub_plans or p2 in hub_plans

    def test_bipartite_has_no_intra_tier_savings(self):
        problem = get_family("bipartite").build(
            4, num_producers=3, num_consumers=5, plans_per_query=2
        )
        producer_plans = {
            p for q in problem.queries[:3] for p in q.plan_indices
        }
        for p1, p2 in problem.savings:
            assert (p1 in producer_plans) != (p2 in producer_plans)

    def test_chain_respects_the_window(self):
        problem = get_family("chain").build(6, num_queries=10, plans_per_query=2, window=2)
        for p1, p2 in problem.savings:
            q1, q2 = p1 // 2, p2 // 2
            assert abs(q1 - q2) <= 2

    def test_oversubscribed_exceeds_the_device_capacity(self):
        problem = get_family("oversubscribed").build(
            8, plans_per_query=2, capacity_factor=1.5, cell_rows=3, cell_cols=3
        )
        capacity = NativeClusteredEmbedder(ChimeraGraph(3, 3)).capacity(2)
        assert problem.num_queries > capacity

    def test_tpch_mix_heavy_bias_raises_mean_cost(self):
        light = get_family("tpch_mix").build(2, num_queries=30, heavy_bias=0.0)
        heavy = get_family("tpch_mix").build(2, num_queries=30, heavy_bias=0.9)
        def mean(problem):
            return sum(p.cost for p in problem.plans) / problem.num_plans

        # Not a statistical test: same seed, only the draw weights move.
        assert mean(heavy) != mean(light)

    def test_invalid_parameters_raise(self):
        with pytest.raises(WorkloadError):
            get_family("star").build(0, num_queries=1)  # a star needs a spoke
        with pytest.raises(WorkloadError):
            get_family("zipf").build(0, alpha=0.5)
        with pytest.raises(WorkloadError):
            get_family("oversubscribed").build(0, capacity_factor=0.9)
        with pytest.raises(WorkloadError):
            get_family("correlated").build(0, share_fraction=1.5)
        with pytest.raises(WorkloadError):
            get_family("warehouse").build(0, group_size=0)
        with pytest.raises(WorkloadError):
            get_family("warehouse").build(0, link_span=-1)

    def test_warehouse_sharing_respects_group_span(self):
        problem = get_family("warehouse").build(
            7,
            num_queries=48,
            plans_per_query=2,
            group_size=6,
            intra_density=0.7,
            link_density=0.5,
            link_span=2,
        )
        for (p1, p2), _ in problem.savings.items():
            group_a = problem.plan(p1).query_index // 6
            group_b = problem.plan(p2).query_index // 6
            assert abs(group_a - group_b) <= 2  # intra or within the link span

    def test_warehouse_without_links_is_fully_decomposable(self):
        problem = get_family("warehouse").build(
            7, num_queries=32, plans_per_query=2, group_size=4, link_density=0.0
        )
        for (p1, p2), _ in problem.savings.items():
            assert problem.plan(p1).query_index // 4 == problem.plan(p2).query_index // 4


class TestFamilyProperties:
    """Hypothesis: structural invariants over seeds and dimensions."""

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(["star", "chain", "clique", "zipf", "correlated", "paper"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_queries=st.integers(min_value=2, max_value=12),
        plans=st.integers(min_value=1, max_value=4),
    )
    def test_generated_problems_are_well_formed(self, name, seed, num_queries, plans):
        problem = get_family(name).build(
            seed, num_queries=num_queries, plans_per_query=plans
        )
        assert problem.num_queries == num_queries
        assert all(query.num_plans >= 1 for query in problem.queries)
        assert all(plan.cost >= 0.0 for plan in problem.plans)
        for (p1, p2), value in problem.savings.items():
            assert value > 0.0
            assert problem.plan(p1).query_index != problem.plan(p2).query_index

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(ALL_FAMILY_NAMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_default_parameters_are_deterministic_for_any_seed(self, name, seed):
        family = get_family(name)
        assert canonical_bytes(family.build(seed)) == canonical_bytes(family.build(seed))
