"""Tests for the vectorised batch chain read-out."""

import numpy as np
import pytest

from repro.embedding.base import Embedding
from repro.embedding.unembed import (
    ChainGather,
    ChainReadout,
    resolve_chains,
    resolve_chains_batch,
)
from repro.exceptions import EmbeddingError


def _embedding():
    return Embedding({"a": (0, 4), "b": (1,), "c": (2, 5, 6)})


def _random_samples(qubit_order, num_reads, seed):
    rng = np.random.default_rng(seed)
    states = rng.integers(0, 2, size=(num_reads, len(qubit_order)))
    dicts = [
        {qubit: int(states[r, i]) for i, qubit in enumerate(qubit_order)}
        for r in range(num_reads)
    ]
    return states, dicts


class TestChainGather:
    def test_matches_scalar_resolution_all_readouts(self):
        embedding = _embedding()
        qubit_order = [0, 1, 2, 4, 5, 6]
        states, dicts = _random_samples(qubit_order, num_reads=32, seed=1)
        for readout in ChainReadout:
            batch_assignments, batch_broken = resolve_chains_batch(
                states, qubit_order, embedding, readout
            )
            for row, (assignment, broken) in enumerate(zip(batch_assignments, batch_broken)):
                expected_assignment, expected_broken = resolve_chains(
                    dicts[row], embedding, readout
                )
                assert assignment == expected_assignment, (readout, row)
                assert broken == expected_broken, (readout, row)

    def test_majority_tie_resolves_to_one(self):
        embedding = Embedding({"x": (0, 1)})
        states = np.array([[1, 0]])
        assignments, broken = resolve_chains_batch(states, [0, 1], embedding)
        assert assignments[0] == {"x": 1}
        assert broken == [True]

    def test_discard_blanks_broken_reads(self):
        embedding = Embedding({"x": (0, 1), "y": (2,)})
        states = np.array([[1, 0, 1], [1, 1, 0]])
        assignments, broken = resolve_chains_batch(
            states, [0, 1, 2], embedding, ChainReadout.DISCARD
        )
        assert assignments[0] == {}
        assert broken[0] is True
        assert assignments[1] == {"x": 1, "y": 0}
        assert broken[1] is False

    def test_missing_qubit_rejected(self):
        embedding = _embedding()
        with pytest.raises(EmbeddingError):
            ChainGather(embedding, [0, 1, 2])  # chains also use 4, 5, 6

    def test_non_binary_values_rejected(self):
        embedding = Embedding({"x": (0,)})
        with pytest.raises(EmbeddingError):
            resolve_chains_batch(np.array([[2]]), [0], embedding)

    def test_non_2d_states_rejected(self):
        embedding = Embedding({"x": (0,)})
        gather = ChainGather(embedding, [0])
        with pytest.raises(EmbeddingError):
            gather.resolve(np.array([1, 0]))


def _prepared_physical(num_queries=4, seed=1):
    from repro.core.pipeline import QuantumMQO
    from repro.mqo.generator import generate_paper_testcase

    problem = generate_paper_testcase(num_queries, 2, seed=seed)
    return QuantumMQO(seed=0).prepare(problem).physical


class TestPhysicalMappingBatchReadout:
    def test_unembed_samples_matches_scalar(self):
        physical = _prepared_physical()
        qubits = physical.physical_qubo.variables
        _states, dicts = _random_samples(qubits, num_reads=16, seed=3)
        batch = physical.unembed_samples(dicts)
        for sample_dict, (assignment, broken) in zip(dicts, batch):
            expected_assignment, expected_broken = physical.unembed_sample(sample_dict)
            assert assignment == expected_assignment
            assert broken == expected_broken

    def test_empty_batch(self):
        physical = _prepared_physical(num_queries=2, seed=0)
        assert physical.unembed_samples([]) == []


class TestPreparedMismatchGuard:
    def test_solve_rejects_foreign_preparation(self):
        from repro.core.pipeline import QuantumMQO
        from repro.exceptions import InvalidProblemError
        from repro.mqo.generator import generate_paper_testcase

        pipeline = QuantumMQO(seed=0)
        problem_a = generate_paper_testcase(3, 2, seed=1)
        problem_b = generate_paper_testcase(4, 2, seed=2)
        prepared_a = pipeline.prepare(problem_a)
        with pytest.raises(InvalidProblemError):
            pipeline.solve(problem_b, num_reads=5, prepared=prepared_a)
