"""Tests for the compact per-cell (native) embedder."""

import pytest

from repro.chimera.defects import DefectModel
from repro.chimera.topology import ChimeraGraph
from repro.embedding.native import NativeClusteredEmbedder
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError


def _clusters(num_queries, plans_per_query):
    return [
        [q * plans_per_query + j for j in range(plans_per_query)] for q in range(num_queries)
    ]


class TestCapacity:
    def test_capacity_matches_paper_scale_on_perfect_chimera(self):
        embedder = NativeClusteredEmbedder(ChimeraGraph(12, 12))
        # Perfect 12x12 Chimera: 144 cells x 4 positions.
        assert embedder.capacity(2) == 576
        assert embedder.capacity(3) == 288
        # 4 and 5 plans both need a dedicated cell per query (3 resp. 4
        # of the 4 positions), hence 144 queries on a perfect grid --
        # bracketing the paper's 140 (4 plans) and 108 (5 plans) on its
        # defective machine.
        assert embedder.capacity(4) == 144
        assert embedder.capacity(5) == 144

    def test_capacity_with_paper_yield_is_close_to_paper_numbers(self):
        topology = DefectModel().apply(ChimeraGraph(12, 12), seed=0)
        embedder = NativeClusteredEmbedder(topology)
        # The paper reports 537 queries for 2 plans and 108 for 5 plans on
        # its specific machine; our defect sample should land in the same
        # ballpark (broken qubits reduce the perfect-yield capacity).
        assert 480 <= embedder.capacity(2) <= 576
        assert 90 <= embedder.capacity(5) <= 144

    def test_oversized_cluster_capacity_is_zero(self, small_chimera):
        assert NativeClusteredEmbedder(small_chimera).capacity(6) == 0

    def test_qubits_per_variable_increases_with_cluster_size(self, small_chimera):
        embedder = NativeClusteredEmbedder(small_chimera)
        ratios = [embedder.qubits_per_variable(size) for size in (2, 3, 4, 5)]
        assert ratios == sorted(ratios)
        assert ratios[0] == pytest.approx(1.0)
        assert ratios[-1] <= 2.0

    def test_qubits_per_variable_invalid(self, small_chimera):
        with pytest.raises(EmbeddingError):
            NativeClusteredEmbedder(small_chimera).qubits_per_variable(0)


class TestSerpentine:
    def test_serpentine_covers_all_cells(self, small_chimera):
        cells = list(NativeClusteredEmbedder(small_chimera).serpentine_cells())
        assert len(cells) == 16
        assert len(set(cells)) == 16

    def test_serpentine_consecutive_cells_adjacent(self, small_chimera):
        cells = list(NativeClusteredEmbedder(small_chimera).serpentine_cells())
        for (r1, c1), (r2, c2) in zip(cells, cells[1:]):
            assert abs(r1 - r2) + abs(c1 - c2) == 1

    def test_intact_positions_of_perfect_cell(self, small_chimera):
        positions = NativeClusteredEmbedder(small_chimera).intact_positions(0, 0)
        assert len(positions) == 4

    def test_intact_positions_with_broken_qubit(self):
        topology = ChimeraGraph(2, 2, broken_qubits=[0])  # left qubit of position 0
        positions = NativeClusteredEmbedder(topology).intact_positions(0, 0)
        assert len(positions) == 3


class TestEmbedding:
    @pytest.mark.parametrize("plans_per_query", [2, 3, 4, 5])
    def test_intra_query_cliques_realised(self, small_chimera, plans_per_query):
        clusters = _clusters(4, plans_per_query)
        embedding = NativeClusteredEmbedder(small_chimera).embed(clusters)
        for cluster in clusters:
            for i in range(len(cluster)):
                for j in range(i + 1, len(cluster)):
                    assert (
                        embedding.coupler_between(cluster[i], cluster[j], small_chimera)
                        is not None
                    )

    def test_multiple_small_queries_share_a_cell(self, small_chimera):
        clusters = _clusters(4, 2)
        embedding = NativeClusteredEmbedder(small_chimera).embed(clusters)
        # Four 2-plan queries need exactly one cell (8 qubits).
        cells = {
            small_chimera.index_to_coordinate(q).row * 10
            + small_chimera.index_to_coordinate(q).col
            for q in embedding.used_qubits()
        }
        assert len(cells) == 1

    def test_capacity_exhaustion_raises(self, tiny_chimera):
        clusters = _clusters(30, 2)  # 2x2 Chimera fits at most 16 such queries
        with pytest.raises(EmbeddingNotFoundError):
            NativeClusteredEmbedder(tiny_chimera).embed(clusters)

    def test_cluster_larger_than_cell_raises(self, small_chimera):
        with pytest.raises(EmbeddingNotFoundError):
            NativeClusteredEmbedder(small_chimera).embed([list(range(6))])

    def test_duplicate_variables_rejected(self, small_chimera):
        with pytest.raises(EmbeddingError):
            NativeClusteredEmbedder(small_chimera).embed([[0, 1], [1, 2]])

    def test_embedding_avoids_broken_qubits(self):
        topology = DefectModel(broken_fraction=0.1).apply(ChimeraGraph(4, 4), seed=3)
        clusters = _clusters(10, 3)
        embedding = NativeClusteredEmbedder(topology).embed(clusters)
        embedding.validate(topology)
        assert not (embedding.used_qubits() & set(topology.broken_qubits))

    def test_couplable_pairs_are_physical(self, small_chimera):
        clusters = _clusters(6, 2)
        embedder = NativeClusteredEmbedder(small_chimera)
        embedding = embedder.embed(clusters)
        for u, v in embedder.couplable_pairs(embedding):
            assert embedding.coupler_between(u, v, small_chimera) is not None

    def test_couplable_pairs_include_cross_query_links(self, small_chimera):
        clusters = _clusters(6, 2)
        embedder = NativeClusteredEmbedder(small_chimera)
        embedding = embedder.embed(clusters)
        pairs = embedder.couplable_pairs(embedding)
        cross = [
            (u, v)
            for u, v in pairs
            if u // 2 != v // 2  # different queries
        ]
        assert cross, "expected at least one couplable cross-query plan pair"
