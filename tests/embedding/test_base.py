"""Tests for the Embedding container."""

import pytest

from repro.chimera.topology import ChimeraCoordinate, ChimeraGraph
from repro.embedding.base import Embedding
from repro.exceptions import EmbeddingError


def _index(topology, row, col, column, k):
    return topology.coordinate_to_index(ChimeraCoordinate(row, col, column, k))


class TestConstruction:
    def test_basic_accessors(self, tiny_chimera):
        embedding = Embedding({"a": [0], "b": [4, 0 + 1]})
        assert embedding.num_variables == 2
        assert embedding.num_qubits == 3
        assert embedding.chain("a") == (0,)
        assert embedding.chain_length("b") == 2
        assert "a" in embedding and "z" not in embedding

    def test_empty_chain_rejected(self):
        with pytest.raises(EmbeddingError):
            Embedding({"a": []})

    def test_overlapping_chains_rejected(self):
        with pytest.raises(EmbeddingError):
            Embedding({"a": [0, 1], "b": [1, 2]})

    def test_duplicate_qubits_within_chain_deduplicated(self):
        embedding = Embedding({"a": [0, 0, 1]})
        assert embedding.chain("a") == (0, 1)

    def test_variable_of_qubit(self):
        embedding = Embedding({"a": [3], "b": [7]})
        assert embedding.variable_of_qubit(3) == "a"
        with pytest.raises(EmbeddingError):
            embedding.variable_of_qubit(99)

    def test_unknown_variable_raises(self):
        embedding = Embedding({"a": [0]})
        with pytest.raises(EmbeddingError):
            embedding.chain("missing")

    def test_statistics(self):
        embedding = Embedding({"a": [0], "b": [1, 2, 3]})
        stats = embedding.statistics()
        assert stats["num_variables"] == 2
        assert stats["num_qubits"] == 4
        assert stats["max_chain_length"] == 3
        assert stats["qubits_per_variable"] == 2.0

    def test_average_chain_length(self):
        embedding = Embedding({"a": [0], "b": [1, 2]})
        assert embedding.average_chain_length() == pytest.approx(1.5)

    def test_subembedding(self):
        embedding = Embedding({"a": [0], "b": [1]})
        sub = embedding.subembedding(["a"])
        assert sub.variables == ["a"]


class TestTopologyQueries:
    def test_chain_connectivity(self, tiny_chimera):
        left = _index(tiny_chimera, 0, 0, 0, 0)
        right = _index(tiny_chimera, 0, 0, 1, 0)
        other_left = _index(tiny_chimera, 0, 0, 0, 1)
        connected = Embedding({"a": [left, right]})
        assert connected.chain_is_connected("a", tiny_chimera)
        disconnected = Embedding({"a": [left, other_left]})
        assert not disconnected.chain_is_connected("a", tiny_chimera)

    def test_coupler_between(self, tiny_chimera):
        left = _index(tiny_chimera, 0, 0, 0, 0)
        right = _index(tiny_chimera, 0, 0, 1, 2)
        embedding = Embedding({"a": [left], "b": [right]})
        coupler = embedding.coupler_between("a", "b", tiny_chimera)
        assert coupler is not None
        assert set(coupler) == {left, right}

    def test_coupler_between_absent(self, tiny_chimera):
        left_0 = _index(tiny_chimera, 0, 0, 0, 0)
        left_1 = _index(tiny_chimera, 0, 0, 0, 1)
        embedding = Embedding({"a": [left_0], "b": [left_1]})
        assert embedding.coupler_between("a", "b", tiny_chimera) is None

    def test_couplers_between_lists_all(self, tiny_chimera):
        # Two chains occupying both columns of the same position in two
        # cells of the same row share two couplers (one per column pair).
        a_left = _index(tiny_chimera, 0, 0, 0, 0)
        a_right = _index(tiny_chimera, 0, 0, 1, 0)
        b_left = _index(tiny_chimera, 0, 1, 0, 0)
        b_right = _index(tiny_chimera, 0, 1, 1, 0)
        embedding = Embedding({"a": [a_left, a_right], "b": [b_left, b_right]})
        couplers = embedding.couplers_between("a", "b", tiny_chimera)
        assert len(couplers) == 1  # only the horizontal right-column coupler exists
        assert (a_right, b_right) in couplers or (b_right, a_right) in couplers

    def test_chain_edges_spanning_tree(self, tiny_chimera):
        left = _index(tiny_chimera, 0, 0, 0, 0)
        right = _index(tiny_chimera, 0, 0, 1, 0)
        below = _index(tiny_chimera, 1, 0, 0, 0)
        embedding = Embedding({"a": [left, right, below]})
        edges = embedding.chain_edges("a", tiny_chimera)
        assert len(edges) == 2  # spanning tree of a 3-qubit chain

    def test_chain_edges_of_singleton(self, tiny_chimera):
        embedding = Embedding({"a": [0]})
        assert embedding.chain_edges("a", tiny_chimera) == []

    def test_chain_edges_disconnected_raises(self, tiny_chimera):
        left_0 = _index(tiny_chimera, 0, 0, 0, 0)
        left_1 = _index(tiny_chimera, 0, 0, 0, 1)
        embedding = Embedding({"a": [left_0, left_1]})
        with pytest.raises(EmbeddingError):
            embedding.chain_edges("a", tiny_chimera)


class TestValidation:
    def test_valid_embedding_passes(self, tiny_chimera):
        left = _index(tiny_chimera, 0, 0, 0, 0)
        right = _index(tiny_chimera, 0, 0, 1, 0)
        embedding = Embedding({"a": [left], "b": [right]})
        embedding.validate(tiny_chimera, [("a", "b")])

    def test_broken_qubit_in_chain_rejected(self):
        topology = ChimeraGraph(1, 1, broken_qubits=[0])
        embedding = Embedding({"a": [0]})
        with pytest.raises(EmbeddingError):
            embedding.validate(topology)

    def test_disconnected_chain_rejected(self, tiny_chimera):
        embedding = Embedding({"a": [0, 1]})  # two left-column qubits, no coupler
        with pytest.raises(EmbeddingError):
            embedding.validate(tiny_chimera)

    def test_missing_interaction_coupler_rejected(self, tiny_chimera):
        left_0 = _index(tiny_chimera, 0, 0, 0, 0)
        left_1 = _index(tiny_chimera, 0, 0, 0, 1)
        embedding = Embedding({"a": [left_0], "b": [left_1]})
        with pytest.raises(EmbeddingError):
            embedding.validate(tiny_chimera, [("a", "b")])

    def test_interaction_with_unknown_variable_rejected(self, tiny_chimera):
        embedding = Embedding({"a": [0]})
        with pytest.raises(EmbeddingError):
            embedding.validate(tiny_chimera, [("a", "zzz")])

    def test_self_interaction_ignored(self, tiny_chimera):
        embedding = Embedding({"a": [0]})
        embedding.validate(tiny_chimera, [("a", "a")])
