"""Tests for the general greedy chain-growth embedder."""

import networkx as nx
import pytest

from repro.chimera.topology import ChimeraGraph
from repro.embedding.greedy import GreedyEmbedder
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError


class TestGreedyEmbedder:
    def test_embeds_a_path_graph(self, small_chimera):
        interactions = [(i, i + 1) for i in range(9)]
        embedding = GreedyEmbedder(small_chimera).embed(interactions, seed=0)
        embedding.validate(small_chimera, interactions)
        assert embedding.num_variables == 10

    def test_embeds_a_cycle(self, small_chimera):
        interactions = [(i, (i + 1) % 8) for i in range(8)]
        embedding = GreedyEmbedder(small_chimera).embed(interactions, seed=1)
        embedding.validate(small_chimera, interactions)

    def test_embeds_small_clique(self, small_chimera):
        nodes = list(range(6))
        interactions = [(i, j) for i in nodes for j in nodes if i < j]
        embedding = GreedyEmbedder(small_chimera).embed(interactions, seed=2)
        embedding.validate(small_chimera, interactions)

    def test_embeds_random_sparse_graph(self, small_chimera):
        graph = nx.gnm_random_graph(12, 18, seed=5)
        interactions = list(graph.edges())
        embedding = GreedyEmbedder(small_chimera).embed(
            interactions, variables=list(graph.nodes()), seed=3
        )
        embedding.validate(small_chimera, interactions)
        assert embedding.num_variables == 12

    def test_isolated_variables_get_single_qubits(self, tiny_chimera):
        embedding = GreedyEmbedder(tiny_chimera).embed([], variables=["a", "b"], seed=0)
        assert embedding.chain_length("a") == 1
        assert embedding.chain_length("b") == 1

    def test_nothing_to_embed_raises(self, tiny_chimera):
        with pytest.raises(EmbeddingError):
            GreedyEmbedder(tiny_chimera).embed([])

    def test_self_interaction_rejected(self, tiny_chimera):
        with pytest.raises(EmbeddingError):
            GreedyEmbedder(tiny_chimera).embed([("a", "a")])

    def test_impossible_problem_raises(self):
        # A clique on 10 variables cannot embed into a single unit cell.
        topology = ChimeraGraph(1, 1)
        nodes = list(range(10))
        interactions = [(i, j) for i in nodes for j in nodes if i < j]
        with pytest.raises(EmbeddingNotFoundError):
            GreedyEmbedder(topology, max_attempts=2).embed(interactions, seed=0)

    def test_invalid_max_attempts(self, tiny_chimera):
        with pytest.raises(EmbeddingError):
            GreedyEmbedder(tiny_chimera, max_attempts=0)

    def test_deterministic_given_seed(self, small_chimera):
        interactions = [(i, i + 1) for i in range(5)]
        a = GreedyEmbedder(small_chimera).embed(interactions, seed=7)
        b = GreedyEmbedder(small_chimera).embed(interactions, seed=7)
        assert a.chains() == b.chains()
