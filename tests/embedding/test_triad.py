"""Tests for the TRIAD embedding pattern (paper Figure 2)."""

import pytest

from repro.chimera.topology import ChimeraGraph
from repro.embedding.triad import TriadEmbedder, triad_capacity, triad_qubit_count
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError


class TestQubitCountFormulas:
    def test_counts_match_pattern_sizes_of_figure2(self):
        # Figure 2 shows TRIADs with 5, 8 and 12 chains.
        assert triad_qubit_count(5, shore=4) == 5 * 3  # t=2 -> chains of length 3
        assert triad_qubit_count(8, shore=4) == 8 * 3
        assert triad_qubit_count(12, shore=4) == 12 * 4  # t=3 -> chains of length 4

    def test_quadratic_growth(self):
        # Doubling the variables roughly doubles the chain length as well.
        small = triad_qubit_count(8)
        large = triad_qubit_count(16)
        assert large > 2 * small

    def test_invalid_arguments(self):
        with pytest.raises(EmbeddingError):
            triad_qubit_count(0)
        with pytest.raises(EmbeddingError):
            triad_qubit_count(5, shore=0)

    def test_capacity(self):
        assert triad_capacity(12, 12, 4) == 48
        assert triad_capacity(2, 3, 4) == 8
        with pytest.raises(EmbeddingError):
            triad_capacity(0, 1)


class TestPatternChains:
    def test_chain_count_and_length(self, small_chimera):
        embedder = TriadEmbedder(small_chimera)
        chains = embedder.pattern_chains(3)
        assert len(chains) == 12
        assert all(len(chain) == 4 for chain in chains)

    def test_chains_are_disjoint(self, small_chimera):
        chains = TriadEmbedder(small_chimera).pattern_chains(4)
        used = [q for chain in chains for q in chain]
        assert len(used) == len(set(used))

    def test_pattern_does_not_fit_raises(self, tiny_chimera):
        with pytest.raises(EmbeddingNotFoundError):
            TriadEmbedder(tiny_chimera).pattern_chains(3)

    def test_invalid_size(self, tiny_chimera):
        with pytest.raises(EmbeddingError):
            TriadEmbedder(tiny_chimera).pattern_chains(0)

    def test_offset_pattern_stays_in_bounds(self, small_chimera):
        chains = TriadEmbedder(small_chimera).pattern_chains(2, row_offset=2, col_offset=2)
        for chain in chains:
            for q in chain:
                coord = small_chimera.index_to_coordinate(q)
                assert coord.row >= 2 and coord.col >= 2

    def test_usable_chains_filter_broken(self):
        base = ChimeraGraph(2, 2)
        all_chains = TriadEmbedder(base).pattern_chains(2)
        # Break one qubit of the first chain.
        broken = base.with_defects([all_chains[0][0]])
        usable = TriadEmbedder(broken).usable_pattern_chains(2)
        assert len(usable) == len(all_chains) - 1


class TestEmbedClique:
    def test_clique_embedding_valid(self, small_chimera):
        variables = [f"v{i}" for i in range(8)]
        embedding = TriadEmbedder(small_chimera).embed_clique(variables)
        interactions = [
            (variables[i], variables[j])
            for i in range(len(variables))
            for j in range(i + 1, len(variables))
        ]
        embedding.validate(small_chimera, interactions)
        assert embedding.num_variables == 8

    def test_qubit_usage_matches_formula(self, small_chimera):
        variables = list(range(8))
        embedding = TriadEmbedder(small_chimera).embed_clique(variables)
        assert embedding.num_qubits == triad_qubit_count(8)

    def test_embedding_with_broken_qubits_grows_pattern(self):
        base = ChimeraGraph(3, 3)
        helper = TriadEmbedder(base)
        # Break one qubit of the minimal (t=2) pattern so one chain dies.
        victim = helper.pattern_chains(2)[0][0]
        broken = base.with_defects([victim])
        embedding = TriadEmbedder(broken).embed_clique(list(range(8)))
        embedding.validate(broken)
        assert embedding.num_variables == 8

    def test_too_many_variables_raises(self, tiny_chimera):
        with pytest.raises(EmbeddingNotFoundError):
            TriadEmbedder(tiny_chimera).embed_clique(list(range(20)))

    def test_duplicate_variables_rejected(self, small_chimera):
        with pytest.raises(EmbeddingError):
            TriadEmbedder(small_chimera).embed_clique([1, 1, 2])

    def test_empty_variables_rejected(self, small_chimera):
        with pytest.raises(EmbeddingError):
            TriadEmbedder(small_chimera).embed_clique([])

    def test_footprint(self, small_chimera):
        embedder = TriadEmbedder(small_chimera)
        assert embedder.footprint(4) == 1
        assert embedder.footprint(5) == 2
        assert embedder.footprint(16) == 4
        with pytest.raises(EmbeddingError):
            embedder.footprint(0)
