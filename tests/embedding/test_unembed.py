"""Tests for chain read-out (unembedding)."""

import pytest

from repro.embedding.base import Embedding
from repro.embedding.unembed import ChainReadout, majority_vote, resolve_chains
from repro.exceptions import EmbeddingError


class TestMajorityVote:
    def test_unanimous(self):
        assert majority_vote((1, 1, 1)) == 1
        assert majority_vote((0, 0)) == 0

    def test_majority(self):
        assert majority_vote((1, 1, 0)) == 1
        assert majority_vote((0, 0, 1)) == 0

    def test_tie_resolves_to_one(self):
        assert majority_vote((0, 1)) == 1

    def test_empty_chain_rejected(self):
        with pytest.raises(EmbeddingError):
            majority_vote(())


class TestResolveChains:
    @pytest.fixture()
    def embedding(self):
        return Embedding({"a": [0, 1], "b": [2], "c": [3, 4, 5]})

    def test_consistent_sample(self, embedding):
        sample = {0: 1, 1: 1, 2: 0, 3: 1, 4: 1, 5: 1}
        assignment, broken = resolve_chains(sample, embedding)
        assert assignment == {"a": 1, "b": 0, "c": 1}
        assert not broken

    def test_broken_chain_majority(self, embedding):
        sample = {0: 1, 1: 0, 2: 0, 3: 0, 4: 0, 5: 1}
        assignment, broken = resolve_chains(sample, embedding, ChainReadout.MAJORITY)
        assert broken
        assert assignment["c"] == 0
        assert assignment["a"] == 1  # tie resolves to 1

    def test_broken_chain_first(self, embedding):
        sample = {0: 0, 1: 1, 2: 1, 3: 1, 4: 0, 5: 0}
        assignment, broken = resolve_chains(sample, embedding, ChainReadout.FIRST)
        assert broken
        assert assignment["a"] == 0
        assert assignment["c"] == 1

    def test_broken_chain_discard(self, embedding):
        sample = {0: 0, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1}
        assignment, broken = resolve_chains(sample, embedding, ChainReadout.DISCARD)
        assert broken
        assert assignment == {}

    def test_discard_with_consistent_sample(self, embedding):
        sample = {0: 1, 1: 1, 2: 1, 3: 0, 4: 0, 5: 0}
        assignment, broken = resolve_chains(sample, embedding, ChainReadout.DISCARD)
        assert not broken
        assert assignment == {"a": 1, "b": 1, "c": 0}

    def test_missing_qubit_raises(self, embedding):
        with pytest.raises(EmbeddingError):
            resolve_chains({0: 1}, embedding)

    def test_non_binary_value_raises(self, embedding):
        sample = {0: 2, 1: 1, 2: 0, 3: 0, 4: 0, 5: 0}
        with pytest.raises(EmbeddingError):
            resolve_chains(sample, embedding)
