"""Tests for the clustered multi-TRIAD embedding (paper Figure 3)."""

import pytest

from repro.chimera.topology import ChimeraGraph
from repro.embedding.clustered import ClusteredEmbedder, clustered_qubit_count
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError


class TestQubitCountFormula:
    def test_linear_growth_in_clusters(self):
        per_cluster = clustered_qubit_count(1, 8)
        assert clustered_qubit_count(3, 8) == 3 * per_cluster

    def test_matches_theorem3_shape(self):
        # Theta(n * (m*l)^2): quadrupling the variables per cluster should
        # grow the qubit count by clearly more than 4x.
        small = clustered_qubit_count(1, 4)
        large = clustered_qubit_count(1, 16)
        assert large > 4 * small

    def test_figure2_sizes(self):
        # A cluster of 8 variables occupies a TRIAD of 8 chains of length 3.
        assert clustered_qubit_count(1, 8) == 24
        assert clustered_qubit_count(4, 8) == 96

    def test_invalid_dimensions(self):
        with pytest.raises(EmbeddingError):
            clustered_qubit_count(0, 1)


class TestClusteredEmbedding:
    def test_two_clusters_fully_connected_internally(self, small_chimera):
        clusters = [["a0", "a1", "a2"], ["b0", "b1", "b2"]]
        embedding = ClusteredEmbedder(small_chimera).embed(clusters)
        for cluster in clusters:
            for i in range(len(cluster)):
                for j in range(i + 1, len(cluster)):
                    assert (
                        embedding.coupler_between(cluster[i], cluster[j], small_chimera)
                        is not None
                    )

    def test_chains_disjoint_across_clusters(self, small_chimera):
        clusters = [[0, 1], [2, 3], [4, 5]]
        embedding = ClusteredEmbedder(small_chimera).embed(clusters)
        assert embedding.num_variables == 6
        assert embedding.num_qubits == len(embedding.used_qubits())

    def test_figure3_configuration_four_clusters_of_eight(self):
        # Figure 3: four clusters with eight plans each on a 12x12 grid.
        topology = ChimeraGraph(12, 12)
        clusters = [[f"c{c}_p{p}" for p in range(8)] for c in range(4)]
        embedding = ClusteredEmbedder(topology).embed(clusters)
        assert embedding.num_variables == 32
        # Each 8-variable TRIAD needs 8 * 3 = 24 qubits.
        assert embedding.num_qubits == 4 * 24

    def test_unrealizable_cross_cluster_interaction_rejected(self):
        # Clusters placed far apart cannot realise an arbitrary interaction.
        topology = ChimeraGraph(6, 6)
        clusters = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        embedder = ClusteredEmbedder(topology)
        embedding = embedder.embed(clusters)
        pairs = embedder.realizable_cross_cluster_pairs(embedding, clusters)
        all_cross = {(u, v) for u in clusters[0] for v in clusters[1]}
        unrealizable = [
            pair for pair in all_cross if pair not in pairs and tuple(reversed(pair)) not in pairs
        ]
        if unrealizable:
            with pytest.raises(EmbeddingError):
                embedder.embed(clusters, interactions=[unrealizable[0]])

    def test_realizable_cross_cluster_interaction_accepted(self, small_chimera):
        clusters = [[0, 1, 2, 3], [4, 5, 6, 7]]
        embedder = ClusteredEmbedder(small_chimera)
        embedding = embedder.embed(clusters)
        pairs = embedder.realizable_cross_cluster_pairs(embedding, clusters)
        if pairs:
            embedder.embed(clusters, interactions=[pairs[0]])

    def test_capacity_exhaustion_raises(self, tiny_chimera):
        clusters = [[i] for i in range(100)]
        with pytest.raises(EmbeddingNotFoundError):
            ClusteredEmbedder(tiny_chimera).embed(clusters)

    def test_oversized_cluster_raises(self, tiny_chimera):
        with pytest.raises(EmbeddingNotFoundError):
            ClusteredEmbedder(tiny_chimera).embed([list(range(20))])

    def test_duplicate_variables_rejected(self, small_chimera):
        with pytest.raises(EmbeddingError):
            ClusteredEmbedder(small_chimera).embed([[0, 1], [1, 2]])

    def test_empty_cluster_rejected(self, small_chimera):
        with pytest.raises(EmbeddingError):
            ClusteredEmbedder(small_chimera).embed([[0], []])
