"""Tests for the intra-cell clique patterns."""

import pytest

from repro.chimera.topology import ChimeraCoordinate
from repro.embedding.cell_patterns import (
    intra_cell_clique_chains,
    max_clique_size_per_cell,
    positions_needed,
)
from repro.exceptions import EmbeddingError


def _cell_positions(topology, row=0, col=0):
    return [
        (
            topology.coordinate_to_index(ChimeraCoordinate(row, col, 0, k)),
            topology.coordinate_to_index(ChimeraCoordinate(row, col, 1, k)),
        )
        for k in range(topology.shore)
    ]


class TestCapacityHelpers:
    def test_max_clique_size(self):
        assert max_clique_size_per_cell(4) == 5
        assert max_clique_size_per_cell(2) == 3

    def test_max_clique_invalid_shore(self):
        with pytest.raises(EmbeddingError):
            max_clique_size_per_cell(0)

    def test_positions_needed(self):
        assert positions_needed(1) == 1
        assert positions_needed(2) == 1
        assert positions_needed(3) == 2
        assert positions_needed(5) == 4

    def test_positions_needed_invalid(self):
        with pytest.raises(EmbeddingError):
            positions_needed(0)


class TestChainConstruction:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5])
    def test_chain_count_and_qubit_budget(self, size):
        positions = [(2 * k, 2 * k + 1) for k in range(4)]
        chains = intra_cell_clique_chains(positions, size)
        assert len(chains) == size
        expected_qubits = 1 if size == 1 else 2 * size - 2
        assert sum(len(c) for c in chains) == expected_qubits

    def test_chains_are_disjoint(self):
        positions = [(2 * k, 2 * k + 1) for k in range(4)]
        chains = intra_cell_clique_chains(positions, 5)
        used = [q for chain in chains for q in chain]
        assert len(used) == len(set(used))

    def test_insufficient_positions_rejected(self):
        with pytest.raises(EmbeddingError):
            intra_cell_clique_chains([(0, 1)], 3)

    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_all_pairs_coupled_on_real_cell(self, size, tiny_chimera):
        """Every pair of chains must share a physical coupler (clique embedding)."""
        positions = _cell_positions(tiny_chimera)
        chains = intra_cell_clique_chains(positions, size)
        for i in range(size):
            for j in range(i + 1, size):
                coupled = any(
                    tiny_chimera.has_coupler(qu, qv)
                    for qu in chains[i]
                    for qv in chains[j]
                )
                assert coupled, f"chains {i} and {j} share no coupler"

    @pytest.mark.parametrize("size", [3, 4, 5])
    def test_multi_qubit_chains_are_connected(self, size, tiny_chimera):
        positions = _cell_positions(tiny_chimera)
        chains = intra_cell_clique_chains(positions, size)
        for chain in chains:
            if len(chain) == 2:
                assert tiny_chimera.has_coupler(chain[0], chain[1])
