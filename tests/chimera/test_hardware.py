"""Tests for the device specifications."""

import pytest

from repro.chimera.hardware import DWAVE_2X, DWAVE_TWO, DWaveSpec
from repro.exceptions import TopologyError


class TestPaperSpecs:
    def test_dwave_2x_matches_paper(self):
        assert DWAVE_2X.total_qubits == 1152
        assert DWAVE_2X.functional_qubits == 1097
        assert DWAVE_2X.num_broken_qubits == 55
        assert DWAVE_2X.cell_rows == DWAVE_2X.cell_cols == 12

    def test_dwave_2x_timing_matches_paper(self):
        # 129 us anneal + 247 us read-out = 376 us per run.
        assert DWAVE_2X.time_per_read_us == pytest.approx(376.0)
        assert DWAVE_2X.time_per_read_ms == pytest.approx(0.376)
        assert DWAVE_2X.default_num_reads == 1000
        assert DWAVE_2X.default_num_gauges == 10

    def test_dwave_two_predecessor(self):
        assert DWAVE_TWO.total_qubits == 512
        assert DWAVE_TWO.functional_qubits == 509


class TestSpecValidation:
    def test_invalid_dimensions(self):
        with pytest.raises(TopologyError):
            DWaveSpec(name="bad", cell_rows=0, cell_cols=1)

    def test_invalid_timing(self):
        with pytest.raises(TopologyError):
            DWaveSpec(name="bad", cell_rows=1, cell_cols=1, anneal_time_us=0.0)

    def test_invalid_functional_count(self):
        with pytest.raises(TopologyError):
            DWaveSpec(name="bad", cell_rows=1, cell_cols=1, functional_qubits=100)

    def test_no_functional_count_means_no_defects(self):
        spec = DWaveSpec(name="perfect", cell_rows=2, cell_cols=2)
        assert spec.num_broken_qubits == 0


class TestBuildTopology:
    def test_perfect_topology(self):
        topo = DWAVE_2X.build_topology(perfect=True)
        assert topo.num_qubits == 1152

    def test_defective_topology_matches_functional_count(self):
        topo = DWAVE_2X.build_topology(seed=0)
        assert topo.num_qubits == 1097

    def test_defective_topology_deterministic(self):
        a = DWAVE_2X.build_topology(seed=5)
        b = DWAVE_2X.build_topology(seed=5)
        assert a.broken_qubits == b.broken_qubits

    def test_small_spec_topology(self, small_spec):
        topo = small_spec.build_topology()
        assert topo.rows == 4 and topo.cols == 4
        assert topo.num_qubits == 128
