"""Tests for the broken-qubit defect models."""

import pytest

from repro.chimera.defects import DefectModel, sample_broken_qubits
from repro.chimera.topology import ChimeraGraph
from repro.exceptions import TopologyError


class TestSampleBrokenQubits:
    def test_count_and_range(self):
        broken = sample_broken_qubits(100, 10, seed=0)
        assert len(broken) == 10
        assert all(0 <= q < 100 for q in broken)

    def test_deterministic(self):
        assert sample_broken_qubits(50, 5, seed=1) == sample_broken_qubits(50, 5, seed=1)

    def test_zero_broken(self):
        assert sample_broken_qubits(10, 0) == frozenset()

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            sample_broken_qubits(10, -1)

    def test_too_many_rejected(self):
        with pytest.raises(TopologyError):
            sample_broken_qubits(10, 11)


class TestDefectModel:
    def test_paper_yield(self):
        model = DefectModel()
        # The paper machine: 55 of 1152 qubit sites broken.
        assert model.num_broken(1152) == 55

    def test_apply_breaks_requested_fraction(self):
        model = DefectModel(broken_fraction=0.1)
        topo = DefectModel(broken_fraction=0.1).apply(ChimeraGraph(4, 4), seed=0)
        assert len(topo.broken_qubits) == model.num_broken(128)

    def test_apply_is_deterministic(self):
        model = DefectModel(broken_fraction=0.05)
        a = model.apply(ChimeraGraph(4, 4), seed=3)
        b = model.apply(ChimeraGraph(4, 4), seed=3)
        assert a.broken_qubits == b.broken_qubits

    def test_apply_preserves_existing_defects(self):
        model = DefectModel(broken_fraction=0.1)
        base = ChimeraGraph(4, 4, broken_qubits=[0, 1, 2])
        result = model.apply(base, seed=1)
        assert {0, 1, 2} <= set(result.broken_qubits)

    def test_apply_noop_when_target_already_met(self):
        base = ChimeraGraph(2, 2, broken_qubits=list(range(10)))
        result = DefectModel(broken_fraction=0.1).apply(base, seed=0)
        assert result is base

    def test_invalid_fraction(self):
        with pytest.raises(TopologyError):
            DefectModel(broken_fraction=1.0)
        with pytest.raises(TopologyError):
            DefectModel(broken_fraction=-0.1)
