"""Tests for the Chimera topology model (paper Figure 1 structure)."""

import pytest

from repro.chimera.topology import ChimeraCoordinate, ChimeraGraph
from repro.exceptions import TopologyError


class TestConstruction:
    def test_counts_of_c2(self, tiny_chimera):
        # 2x2 cells x 8 qubits = 32 qubits.
        assert tiny_chimera.num_qubits_total == 32
        assert tiny_chimera.num_qubits == 32
        assert tiny_chimera.num_cells == 4

    def test_coupler_count_of_c2(self, tiny_chimera):
        # Intra-cell: 4 cells x 16 = 64. Inter-cell: 2 vertical pairs x 4 +
        # 2 horizontal pairs x 4 = 16. Total 80.
        assert tiny_chimera.num_couplers == 80

    def test_dwave2x_dimensions(self):
        full = ChimeraGraph(12, 12)
        assert full.num_qubits_total == 1152
        assert full.num_cells == 144

    def test_invalid_dimensions(self):
        with pytest.raises(TopologyError):
            ChimeraGraph(0, 2)
        with pytest.raises(TopologyError):
            ChimeraGraph(2, 2, shore=0)

    def test_rectangular_grid(self):
        graph = ChimeraGraph(2, 3)
        assert graph.num_cells == 6
        assert graph.num_qubits_total == 48


class TestDegreeStructure:
    def test_max_degree_is_six(self):
        graph = ChimeraGraph(3, 3)
        assert graph.max_degree() == 6

    def test_every_qubit_has_degree_at_most_six(self):
        graph = ChimeraGraph(3, 3)
        assert all(graph.degree(q) <= 6 for q in graph.qubits)

    def test_intra_cell_structure_is_complete_bipartite(self, tiny_chimera):
        cell = tiny_chimera.cell_qubits(0, 0)
        left, right = cell[:4], cell[4:]
        for l_qubit in left:
            for r_qubit in right:
                assert tiny_chimera.has_coupler(l_qubit, r_qubit)
        # No couplers within a column.
        for i in range(4):
            for j in range(i + 1, 4):
                assert not tiny_chimera.has_coupler(left[i], left[j])
                assert not tiny_chimera.has_coupler(right[i], right[j])

    def test_left_column_couples_vertically(self, tiny_chimera):
        upper = tiny_chimera.coordinate_to_index(ChimeraCoordinate(0, 0, 0, 2))
        lower = tiny_chimera.coordinate_to_index(ChimeraCoordinate(1, 0, 0, 2))
        assert tiny_chimera.has_coupler(upper, lower)

    def test_right_column_couples_horizontally(self, tiny_chimera):
        left_cell = tiny_chimera.coordinate_to_index(ChimeraCoordinate(0, 0, 1, 3))
        right_cell = tiny_chimera.coordinate_to_index(ChimeraCoordinate(0, 1, 1, 3))
        assert tiny_chimera.has_coupler(left_cell, right_cell)

    def test_no_cross_column_inter_cell_couplers(self, tiny_chimera):
        left_col = tiny_chimera.coordinate_to_index(ChimeraCoordinate(0, 0, 0, 0))
        right_col_next_row = tiny_chimera.coordinate_to_index(ChimeraCoordinate(1, 0, 1, 0))
        assert not tiny_chimera.has_coupler(left_col, right_col_next_row)

    def test_chimera_graph_is_bipartite(self):
        import networkx as nx

        graph = ChimeraGraph(3, 3).to_networkx()
        assert nx.is_bipartite(graph)

    def test_chimera_graph_is_connected(self):
        import networkx as nx

        graph = ChimeraGraph(3, 3).to_networkx()
        assert nx.is_connected(graph)


class TestCoordinates:
    def test_roundtrip_all_qubits(self, tiny_chimera):
        for q in range(tiny_chimera.num_qubits_total):
            coord = tiny_chimera.index_to_coordinate(q)
            assert tiny_chimera.coordinate_to_index(coord) == q

    def test_out_of_range_coordinate(self, tiny_chimera):
        with pytest.raises(TopologyError):
            tiny_chimera.coordinate_to_index(ChimeraCoordinate(5, 0, 0, 0))
        with pytest.raises(TopologyError):
            tiny_chimera.coordinate_to_index(ChimeraCoordinate(0, 0, 2, 0))
        with pytest.raises(TopologyError):
            tiny_chimera.coordinate_to_index(ChimeraCoordinate(0, 0, 0, 4))

    def test_out_of_range_index(self, tiny_chimera):
        with pytest.raises(TopologyError):
            tiny_chimera.index_to_coordinate(32)

    def test_cell_qubits(self, tiny_chimera):
        qubits = tiny_chimera.cell_qubits(1, 1)
        assert len(qubits) == 8
        coords = [tiny_chimera.index_to_coordinate(q) for q in qubits]
        assert all(c.row == 1 and c.col == 1 for c in coords)


class TestDefects:
    def test_broken_qubits_removed(self):
        graph = ChimeraGraph(2, 2, broken_qubits=[0, 5])
        assert graph.num_qubits == 30
        assert not graph.has_qubit(0)
        assert 0 in graph.broken_qubits

    def test_broken_qubit_couplers_removed(self):
        graph = ChimeraGraph(2, 2, broken_qubits=[0])
        for q in graph.qubits:
            assert 0 not in graph.neighbors(q)

    def test_broken_coupler(self):
        base = ChimeraGraph(1, 1)
        u, v = base.edges()[0]
        graph = ChimeraGraph(1, 1, broken_couplers=[(u, v)])
        assert not graph.has_coupler(u, v)
        assert graph.has_qubit(u) and graph.has_qubit(v)

    def test_with_defects_copy(self, tiny_chimera):
        defective = tiny_chimera.with_defects([3])
        assert tiny_chimera.has_qubit(3)
        assert not defective.has_qubit(3)

    def test_broken_index_out_of_range(self):
        with pytest.raises(TopologyError):
            ChimeraGraph(1, 1, broken_qubits=[99])

    def test_neighbors_of_broken_qubit_raises(self):
        graph = ChimeraGraph(1, 1, broken_qubits=[2])
        with pytest.raises(TopologyError):
            graph.neighbors(2)

    def test_self_coupler_rejected(self):
        with pytest.raises(TopologyError):
            ChimeraGraph(1, 1, broken_couplers=[(1, 1)])


class TestRendering:
    def test_ascii_rendering_marks_broken(self):
        graph = ChimeraGraph(2, 2, broken_qubits=[0])
        art = graph.render_ascii()
        assert "x" in art
        assert "o" in art

    def test_ascii_rendering_shape(self, tiny_chimera):
        art = tiny_chimera.render_ascii(max_cells=2)
        # 2 cell-rows x 4 shore rows plus a blank line between cell rows.
        assert len([line for line in art.splitlines() if line.strip()]) == 8
