"""Reproduction of the worked Example 1 from paper Section 4.

Four plans with costs 2, 4, 3, 1 (plans 1/2 for query 1, plans 3/4 for
query 2); plans 2 and 3 share an intermediate result worth 5 cost units.
The paper states that the QUBO minimum selects exactly those two plans.
"""

import pytest

from repro.core.logical import LogicalMapping
from repro.qubo.bruteforce import solve_bruteforce


class TestPaperExample1:
    def test_energy_terms(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        qubo = mapping.qubo
        # E_C coefficients: 2, 4, 3, 1 (minus w_L each).
        costs = [2.0, 4.0, 3.0, 1.0]
        for plan_index, cost in enumerate(costs):
            assert qubo.get_linear(plan_index) == pytest.approx(
                cost - mapping.weight_at_least_one
            )
        # E_S: -5 between plans 1 and 2 (paper's p2, p3).
        assert qubo.get_quadratic(1, 2) == pytest.approx(-5.0)
        # E_M: w_M between plans of the same query.
        assert qubo.get_quadratic(0, 1) == pytest.approx(mapping.weight_at_most_one)
        assert qubo.get_quadratic(2, 3) == pytest.approx(mapping.weight_at_most_one)

    def test_paper_weight_values(self, paper_example_problem):
        """The paper uses w_L = 4 + eps and w_M = w_L + 5 (+ eps in our mapping)."""
        mapping = LogicalMapping(paper_example_problem)
        assert mapping.weight_at_least_one == pytest.approx(4.25)
        assert mapping.weight_at_most_one == pytest.approx(4.25 + 5.0 + 0.25)

    def test_global_minimum_selects_plans_2_and_3(self, paper_example_problem):
        """X1=0, X2=1, X3=1, X4=0 minimises the energy formula (paper)."""
        mapping = LogicalMapping(paper_example_problem)
        assignment, _energy = solve_bruteforce(mapping.qubo)
        assert assignment == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_minimum_is_the_optimal_mqo_solution(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        assignment, _energy = solve_bruteforce(mapping.qubo)
        solution = mapping.solution_from_assignment(assignment)
        assert solution.is_valid
        assert solution.cost == pytest.approx(2.0)  # 4 + 3 - 5

    def test_minimum_beats_all_other_valid_selections(self, paper_example_problem):
        optimal_cost = 2.0
        for choices in ([0, 0], [0, 1], [1, 0], [1, 1]):
            cost = paper_example_problem.solution_from_choices(choices).cost
            assert cost >= optimal_cost - 1e-9
