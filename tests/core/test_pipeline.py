"""Tests for the end-to-end QuantumMQO pipeline (Algorithm 1)."""

import pytest

from repro.annealer.device import DWaveSamplerSimulator
from repro.annealer.noise import NoiseModel
from repro.core.pipeline import QuantumMQO
from repro.embedding.native import NativeClusteredEmbedder
from repro.exceptions import EmbeddingError
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.problem import MQOProblem


@pytest.fixture()
def pipeline(ideal_device):
    return QuantumMQO(device=ideal_device, seed=1)


class TestSolveSmallProblems:
    def test_paper_example_solved_optimally(self, pipeline, paper_example_problem):
        result = pipeline.solve(paper_example_problem, num_reads=40, num_gauges=4)
        assert result.best_solution.is_valid
        assert result.best_solution.cost == pytest.approx(2.0)
        assert result.best_solution.selected_plans == frozenset({1, 2})

    def test_small_problem_matches_exhaustive_optimum(self, pipeline, small_problem):
        import itertools

        best = min(
            small_problem.solution_from_choices(list(choices)).cost
            for choices in itertools.product(*(range(q.num_plans) for q in small_problem.queries))
        )
        result = pipeline.solve(small_problem, num_reads=60, num_gauges=6)
        assert result.best_solution.cost == pytest.approx(best)

    def test_result_contents(self, pipeline, paper_example_problem):
        result = pipeline.solve(paper_example_problem, num_reads=20, num_gauges=2)
        assert result.problem is paper_example_problem
        assert result.sample_set.num_reads == 20
        assert len(result.trajectory) == 20
        assert result.preprocessing_time_ms > 0.0
        assert result.qubits_per_variable >= 1.0

    def test_trajectory_is_monotone_and_timed(self, pipeline, medium_problem):
        result = pipeline.solve(medium_problem, num_reads=30, num_gauges=3)
        times = [t for t, _ in result.trajectory]
        costs = [c for _, c in result.trajectory]
        assert times == sorted(times)
        assert all(costs[i + 1] <= costs[i] + 1e-9 for i in range(len(costs) - 1))
        # Device time accounting: read k completes at k * 376 us.
        assert times[0] == pytest.approx(pipeline.device.time_per_read_ms)

    def test_cost_after_reads_and_time(self, pipeline, medium_problem):
        result = pipeline.solve(medium_problem, num_reads=30, num_gauges=3)
        assert result.cost_after_reads(30) <= result.cost_after_reads(1) + 1e-9
        final_time = result.trajectory[-1][0]
        assert result.cost_at_time(final_time) == pytest.approx(result.best_solution.cost)
        assert result.cost_at_time(0.0) == float("inf")
        assert result.cost_after_reads(0) == float("inf")

    def test_device_time_matches_spec(self, pipeline, paper_example_problem):
        result = pipeline.solve(paper_example_problem, num_reads=25, num_gauges=5)
        expected = 25 * pipeline.device.time_per_read_ms
        assert result.device_time_ms == pytest.approx(expected)


class TestEmbeddingStrategies:
    def test_explicit_embedding_is_used(self, ideal_device, paper_example_problem):
        clusters = [[0, 1], [2, 3]]
        embedding = NativeClusteredEmbedder(ideal_device.topology).embed(clusters)
        pipeline = QuantumMQO(device=ideal_device, embedder=embedding, seed=2)
        result = pipeline.solve(paper_example_problem, num_reads=20, num_gauges=2)
        assert result.physical_mapping.embedding is embedding

    @pytest.mark.parametrize("strategy", ["native", "greedy", "triad", "auto"])
    def test_named_strategies(self, ideal_device, paper_example_problem, strategy):
        pipeline = QuantumMQO(device=ideal_device, embedder=strategy, seed=3)
        result = pipeline.solve(paper_example_problem, num_reads=20, num_gauges=2)
        assert result.best_solution.is_valid

    def test_clustered_strategy(self, ideal_device):
        problem = MQOProblem([[1.0, 2.0], [2.0, 1.0]])  # no savings: clusters independent
        pipeline = QuantumMQO(device=ideal_device, embedder="clustered", seed=3)
        result = pipeline.solve(problem, num_reads=20, num_gauges=2)
        assert result.best_solution.is_valid

    def test_unknown_strategy_rejected(self, ideal_device, paper_example_problem):
        pipeline = QuantumMQO(device=ideal_device, embedder="bogus")
        with pytest.raises(EmbeddingError):
            pipeline.solve(paper_example_problem, num_reads=5)

    def test_auto_falls_back_for_six_plan_queries(self, ideal_device):
        # Six plans per query exceed the per-cell pattern; auto must fall back.
        problem = MQOProblem(
            [[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]],
            savings={(0, 6): 2.0},
        )
        pipeline = QuantumMQO(device=ideal_device, embedder="auto", seed=4)
        result = pipeline.solve(problem, num_reads=30, num_gauges=3)
        assert result.best_solution.is_valid


class TestNoiseAndRepair:
    def test_noisy_device_still_produces_valid_best(self, small_chimera, small_spec):
        noisy_device = DWaveSamplerSimulator(
            spec=small_spec,
            topology=small_chimera,
            noise=NoiseModel(0.05, 0.02),
            num_sweeps=30,
            seed=11,
        )
        problem = generate_paper_testcase(12, 2, seed=5)
        pipeline = QuantumMQO(device=noisy_device, seed=6)
        result = pipeline.solve(problem, num_reads=40, num_gauges=4)
        assert result.best_solution.is_valid
        assert result.num_invalid_reads >= 0

    def test_repair_disabled_keeps_raw_best(self, ideal_device, medium_problem):
        pipeline = QuantumMQO(device=ideal_device, repair_invalid=False, seed=7)
        result = pipeline.solve(medium_problem, num_reads=20, num_gauges=2)
        assert result.best_solution.is_valid  # fallback repair still guarantees validity
