"""Tests for the qubit-complexity analysis (paper Section 6, Figure 7)."""

import pytest

from repro.chimera.topology import ChimeraGraph
from repro.core.complexity import (
    CapacityPoint,
    capacity_frontier,
    clustered_pattern_qubits,
    logical_qubit_lower_bound,
    max_queries_for_qubits,
    native_pattern_qubits,
    preprocessing_operation_count,
)
from repro.core.logical import LogicalMapping
from repro.embedding.clustered import ClusteredEmbedder
from repro.exceptions import InvalidProblemError
from repro.mqo.generator import generate_clustered_problem


class TestLowerBound:
    def test_theorem2_growth_rate(self):
        """Omega(n * (m*l)^2): scaling m*l by 4 scales the bound by ~16."""
        small = logical_qubit_lower_bound(2, 2, 3)
        large = logical_qubit_lower_bound(2, 8, 3)
        assert large >= 10 * small

    def test_linear_in_clusters(self):
        assert logical_qubit_lower_bound(4, 2, 2) == 4 * logical_qubit_lower_bound(1, 2, 2)

    def test_at_least_one_qubit_per_plan(self):
        assert logical_qubit_lower_bound(1, 1, 3) >= 3

    def test_invalid_dimensions(self):
        with pytest.raises(InvalidProblemError):
            logical_qubit_lower_bound(0, 1, 1)


class TestPatternCounts:
    def test_clustered_matches_triad_formula(self):
        # One cluster of m*l plans needs m*l chains of length ceil(m*l/4)+1.
        assert clustered_pattern_qubits(1, 2, 4) == 8 * 3
        assert clustered_pattern_qubits(3, 1, 5) == 3 * 5 * 3

    def test_clustered_upper_bounds_lower_bound(self):
        for n, m, l in [(1, 1, 2), (2, 3, 4), (5, 2, 5)]:
            assert clustered_pattern_qubits(n, m, l) >= logical_qubit_lower_bound(n, m, l)

    def test_clustered_matches_actual_embedding(self):
        """The closed-form count matches the qubits used by ClusteredEmbedder."""
        topology = ChimeraGraph(6, 6)
        clusters = [[f"c{c}_{i}" for i in range(6)] for c in range(3)]
        embedding = ClusteredEmbedder(topology).embed(clusters)
        assert embedding.num_qubits == clustered_pattern_qubits(3, 1, 6)

    def test_native_counts(self):
        assert native_pattern_qubits(10, 1) == 10
        assert native_pattern_qubits(10, 2) == 20
        assert native_pattern_qubits(10, 3) == 40
        assert native_pattern_qubits(10, 5) == 80

    def test_native_rejects_oversized_cliques(self):
        with pytest.raises(InvalidProblemError):
            native_pattern_qubits(10, 6)

    def test_invalid_shore(self):
        with pytest.raises(InvalidProblemError):
            clustered_pattern_qubits(1, 1, 2, shore=0)


class TestCapacity:
    def test_paper_scale_clustered_capacities(self):
        # With the per-query TRIAD pattern, 1152 qubits host 288 two-plan queries.
        assert max_queries_for_qubits(1152, 2, pattern="clustered") == 288
        assert max_queries_for_qubits(1152, 5, pattern="clustered") == 76

    def test_native_capacity_matches_paper_order_of_magnitude(self):
        # The paper treats 537 two-plan queries on 1097 functional qubits.
        assert max_queries_for_qubits(1097, 2, pattern="native") == 548
        assert max_queries_for_qubits(1097, 5, pattern="native") == 137

    def test_doubling_qubits_roughly_doubles_capacity(self):
        for plans in (2, 3, 5):
            base = max_queries_for_qubits(1152, plans)
            doubled = max_queries_for_qubits(2304, plans)
            # Integer division can add one extra query beyond the exact double.
            assert 2 * base <= doubled <= 2 * base + 1

    def test_unknown_pattern_rejected(self):
        with pytest.raises(InvalidProblemError):
            max_queries_for_qubits(100, 2, pattern="magic")

    def test_native_pattern_oversized_returns_zero(self):
        assert max_queries_for_qubits(1000, 9, pattern="native") == 0

    def test_capacity_frontier_structure(self):
        frontier = capacity_frontier(1152, plans_range=(2, 5, 10))
        assert [point.plans_per_query for point in frontier] == [2, 5, 10]
        assert all(isinstance(point, CapacityPoint) for point in frontier)

    def test_capacity_frontier_monotone_decreasing(self):
        frontier = capacity_frontier(4608, plans_range=range(2, 21))
        capacities = [point.max_queries for point in frontier]
        assert capacities == sorted(capacities, reverse=True)

    def test_capacity_frontier_grows_with_budget(self):
        small = {p.plans_per_query: p.max_queries for p in capacity_frontier(1152)}
        large = {p.plans_per_query: p.max_queries for p in capacity_frontier(4608)}
        assert all(large[k] >= small[k] for k in small)


class TestPreprocessingComplexity:
    def test_operation_count_formula(self):
        assert preprocessing_operation_count(2, 3, 4) == 2 * (12**2)

    def test_qubo_size_tracks_theorem4_bound(self):
        """The number of QUBO terms grows like O(n*(m*l)^2) for dense clusters."""
        sizes = []
        for queries_per_cluster in (2, 4):
            problem = generate_clustered_problem(
                2, queries_per_cluster, 2, intra_cluster_density=1.0, seed=0
            )
            mapping = LogicalMapping(problem)
            terms = mapping.qubo.num_variables + mapping.qubo.num_interactions
            sizes.append(terms)
        # Doubling m (queries per cluster) should roughly quadruple the
        # number of quadratic terms; allow generous slack.
        assert sizes[1] >= 3 * sizes[0]

    def test_invalid_dimensions(self):
        with pytest.raises(InvalidProblemError):
            preprocessing_operation_count(1, 0, 1)
