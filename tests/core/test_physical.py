"""Tests for the physical mapping (logical QUBO -> qubit weights, Section 5)."""

import itertools

import pytest

from repro.core.logical import LogicalMapping
from repro.core.physical import PhysicalMappingConfig, embed_logical_qubo
from repro.embedding.base import Embedding
from repro.embedding.triad import TriadEmbedder
from repro.embedding.unembed import ChainReadout
from repro.exceptions import EmbeddingError
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.model import QUBOModel


def _embedded_mapping(topology, num_queries=8, plans_per_query=3, seed=7):
    """A co-generated (problem, embedding) pair plus its logical mapping."""
    from repro.experiments.workloads import generate_embedded_testcase

    testcase = generate_embedded_testcase(num_queries, plans_per_query, topology, seed=seed)
    return LogicalMapping(testcase.problem), testcase.embedding


class TestConfig:
    def test_invalid_epsilon(self):
        with pytest.raises(EmbeddingError):
            PhysicalMappingConfig(chain_strength_epsilon=0.0)

    def test_invalid_uniform_strength(self):
        with pytest.raises(EmbeddingError):
            PhysicalMappingConfig(uniform_chain_strength=-1.0)


class TestWeightPlacement:
    def test_linear_weights_distributed_over_chains(self, small_chimera):
        logical = QUBOModel(linear={"a": 6.0, "b": -4.0}, quadratic={("a", "b"): 1.0})
        chains = {"a": (0, 4), "b": (1,)}  # qubit 0/1 left column, 4 right column
        embedding = Embedding(chains)
        physical = embed_logical_qubo(logical, embedding, small_chimera)
        # Chain "a" has 2 qubits: each gets 3.0 plus possibly chain terms.
        strength_a = physical.chain_strengths["a"]
        assert physical.physical_qubo.get_linear(0) == pytest.approx(3.0 + strength_a)
        assert physical.physical_qubo.get_linear(4) == pytest.approx(3.0 + strength_a)
        assert physical.physical_qubo.get_linear(1) == pytest.approx(-4.0)

    def test_quadratic_weight_on_single_coupler(self, small_chimera):
        logical = QUBOModel(quadratic={("a", "b"): 2.5})
        embedding = Embedding({"a": (0,), "b": (4,)})
        physical = embed_logical_qubo(logical, embedding, small_chimera)
        assert physical.physical_qubo.get_quadratic(0, 4) == pytest.approx(2.5)
        assert physical.interaction_couplers[("a", "b")] in {(0, 4), (4, 0)}

    def test_chain_coupler_gets_minus_two_strength(self, small_chimera):
        logical = QUBOModel(linear={"a": 1.0})
        embedding = Embedding({"a": (0, 4)})
        physical = embed_logical_qubo(logical, embedding, small_chimera)
        strength = physical.chain_strengths["a"]
        assert physical.physical_qubo.get_quadratic(0, 4) == pytest.approx(-2.0 * strength)

    def test_missing_chain_rejected(self, small_chimera):
        logical = QUBOModel(linear={"a": 1.0, "b": 1.0})
        embedding = Embedding({"a": (0,)})
        with pytest.raises(EmbeddingError):
            embed_logical_qubo(logical, embedding, small_chimera)

    def test_missing_coupler_rejected(self, small_chimera):
        logical = QUBOModel(quadratic={("a", "b"): 1.0})
        embedding = Embedding({"a": (0,), "b": (1,)})  # same column: no coupler
        with pytest.raises(EmbeddingError):
            embed_logical_qubo(logical, embedding, small_chimera)

    def test_offset_preserved(self, small_chimera):
        logical = QUBOModel(linear={"a": 1.0}, offset=7.5)
        embedding = Embedding({"a": (0,)})
        physical = embed_logical_qubo(logical, embedding, small_chimera)
        assert physical.physical_qubo.offset == 7.5


class TestChainStrength:
    def test_uniform_chain_strength_override(self, small_chimera):
        logical = QUBOModel(linear={"a": 2.0})
        embedding = Embedding({"a": (0, 4)})
        config = PhysicalMappingConfig(uniform_chain_strength=9.0)
        physical = embed_logical_qubo(logical, embedding, small_chimera, config)
        assert physical.chain_strengths["a"] == 9.0

    def test_choi_strength_positive(self, small_chimera):
        mapping, embedding = _embedded_mapping(small_chimera)
        physical = embed_logical_qubo(mapping.qubo, embedding, small_chimera)
        assert all(strength > 0 for strength in physical.chain_strengths.values())

    def test_single_qubit_chains_have_no_chain_terms(self, small_chimera):
        logical = QUBOModel(linear={"a": -3.0})
        embedding = Embedding({"a": (0,)})
        physical = embed_logical_qubo(logical, embedding, small_chimera)
        assert physical.physical_qubo.get_linear(0) == pytest.approx(-3.0)
        assert physical.physical_qubo.num_interactions == 0

    def test_strong_enough_to_keep_chains_unbroken_at_optimum(self, small_chimera):
        """The Choi bound guarantees the physical ground state has consistent chains."""
        mapping, embedding = _embedded_mapping(small_chimera)
        problem = mapping.problem
        # Restrict to the first two queries to keep brute force feasible.
        sub_vars = [p for q in problem.queries[:2] for p in q.plan_indices]
        sub_logical = mapping.qubo.subinteractions(sub_vars)
        sub_embedding = embedding.subembedding(sub_vars)
        sub_physical = embed_logical_qubo(sub_logical, sub_embedding, small_chimera)
        assignment, _energy = solve_bruteforce(sub_physical.physical_qubo)
        _logical_assignment, broken = sub_physical.unembed_sample(assignment)
        assert not broken


class TestEnergyEquivalence:
    def test_physical_minimum_matches_logical_minimum(self, small_chimera):
        """Minimising the physical formula solves the logical problem (Section 5)."""
        logical = QUBOModel(
            linear={"a": 1.0, "b": -2.0, "c": 0.5},
            quadratic={("a", "b"): 2.0, ("b", "c"): -1.5, ("a", "c"): 0.75},
        )
        embedding = TriadEmbedder(small_chimera).embed_clique(["a", "b", "c"])
        physical = embed_logical_qubo(logical, embedding, small_chimera)

        logical_opt, logical_energy = solve_bruteforce(logical)
        phys_assignment, phys_energy = solve_bruteforce(physical.physical_qubo)
        unembedded, broken = physical.unembed_sample(phys_assignment)
        assert not broken
        assert unembedded == logical_opt
        assert phys_energy == pytest.approx(logical_energy)

    def test_consistent_chain_energy_equals_logical_energy(self, small_chimera):
        """For chain-consistent physical states the energies coincide."""
        logical = QUBOModel(linear={"a": 1.5, "b": -1.0}, quadratic={("a", "b"): -2.0})
        embedding = TriadEmbedder(small_chimera).embed_clique(["a", "b"])
        physical = embed_logical_qubo(logical, embedding, small_chimera)
        for values in itertools.product((0, 1), repeat=2):
            logical_assignment = {"a": values[0], "b": values[1]}
            physical_assignment = {
                qubit: logical_assignment[var]
                for var in ("a", "b")
                for qubit in embedding.chain(var)
            }
            assert physical.physical_qubo.energy(physical_assignment) == pytest.approx(
                logical.energy(logical_assignment)
            )

    def test_readout_strategy_respected(self, small_chimera):
        logical = QUBOModel(linear={"a": 1.0})
        embedding = Embedding({"a": (0, 4)})
        config = PhysicalMappingConfig(readout=ChainReadout.DISCARD)
        physical = embed_logical_qubo(logical, embedding, small_chimera, config)
        assignment, broken = physical.unembed_sample({0: 1, 4: 0})
        assert broken and assignment == {}

    def test_qubits_per_variable_statistic(self, small_chimera):
        mapping, embedding = _embedded_mapping(small_chimera)
        physical = embed_logical_qubo(mapping.qubo, embedding, small_chimera)
        assert physical.qubits_per_variable == pytest.approx(
            embedding.average_chain_length()
        )
        assert physical.num_qubits == embedding.num_qubits
