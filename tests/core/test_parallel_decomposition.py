"""Tests for the parallel partition–solve–stitch pipeline.

Covers the wave scheduler, the vectorised internal-weight ordering (an
equality check against the legacy per-cluster loop), the decomposition
progress hook, and — via hypothesis — the stitch contract: the merged
solution selects exactly one plan per query, costs exactly what
``problem.solution_from_selection`` says, never exceeds the
no-sharing-across-components bound, and is byte-deterministic under a
fixed seed regardless of cluster completion order.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.decomposition import (
    DecomposedAnytimeSolver,
    DecomposedQuantumMQO,
    ParallelDecomposition,
    WaveSchedule,
    build_wave_schedule,
    current_progress_observers,
    observe_decomposition_progress,
)
from repro.exceptions import InvalidProblemError, SolverError
from repro.mqo.clustering import cluster_edges, cluster_queries, internal_weights
from repro.mqo.generator import generate_clustered_problem, generate_paper_testcase
from repro.mqo.problem import MQOProblem
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend


@st.composite
def stitchable_problems(draw):
    """Small random MQO problems with non-trivial sharing structure."""
    num_queries = draw(st.integers(min_value=2, max_value=8))
    plans_per_query = [
        [
            float(draw(st.integers(min_value=0, max_value=30)))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        for _ in range(num_queries)
    ]
    skeleton = MQOProblem(plans_per_query)
    plan_query = {p.index: p.query_index for p in skeleton.plans}
    candidates = [
        (p1, p2)
        for p1 in plan_query
        for p2 in plan_query
        if p1 < p2 and plan_query[p1] != plan_query[p2]
    ]
    savings = {}
    for pair in candidates:
        if draw(st.booleans()):
            savings[pair] = float(draw(st.integers(min_value=1, max_value=10)))
    return MQOProblem(plans_per_query, savings)


def _pipeline(max_workers, **kwargs):
    """A pipeline with an isolated frontend (no cross-run cache leaks)."""
    kwargs.setdefault("cluster_solvers", ("GREEDY",))
    kwargs.setdefault("max_cluster_size", 3)
    return ParallelDecomposition(
        frontend=ServiceFrontend(cache=ResultCache(capacity=8)),
        max_workers=max_workers,
        **kwargs,
    )


class TestWaveSchedule:
    def test_no_edges_is_one_wide_wave(self):
        schedule = build_wave_schedule(4, [], [3.0, 9.0, 1.0, 9.0])
        assert schedule.waves == [[0, 1, 2, 3]]
        assert schedule.solve_order == [1, 3, 0, 2]
        assert schedule.max_wave_size == 4

    def test_chain_of_dependencies_is_fully_sequential(self):
        schedule = build_wave_schedule(3, [(0, 1), (1, 2)], [5.0, 3.0, 1.0])
        assert schedule.solve_order == [0, 1, 2]
        assert schedule.waves == [[0], [1], [2]]

    def test_dependency_points_at_the_stronger_cluster(self):
        # Cluster 1 has the heavier internal sharing, so 0 waits for it.
        schedule = build_wave_schedule(2, [(0, 1)], [1.0, 5.0])
        assert schedule.solve_order == [1, 0]
        assert schedule.waves == [[1], [0]]

    def test_solve_order_matches_legacy_stable_sort(self):
        weights = [2.0, 7.0, 2.0, 7.0, 0.0]
        schedule = build_wave_schedule(5, [], weights)
        legacy = sorted(range(5), key=lambda i: weights[i], reverse=True)
        assert schedule.solve_order == legacy

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_waves_never_put_connected_clusters_together(self, data):
        n = data.draw(st.integers(min_value=1, max_value=8))
        weights = [float(data.draw(st.integers(0, 10))) for _ in range(n)]
        edges = sorted(
            {
                tuple(sorted(pair))
                for pair in data.draw(
                    st.lists(
                        st.tuples(
                            st.integers(0, n - 1), st.integers(0, n - 1)
                        ).filter(lambda p: p[0] != p[1]),
                        max_size=12,
                    )
                )
            }
        )
        schedule = build_wave_schedule(n, edges, weights)
        assert sorted(c for wave in schedule.waves for c in wave) == list(range(n))
        wave_of = {c: w for w, wave in enumerate(schedule.waves) for c in wave}
        rank = {c: r for r, c in enumerate(schedule.solve_order)}
        for a, b in edges:
            assert wave_of[a] != wave_of[b]
            earlier, later = (a, b) if rank[a] < rank[b] else (b, a)
            assert wave_of[earlier] < wave_of[later]


class TestInternalWeightVectorization:
    def test_matches_legacy_per_cluster_loop(self):
        problem = generate_clustered_problem(
            num_clusters=4,
            queries_per_cluster=3,
            plans_per_query=2,
            intra_cluster_density=0.7,
            inter_cluster_density=0.2,
            seed=11,
        )
        clusters = cluster_queries(problem, max_cluster_size=3)
        vectorized = internal_weights(problem, clusters)

        def legacy_internal_weight(cluster):
            cluster_set = set(cluster)
            weight = 0.0
            for (p1, p2), saving in problem.interaction_pairs():
                q1 = problem.plan(p1).query_index
                q2 = problem.plan(p2).query_index
                if q1 in cluster_set and q2 in cluster_set:
                    weight += saving
            return weight

        legacy = [legacy_internal_weight(cluster) for cluster in clusters]
        # Bit-identical, not approximately equal: the vectorised pass
        # accumulates in the same savings insertion order per cluster.
        assert vectorized.tolist() == legacy

    @given(stitchable_problems())
    @settings(max_examples=25, deadline=None)
    def test_solve_order_identical_to_legacy_sort(self, problem):
        clusters = cluster_queries(problem, max_cluster_size=3)
        weights = internal_weights(problem, clusters)
        vectorized_order = sorted(
            range(len(clusters)), key=lambda i: (-float(weights[i]), i)
        )
        legacy_order = sorted(
            range(len(clusters)), key=lambda i: float(weights[i]), reverse=True
        )
        assert vectorized_order == legacy_order


class TestStitchContract:
    @given(stitchable_problems(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_one_plan_per_query_and_exact_cost(self, problem, seed):
        outcome = _pipeline(max_workers=2).solve(problem, time_budget_ms=500.0, seed=seed)
        solution = outcome.solution
        assert solution.is_valid
        per_query = [problem.plan(p).query_index for p in solution.selected_plans]
        assert sorted(per_query) == list(range(problem.num_queries))
        reference = problem.solution_from_selection(sorted(solution.selected_plans))
        assert solution.cost == reference.cost

    @given(stitchable_problems(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_never_exceeds_no_cross_sharing_bound(self, problem, seed):
        outcome = _pipeline(max_workers=2).solve(problem, time_budget_ms=500.0, seed=seed)
        selected = sorted(outcome.solution.selected_plans)
        bound = sum(
            problem.selection_cost(
                [p for p in selected if problem.plan(p).query_index in set(cluster)]
            )
            for cluster in outcome.clusters
        )
        assert outcome.solution.cost <= bound + 1e-9

    @given(stitchable_problems(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_regardless_of_completion_order(self, problem, seed):
        selections = []
        costs = []
        for workers in (1, 4, 4):
            outcome = _pipeline(max_workers=workers).solve(
                problem, time_budget_ms=500.0, seed=seed
            )
            selections.append(sorted(outcome.solution.selected_plans))
            costs.append(outcome.solution.cost)
        assert selections[0] == selections[1] == selections[2]
        assert costs[0] == costs[1] == costs[2]

    def test_trajectory_is_monotone_and_ends_at_the_solution(self):
        problem = generate_clustered_problem(
            num_clusters=5,
            queries_per_cluster=3,
            plans_per_query=2,
            intra_cluster_density=0.9,
            inter_cluster_density=0.1,
            seed=3,
        )
        outcome = _pipeline(max_workers=4).solve(problem, time_budget_ms=500.0, seed=9)
        costs = [cost for _, cost in outcome.trajectory.points]
        assert costs == sorted(costs, reverse=True)
        assert outcome.trajectory.best_solution is outcome.solution
        assert outcome.trajectory.points, "the baseline selection must be recorded"

    def test_failed_clusters_degrade_to_the_baseline(self):
        problem = generate_clustered_problem(
            num_clusters=3,
            queries_per_cluster=2,
            plans_per_query=2,
            intra_cluster_density=0.8,
            seed=5,
        )
        pipeline = _pipeline(max_workers=2, cluster_solvers=("no-such-solver",))
        outcome = pipeline.solve(problem, time_budget_ms=200.0, seed=1)
        assert len(outcome.errors) == outcome.num_clusters
        assert outcome.solution.is_valid
        arrays = problem.arrays()
        baseline = arrays.choices_to_plans(arrays.cheapest_choices())
        assert sorted(outcome.solution.selected_plans) == sorted(baseline.tolist())


class TestParallelDecompositionResult:
    def test_records_canonical_clusters_and_solve_order(self):
        problem = generate_clustered_problem(
            num_clusters=4,
            queries_per_cluster=3,
            plans_per_query=2,
            intra_cluster_density=0.9,
            seed=2,
        )
        outcome = _pipeline(max_workers=2, max_cluster_size=4).solve(
            problem, time_budget_ms=300.0, seed=0
        )
        assert outcome.clusters == [
            tuple(c) for c in cluster_queries(problem, max_cluster_size=4)
        ]
        assert sorted(outcome.solve_order) == list(range(outcome.num_clusters))
        # Independent clusters (inter density 0) collapse into one wave.
        assert outcome.num_waves == 1
        assert all(result is not None for result in outcome.cluster_results)

    def test_conditioned_clusters_span_multiple_waves(self):
        problem = generate_clustered_problem(
            num_clusters=4,
            queries_per_cluster=3,
            plans_per_query=2,
            intra_cluster_density=0.9,
            inter_cluster_density=0.4,
            seed=2,
        )
        outcome = _pipeline(max_workers=2, max_cluster_size=4).solve(
            problem, time_budget_ms=300.0, seed=0
        )
        edges = cluster_edges(problem, [list(c) for c in outcome.clusters])
        if edges:
            assert outcome.num_waves > 1

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(InvalidProblemError):
            ParallelDecomposition(max_cluster_size=0)
        with pytest.raises(SolverError):
            ParallelDecomposition(cluster_solvers=())
        with pytest.raises(SolverError):
            ParallelDecomposition(max_workers=0)
        with pytest.raises(SolverError):
            _pipeline(max_workers=1).solve(
                generate_paper_testcase(3, 2, seed=0), time_budget_ms=0.0
            )


class TestProgressObservers:
    def test_observers_install_per_thread_and_nest(self):
        seen = []
        assert current_progress_observers() == ()
        with observe_decomposition_progress(seen.append):
            assert len(current_progress_observers()) == 1
            with observe_decomposition_progress(seen.append):
                assert len(current_progress_observers()) == 2
            assert len(current_progress_observers()) == 1
        assert current_progress_observers() == ()

    def test_solve_reports_every_cluster_completion(self):
        problem = generate_clustered_problem(
            num_clusters=4,
            queries_per_cluster=2,
            plans_per_query=2,
            intra_cluster_density=0.8,
            seed=7,
        )
        events = []

        def observer(solver, completed, total):
            events.append((solver, completed, total))

        with observe_decomposition_progress(observer):
            outcome = _pipeline(max_workers=2).solve(problem, time_budget_ms=300.0, seed=4)
        assert len(events) == outcome.num_clusters
        assert [completed for _, completed, _ in events] == list(
            range(1, outcome.num_clusters + 1)
        )
        assert all(total == outcome.num_clusters for _, _, total in events)
        assert all(solver == "decomposed_qa" for solver, _, _ in events)

    def test_observer_exceptions_are_swallowed(self):
        problem = generate_clustered_problem(
            num_clusters=2,
            queries_per_cluster=2,
            plans_per_query=2,
            intra_cluster_density=0.8,
            seed=7,
        )

        def bad_observer(solver, completed, total):
            raise RuntimeError("misbehaving listener")

        with observe_decomposition_progress(bad_observer):
            outcome = _pipeline(max_workers=1).solve(problem, time_budget_ms=200.0, seed=4)
        assert outcome.solution.is_valid


class TestDecomposedAnytimeSolver:
    def test_returns_a_named_monotone_trajectory(self):
        problem = generate_clustered_problem(
            num_clusters=3,
            queries_per_cluster=2,
            plans_per_query=2,
            intra_cluster_density=0.8,
            seed=1,
        )
        solver = DecomposedAnytimeSolver(
            frontend=ServiceFrontend(cache=ResultCache(capacity=8))
        )
        trajectory = solver.solve(problem, time_budget_ms=400.0, seed=6)
        assert trajectory.solver_name == "decomposed_qa"
        assert trajectory.best_solution is not None
        assert trajectory.best_solution.is_valid
        assert trajectory.best_cost == trajectory.best_solution.cost

    def test_cluster_cap_shrinks_with_wide_queries(self):
        solver = DecomposedAnytimeSolver(max_cluster_size=32)
        narrow = generate_paper_testcase(6, 2, seed=0)
        wide = generate_paper_testcase(6, 40, seed=0)
        assert solver._cluster_cap(narrow) == 32
        assert 1 <= solver._cluster_cap(wide) < 32


class TestSequentialSolverStillAgrees:
    def test_sequential_conditioning_mode_matches_cluster_count(self):
        problem = generate_clustered_problem(
            num_clusters=4,
            queries_per_cluster=2,
            plans_per_query=2,
            intra_cluster_density=0.8,
            inter_cluster_density=0.3,
            seed=8,
        )
        outcome = _pipeline(
            max_workers=1, sequential_conditioning=True
        ).solve(problem, time_budget_ms=300.0, seed=2)
        assert outcome.num_waves == outcome.num_clusters
        assert outcome.solution.is_valid

    def test_legacy_result_records_solve_order(self):
        problem = generate_clustered_problem(
            num_clusters=3,
            queries_per_cluster=2,
            plans_per_query=2,
            intra_cluster_density=0.9,
            seed=4,
        )
        result = DecomposedQuantumMQO(max_queries_per_cluster=2).solve(
            problem, num_reads=30
        )
        assert result.clusters == [
            tuple(c) for c in cluster_queries(problem, max_cluster_size=2)
        ]
        assert sorted(result.solve_order) == list(range(result.num_clusters))
        weights = internal_weights(problem, [list(c) for c in result.clusters])
        ordered = [float(weights[i]) for i in result.solve_order]
        assert ordered == sorted(ordered, reverse=True)
