"""Tests for the logical mapping (MQO -> QUBO, paper Section 4)."""

import pytest

from repro.core.logical import LogicalMapping, LogicalMappingConfig, map_mqo_to_qubo
from repro.exceptions import InvalidProblemError
from repro.mqo.problem import MQOProblem


class TestConfig:
    def test_default_epsilon_is_papers(self):
        assert LogicalMappingConfig().epsilon == 0.25

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidProblemError):
            LogicalMappingConfig(epsilon=0.0)

    def test_invalid_scale(self):
        with pytest.raises(InvalidProblemError):
            LogicalMappingConfig(weight_scale=0.5)


class TestPenaltyWeights:
    def test_weight_at_least_one_exceeds_max_cost(self, small_problem):
        mapping = LogicalMapping(small_problem)
        assert mapping.weight_at_least_one > small_problem.max_plan_cost()
        assert mapping.weight_at_least_one == pytest.approx(
            small_problem.max_plan_cost() + 0.25
        )

    def test_weight_at_most_one_exceeds_wl_plus_savings(self, small_problem):
        mapping = LogicalMapping(small_problem)
        bound = mapping.weight_at_least_one + small_problem.max_total_savings_per_plan()
        assert mapping.weight_at_most_one > bound
        assert mapping.weight_at_most_one == pytest.approx(bound + 0.25)

    def test_weight_scale_multiplies_both(self, small_problem):
        base = LogicalMapping(small_problem)
        scaled = LogicalMapping(small_problem, LogicalMappingConfig(weight_scale=3.0))
        assert scaled.weight_at_least_one == pytest.approx(3.0 * base.weight_at_least_one)
        assert scaled.weight_at_most_one == pytest.approx(3.0 * base.weight_at_most_one)

    def test_weights_without_savings(self):
        problem = MQOProblem([[1.0, 2.0], [3.0, 4.0]])
        mapping = LogicalMapping(problem)
        assert mapping.weight_at_least_one == pytest.approx(4.25)
        assert mapping.weight_at_most_one == pytest.approx(4.5)


class TestQUBOStructure:
    def test_one_variable_per_plan(self, small_problem):
        mapping = LogicalMapping(small_problem)
        assert set(mapping.qubo.variables) == set(range(small_problem.num_plans))

    def test_linear_terms_are_cost_minus_wl(self, small_problem):
        mapping = LogicalMapping(small_problem)
        for plan in small_problem.plans:
            expected = plan.cost - mapping.weight_at_least_one
            assert mapping.qubo.get_linear(plan.index) == pytest.approx(expected)

    def test_same_query_pairs_carry_wm(self, small_problem):
        mapping = LogicalMapping(small_problem)
        for query in small_problem.queries:
            plans = query.plan_indices
            for i in range(len(plans)):
                for j in range(i + 1, len(plans)):
                    assert mapping.qubo.get_quadratic(plans[i], plans[j]) == pytest.approx(
                        mapping.weight_at_most_one
                    )

    def test_sharing_pairs_carry_negative_savings(self, small_problem):
        mapping = LogicalMapping(small_problem)
        for (p1, p2), saving in small_problem.interaction_pairs():
            assert mapping.qubo.get_quadratic(p1, p2) == pytest.approx(-saving)

    def test_non_interacting_cross_pairs_have_zero_weight(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        # Plans 0 and 3 belong to different queries and share nothing.
        assert mapping.qubo.get_quadratic(0, 3) == 0.0

    def test_number_of_interactions(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        # Two intra-query pairs plus one savings pair.
        assert mapping.qubo.num_interactions == 3


class TestInverseMapping:
    def test_solution_from_assignment(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        solution = mapping.solution_from_assignment({0: 0, 1: 1, 2: 1, 3: 0})
        assert solution.selected_plans == frozenset({1, 2})
        assert solution.is_valid

    def test_assignment_from_solution_roundtrip(self, small_problem):
        mapping = LogicalMapping(small_problem)
        solution = small_problem.solution_from_choices([0, 1, 0, 1])
        assignment = mapping.assignment_from_solution(solution)
        assert mapping.solution_from_assignment(assignment).selected_plans == solution.selected_plans

    def test_assignment_from_foreign_solution_rejected(self, small_problem, paper_example_problem):
        mapping = LogicalMapping(small_problem)
        foreign = paper_example_problem.solution_from_selection({1, 2})
        with pytest.raises(InvalidProblemError):
            mapping.assignment_from_solution(foreign)

    def test_energy_of_valid_solution_matches_cost_plus_shift(self, small_problem):
        """Theorem 1: for valid solutions, energy = C(Pe) + constant shift."""
        mapping = LogicalMapping(small_problem)
        shift = mapping.constant_energy_shift()
        for choices in ([0, 0, 0, 0], [1, 1, 1, 1], [0, 1, 1, 0]):
            solution = small_problem.solution_from_choices(choices)
            assert mapping.energy_of_solution(solution) == pytest.approx(solution.cost + shift)


class TestBatchedDecode:
    def test_matches_per_assignment_decode(self, small_problem):
        mapping = LogicalMapping(small_problem)
        assignments = [
            {0: 1, 3: 1, 4: 1, 7: 1},  # valid
            {0: 1, 1: 1, 4: 1},  # overfull query 0, missing queries
            {},  # empty
            {plan.index: 1 for plan in small_problem.plans},  # everything
        ]
        batch = mapping.solutions_from_sampleset(assignments)
        assert len(batch) == len(assignments)
        for assignment, solution in zip(assignments, batch):
            reference = mapping.solution_from_assignment(assignment)
            assert solution.selected_plans == reference.selected_plans
            assert solution.is_valid == reference.is_valid
            assert solution.cost == pytest.approx(reference.cost)

    def test_accepts_sample_sets_and_matrices(self, small_problem):
        import numpy as np

        from repro.annealer.sampleset import Sample, SampleSet

        mapping = LogicalMapping(small_problem)
        assignment = {0: 1, 3: 1, 4: 1, 7: 1}
        sample_set = SampleSet(
            samples=[Sample(assignment=assignment, energy=0.0, read_index=0)]
        )
        from_set = mapping.solutions_from_sampleset(sample_set)
        matrix = np.zeros((1, small_problem.num_plans), dtype=np.int8)
        matrix[0, [0, 3, 4, 7]] = 1
        from_matrix = mapping.solutions_from_sampleset(matrix)
        reference = mapping.solution_from_assignment(assignment)
        for solution in (*from_set, *from_matrix):
            assert solution.selected_plans == reference.selected_plans
            assert solution.cost == pytest.approx(reference.cost)

    def test_empty_batch(self, small_problem):
        mapping = LogicalMapping(small_problem)
        assert mapping.solutions_from_sampleset([]) == []


class TestRepair:
    def test_repair_of_empty_assignment(self, small_problem):
        mapping = LogicalMapping(small_problem)
        repaired = mapping.repair({})
        assert repaired.is_valid
        # Every query gets its cheapest plan.
        for query in small_problem.queries:
            cheapest = min(query.plan_indices, key=small_problem.plan_cost)
            assert cheapest in repaired.selected_plans

    def test_repair_of_overfull_assignment(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        repaired = mapping.repair({0: 1, 1: 1, 2: 1, 3: 1})
        assert repaired.is_valid
        assert len(repaired.selected_plans) == 2

    def test_repair_keeps_valid_assignment(self, paper_example_problem):
        mapping = LogicalMapping(paper_example_problem)
        repaired = mapping.repair({0: 0, 1: 1, 2: 1, 3: 0})
        assert repaired.selected_plans == frozenset({1, 2})

    def test_map_mqo_to_qubo_wrapper(self, small_problem):
        mapping = map_mqo_to_qubo(small_problem)
        assert isinstance(mapping, LogicalMapping)
