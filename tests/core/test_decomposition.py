"""Tests for the series-of-QUBOs decomposition solver (paper outlook)."""

import itertools

import pytest

from repro.core.decomposition import DecomposedQuantumMQO
from repro.core.pipeline import QuantumMQO
from repro.exceptions import InvalidProblemError
from repro.mqo.generator import generate_clustered_problem, generate_paper_testcase
from repro.mqo.problem import MQOProblem


def exhaustive_optimum(problem):
    return min(
        problem.solution_from_choices(list(choices)).cost
        for choices in itertools.product(*(range(q.num_plans) for q in problem.queries))
    )


@pytest.fixture()
def decomposer(ideal_device):
    pipeline = QuantumMQO(device=ideal_device, seed=5)
    return DecomposedQuantumMQO(pipeline=pipeline, max_queries_per_cluster=4)


class TestBuildSubproblem:
    def test_structure_and_plan_map(self, small_problem):
        sub = DecomposedQuantumMQO.build_subproblem(small_problem, [1, 2])
        assert sub.cluster_queries == (1, 2)
        assert sub.problem.num_queries == 2
        assert sub.problem.num_plans == 4
        # Sub-plan 0 is the first plan of query 1 (original plan index 2).
        assert sub.plan_map[0] == 2
        assert sub.plan_map[3] == 5

    def test_intra_cluster_savings_preserved(self, small_problem):
        # Original saving (2, 7): queries 1 and 3.
        sub = DecomposedQuantumMQO.build_subproblem(small_problem, [1, 3])
        assert sub.problem.num_savings == 1
        assert list(sub.problem.savings.values()) == [1.5]

    def test_cross_cluster_savings_dropped(self, small_problem):
        sub = DecomposedQuantumMQO.build_subproblem(small_problem, [0])
        assert sub.problem.num_savings == 0

    def test_conditioning_discounts_costs(self):
        problem = MQOProblem(
            plans_per_query=[[5.0, 5.0], [5.0, 5.0]],
            savings={(0, 2): 4.0},
        )
        # Plan 0 of query 0 is already selected; plan 2 (query 1, first plan)
        # should be discounted by the realisable saving of 4.
        sub = DecomposedQuantumMQO.build_subproblem(problem, [1], already_selected=[0])
        costs = [sub.problem.plan_cost(p) for p in range(2)]
        assert costs[0] + 4.0 == pytest.approx(costs[1])

    def test_costs_stay_non_negative_after_conditioning(self):
        problem = MQOProblem(
            plans_per_query=[[1.0], [1.0, 8.0]],
            savings={(0, 1): 6.0},
        )
        sub = DecomposedQuantumMQO.build_subproblem(problem, [1], already_selected=[0])
        assert all(plan.cost >= 0 for plan in sub.problem.plans)

    def test_empty_cluster_rejected(self, small_problem):
        with pytest.raises(InvalidProblemError):
            DecomposedQuantumMQO.build_subproblem(small_problem, [])


class TestDecomposedSolve:
    def test_produces_valid_solution(self, decomposer):
        problem = generate_paper_testcase(10, 2, seed=3)
        result = decomposer.solve(problem, num_reads=40, num_gauges=4)
        assert result.solution.is_valid
        assert result.num_clusters >= 2
        assert result.total_device_time_ms > 0
        assert result.max_qubits_used <= decomposer.pipeline.device.num_qubits

    def test_matches_optimum_on_decomposable_problem(self, decomposer):
        """With no cross-cluster sharing the decomposition is exact."""
        problem = generate_clustered_problem(
            3, 3, 2, intra_cluster_density=1.0, inter_cluster_density=0.0, seed=4
        )
        result = decomposer.solve(problem, num_reads=80, num_gauges=8)
        assert result.solution.cost == pytest.approx(exhaustive_optimum(problem))

    def test_close_to_single_qubo_on_small_problem(self, decomposer, ideal_device):
        problem = generate_paper_testcase(8, 2, seed=6)
        single = QuantumMQO(device=ideal_device, seed=6).solve(
            problem, num_reads=80, num_gauges=8
        )
        decomposed = decomposer.solve(problem, num_reads=80, num_gauges=8)
        # The decomposition is a heuristic: allow a modest gap versus the
        # single-QUBO solve, never an improvement beyond noise.
        assert decomposed.solution.cost >= single.best_solution.cost - 1e-9
        assert decomposed.solution.cost <= single.best_solution.cost + 0.5 * abs(
            single.best_solution.cost
        ) + 5.0

    def test_handles_problems_exceeding_single_device_capacity(self, ideal_device):
        """More plan variables than the TRIAD fallback supports still solve."""
        pipeline = QuantumMQO(device=ideal_device, seed=8)
        decomposer = DecomposedQuantumMQO(pipeline=pipeline, max_queries_per_cluster=6)
        problem = generate_paper_testcase(40, 2, seed=9)  # 80 variables > 24-var TRIAD cap
        result = decomposer.solve(problem, num_reads=30, num_gauges=3)
        assert result.solution.is_valid
        assert result.num_clusters >= 7

    def test_invalid_cluster_cap(self):
        with pytest.raises(InvalidProblemError):
            DecomposedQuantumMQO(max_queries_per_cluster=0)
