"""Property-based correctness tests of the logical mapping (paper Section 6).

Theorem 1 states that the energy formula is minimised by a *valid* MQO
solution of *minimal execution cost*.  These tests verify the theorem (and
its two lemmata) on randomly generated small instances by brute-forcing
the QUBO and comparing against exhaustive enumeration of the MQO search
space.
"""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.logical import LogicalMapping, LogicalMappingConfig
from repro.mqo.problem import MQOProblem
from repro.qubo.bruteforce import solve_bruteforce


@st.composite
def small_mqo_problems(draw):
    """Random MQO problems small enough for exhaustive verification."""
    num_queries = draw(st.integers(min_value=1, max_value=3))
    plans_per_query = [
        [
            float(draw(st.integers(min_value=0, max_value=10)))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        for _ in range(num_queries)
    ]
    problem = MQOProblem(plans_per_query)
    plan_query = {p.index: p.query_index for p in problem.plans}
    savings = {}
    for p1 in plan_query:
        for p2 in plan_query:
            if p1 < p2 and plan_query[p1] != plan_query[p2] and draw(st.booleans()):
                savings[(p1, p2)] = float(draw(st.integers(min_value=1, max_value=8)))
    return MQOProblem(plans_per_query, savings)


def brute_force_mqo_optimum(problem: MQOProblem) -> float:
    """Optimal cost by enumerating every valid plan combination."""
    best = float("inf")
    ranges = [range(query.num_plans) for query in problem.queries]
    for choices in itertools.product(*ranges):
        best = min(best, problem.solution_from_choices(list(choices)).cost)
    return best


class TestTheorem1:
    @given(small_mqo_problems())
    @settings(max_examples=40, deadline=None)
    def test_qubo_minimum_is_valid(self, problem):
        """Lemmata 1 and 2: the minimising assignment selects exactly one plan per query."""
        mapping = LogicalMapping(problem)
        assignment, _energy = solve_bruteforce(mapping.qubo)
        assert mapping.solution_from_assignment(assignment).is_valid

    @given(small_mqo_problems())
    @settings(max_examples=40, deadline=None)
    def test_qubo_minimum_is_cost_optimal(self, problem):
        """Theorem 1: the minimising assignment has minimal execution cost."""
        mapping = LogicalMapping(problem)
        assignment, _energy = solve_bruteforce(mapping.qubo)
        solution = mapping.solution_from_assignment(assignment)
        assert abs(solution.cost - brute_force_mqo_optimum(problem)) < 1e-9

    @given(small_mqo_problems())
    @settings(max_examples=40, deadline=None)
    def test_energy_offset_between_valid_solutions_equals_cost_difference(self, problem):
        """E_L and E_M are constant across valid solutions, so energy differences
        equal cost differences (the proof idea of Theorem 1)."""
        mapping = LogicalMapping(problem)
        ranges = [range(query.num_plans) for query in problem.queries]
        combos = list(itertools.product(*ranges))[:8]
        solutions = [problem.solution_from_choices(list(c)) for c in combos]
        energies = [mapping.energy_of_solution(s) for s in solutions]
        for sol, energy in zip(solutions, energies):
            assert abs(
                (energy - energies[0]) - (sol.cost - solutions[0].cost)
            ) < 1e-9

    @given(small_mqo_problems())
    @settings(max_examples=25, deadline=None)
    def test_correctness_is_preserved_under_weight_scaling(self, problem):
        """Larger-than-minimal penalty weights never break correctness."""
        config = LogicalMappingConfig(weight_scale=5.0)
        mapping = LogicalMapping(problem, config)
        assignment, _energy = solve_bruteforce(mapping.qubo)
        solution = mapping.solution_from_assignment(assignment)
        assert solution.is_valid
        assert abs(solution.cost - brute_force_mqo_optimum(problem)) < 1e-9
