"""Integration-level tests for the experiment runner and exhibit builders.

These run a miniature version of the full evaluation (tiny topology, few
reads, short classical budgets) and check the structure and internal
consistency of the produced exhibits.
"""

import pytest

from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.chimera.topology import ChimeraGraph
from repro.experiments.figures import (
    figure4_table,
    figure6_rows,
    figure6_table,
    figure7_rows,
    figure7_table,
    quality_vs_time_rows,
)
from repro.experiments.profiles import ExperimentProfile
from repro.experiments.runner import QA_SOLVER_NAME, ExperimentRunner
from repro.experiments.tables import table1_rows, table1_table


@pytest.fixture(scope="module")
def mini_profile():
    return ExperimentProfile(
        name="mini",
        query_scale=0.25,
        num_instances=2,
        classical_budget_ms=250.0,
        checkpoints_ms=(1.0, 10.0, 100.0, 250.0),
        num_reads=40,
        num_gauges=4,
        sa_sweeps=60,
        chimera_rows=4,
        chimera_cols=4,
        include_slow_solvers=False,
    )


@pytest.fixture(scope="module")
def mini_runner(mini_profile):
    return ExperimentRunner(
        profile=mini_profile,
        topology=ChimeraGraph(4, 4),
        solvers=[IntegerProgrammingMQOSolver(), IteratedHillClimbing()],
        seed=7,
    )


@pytest.fixture(scope="module")
def mini_results(mini_runner):
    return mini_runner.run_all_classes(plans_range=(2, 5))


class TestExperimentRunner:
    def test_test_classes_follow_profile(self, mini_runner):
        classes = mini_runner.test_classes(plans_range=(2, 5))
        assert [c.plans_per_query for c in classes] == [2, 5]
        assert all(c.num_queries >= 2 for c in classes)

    def test_solver_names(self, mini_runner):
        names = mini_runner.solver_names()
        assert names[0] == QA_SOLVER_NAME
        assert "LIN-MQO" in names and "CLIMB" in names

    def test_instance_results_structure(self, mini_results, mini_runner):
        for test_class, results in mini_results.items():
            assert len(results) == mini_runner.profile.num_instances
            for result in results:
                assert set(result.trajectories) == set(mini_runner.solver_names())
                assert result.best_known_cost <= result.reference_cost + 1e-9
                assert result.quantum_result.best_solution.is_valid

    def test_best_known_cost_is_minimum_over_solvers(self, mini_results):
        for results in mini_results.values():
            for result in results:
                best = min(t.best_cost for t in result.trajectories.values())
                assert result.best_known_cost == pytest.approx(best)

    def test_quantum_trajectory_uses_device_time(self, mini_results, mini_runner):
        for results in mini_results.values():
            for result in results:
                qa = result.quantum_trajectory()
                assert qa.points, "QA produced no solution"
                first_time = qa.points[0][0]
                assert first_time >= mini_runner.device.time_per_read_ms - 1e-9
                assert qa.total_time_ms <= (
                    mini_runner.profile.num_reads * mini_runner.device.time_per_read_ms + 1e-6
                )


class TestQualityVsTimeExhibits:
    def test_rows_structure(self, mini_results, mini_runner, mini_profile):
        results = next(iter(mini_results.values()))
        rows = quality_vs_time_rows(
            results, mini_profile.checkpoints_ms, mini_runner.solver_names()
        )
        assert len(rows) == len(mini_profile.checkpoints_ms)
        assert all(len(row) == 1 + len(mini_runner.solver_names()) for row in rows)

    def test_scaled_costs_in_unit_range(self, mini_results, mini_runner, mini_profile):
        results = next(iter(mini_results.values()))
        rows = quality_vs_time_rows(
            results, mini_profile.checkpoints_ms, mini_runner.solver_names()
        )
        for row in rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.0

    def test_quality_never_degrades_over_time(self, mini_results, mini_runner, mini_profile):
        results = next(iter(mini_results.values()))
        rows = quality_vs_time_rows(
            results, mini_profile.checkpoints_ms, mini_runner.solver_names()
        )
        for column in range(1, len(mini_runner.solver_names()) + 1):
            series = [row[column] for row in rows]
            assert series == sorted(series, reverse=True)

    def test_figure4_table_rendering(self, mini_results, mini_runner, mini_profile):
        (test_class, results) = next(iter(mini_results.items()))
        text = figure4_table(
            results, mini_profile.checkpoints_ms, mini_runner.solver_names(), test_class
        )
        assert "Figure 4" in text
        assert QA_SOLVER_NAME in text
        assert "LIN-MQO" in text


class TestTable1:
    def test_rows_ordered_by_query_count(self, mini_results):
        rows = table1_rows(mini_results)
        counts = [row[0] for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_min_median_max_ordering(self, mini_results):
        for _queries, minimum, median, maximum in table1_rows(mini_results):
            assert minimum <= median <= maximum

    def test_rendering(self, mini_results):
        text = table1_table(mini_results)
        assert "Table 1" in text
        assert "# Queries" in text


class TestFigure6:
    def test_rows_per_class(self, mini_results, mini_profile):
        rows = figure6_rows(mini_results, mini_profile.classical_budget_ms)
        assert len(rows) == len(mini_results)
        for _label, qubits_per_variable, speedup in rows:
            assert qubits_per_variable >= 1.0
            assert speedup > 0.0

    def test_rows_sorted_by_qubits_per_variable(self, mini_results, mini_profile):
        rows = figure6_rows(mini_results, mini_profile.classical_budget_ms)
        ratios = [row[1] for row in rows]
        assert ratios == sorted(ratios)

    def test_rendering(self, mini_results, mini_profile):
        text = figure6_table(mini_results, mini_profile.classical_budget_ms)
        assert "Figure 6" in text


class TestFigure7:
    def test_rows_cover_plans_range(self):
        rows = figure7_rows(qubit_budgets=(1152, 2304), plans_range=(2, 3, 4))
        assert [row[0] for row in rows] == [2, 3, 4]
        assert all(len(row) == 3 for row in rows)

    def test_capacity_grows_with_budget(self):
        rows = figure7_rows(qubit_budgets=(1152, 2304, 4608), plans_range=range(2, 10))
        for row in rows:
            assert row[1] <= row[2] <= row[3]

    def test_rendering_both_patterns(self):
        assert "1152 qubits" in figure7_table()
        native = figure7_table(pattern="native", plans_range=(2, 3, 4, 5))
        assert "native" in native
