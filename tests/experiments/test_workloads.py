"""Tests for the embedded test-case generator (Section 7.1 workloads)."""

import pytest

from repro.chimera.topology import ChimeraGraph
from repro.exceptions import EmbeddingNotFoundError, InvalidProblemError
from repro.experiments.workloads import generate_embedded_testcase
from repro.mqo.generator import MQOGeneratorConfig


class TestGenerateEmbeddedTestcase:
    def test_dimensions(self, small_chimera):
        testcase = generate_embedded_testcase(10, 3, small_chimera, seed=0)
        assert testcase.num_queries == 10
        assert testcase.plans_per_query == 3
        assert testcase.problem.num_plans == 30
        assert testcase.embedding.num_variables == 30

    def test_embedding_validates_against_all_interactions(self, small_chimera):
        from repro.core.logical import LogicalMapping

        testcase = generate_embedded_testcase(12, 2, small_chimera, seed=1)
        mapping = LogicalMapping(testcase.problem)
        testcase.embedding.validate(small_chimera, mapping.qubo.quadratic.keys())

    def test_savings_only_between_different_queries(self, small_chimera):
        testcase = generate_embedded_testcase(8, 3, small_chimera, seed=2)
        for (p1, p2) in testcase.problem.savings:
            assert p1 // 3 != p2 // 3

    def test_savings_values_follow_paper_distribution(self, small_chimera):
        config = MQOGeneratorConfig(saving_choices=(1.0, 2.0), scale=3.0)
        testcase = generate_embedded_testcase(8, 2, small_chimera, seed=3, config=config)
        assert set(testcase.problem.savings.values()) <= {3.0, 6.0}

    def test_sharing_density_zero(self, small_chimera):
        testcase = generate_embedded_testcase(8, 2, small_chimera, sharing_density=0.0, seed=4)
        assert testcase.problem.num_savings == 0

    def test_some_savings_generated_by_default(self, small_chimera):
        testcase = generate_embedded_testcase(10, 2, small_chimera, seed=5)
        assert testcase.problem.num_savings > 0

    def test_qubits_per_variable_range(self, small_chimera):
        two_plan = generate_embedded_testcase(8, 2, small_chimera, seed=6)
        five_plan = generate_embedded_testcase(6, 5, small_chimera, seed=6)
        assert two_plan.qubits_per_variable == pytest.approx(1.0)
        assert five_plan.qubits_per_variable > two_plan.qubits_per_variable

    def test_capacity_exceeded_raises(self, tiny_chimera):
        with pytest.raises(EmbeddingNotFoundError):
            generate_embedded_testcase(100, 2, tiny_chimera, seed=0)

    def test_invalid_arguments(self, small_chimera):
        with pytest.raises(InvalidProblemError):
            generate_embedded_testcase(0, 2, small_chimera)
        with pytest.raises(InvalidProblemError):
            generate_embedded_testcase(4, 2, small_chimera, sharing_density=1.5)

    def test_deterministic_given_seed(self, small_chimera):
        a = generate_embedded_testcase(8, 2, small_chimera, seed=9)
        b = generate_embedded_testcase(8, 2, small_chimera, seed=9)
        assert a.problem.savings == b.problem.savings
        assert a.embedding.chains() == b.embedding.chains()

    def test_works_on_defective_topology(self):
        topology = ChimeraGraph(4, 4, broken_qubits=[0, 9, 17, 33])
        testcase = generate_embedded_testcase(10, 2, topology, seed=11)
        testcase.embedding.validate(topology)
        assert not (testcase.embedding.used_qubits() & set(topology.broken_qubits))


class TestDeterminismAndRoundTrip:
    """PR 4 hardening: byte-determinism and serialization round-trips."""

    def test_byte_deterministic_through_serialization(self, small_chimera):
        import json

        from repro.mqo.serialization import problem_to_dict

        a = generate_embedded_testcase(8, 2, small_chimera, seed=13)
        b = generate_embedded_testcase(8, 2, small_chimera, seed=13)
        assert json.dumps(problem_to_dict(a.problem), sort_keys=True) == json.dumps(
            problem_to_dict(b.problem), sort_keys=True
        )

    def test_schema_round_trip(self, small_chimera):
        from repro.mqo.serialization import problem_from_dict, problem_to_dict

        testcase = generate_embedded_testcase(9, 3, small_chimera, seed=14)
        data = problem_to_dict(testcase.problem)
        rebuilt = problem_from_dict(data)
        assert problem_to_dict(rebuilt) == data
        assert rebuilt.num_queries == testcase.num_queries


class TestEmbeddedTestcaseProperties:
    """Hypothesis: every generated problem has >= 1 plan per query."""

    def test_at_least_one_plan_per_query(self, small_chimera):
        import hypothesis.strategies as st
        from hypothesis import given, settings

        @settings(max_examples=20, deadline=None)
        @given(
            num_queries=st.integers(min_value=1, max_value=12),
            plans=st.integers(min_value=2, max_value=4),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
        )
        def check(num_queries, plans, seed):
            testcase = generate_embedded_testcase(num_queries, plans, small_chimera, seed=seed)
            assert testcase.problem.num_queries == num_queries
            assert all(q.num_plans >= 1 for q in testcase.problem.queries)

        check()
