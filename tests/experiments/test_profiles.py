"""Tests for the benchmark profiles."""

import pytest

from repro.exceptions import ReproError
from repro.experiments.profiles import PROFILE_ENV_VAR, PROFILES, ExperimentProfile, get_profile


class TestProfiles:
    def test_three_profiles_exist(self):
        assert set(PROFILES) == {"smoke", "default", "paper"}

    def test_paper_profile_matches_paper_settings(self):
        paper = PROFILES["paper"]
        assert paper.num_instances == 20
        assert paper.num_reads == 1000
        assert paper.num_gauges == 10
        assert paper.classical_budget_ms == 100_000.0
        assert paper.checkpoints_ms[-1] == 100_000.0
        assert paper.chimera_rows == paper.chimera_cols == 12

    def test_profiles_are_ordered_by_scale(self):
        assert PROFILES["smoke"].num_instances <= PROFILES["default"].num_instances
        assert PROFILES["default"].num_instances <= PROFILES["paper"].num_instances
        assert PROFILES["smoke"].classical_budget_ms < PROFILES["paper"].classical_budget_ms

    def test_get_profile_by_name(self):
        assert get_profile("smoke").name == "smoke"

    def test_get_profile_from_environment(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "paper")
        assert get_profile().name == "paper"

    def test_get_profile_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        assert get_profile().name == "default"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            get_profile("warp-speed")

    def test_invalid_profile_values_rejected(self):
        with pytest.raises(ReproError):
            ExperimentProfile(
                name="bad",
                query_scale=0.0,
                num_instances=1,
                classical_budget_ms=10.0,
                checkpoints_ms=(1.0,),
                num_reads=10,
                num_gauges=1,
                sa_sweeps=10,
            )
        with pytest.raises(ReproError):
            ExperimentProfile(
                name="bad",
                query_scale=0.5,
                num_instances=1,
                classical_budget_ms=10.0,
                checkpoints_ms=(),
                num_reads=10,
                num_gauges=1,
                sa_sweeps=10,
            )
