"""Tests for the test-case classes (paper Section 7.2)."""

import pytest

from repro.chimera.defects import DefectModel
from repro.chimera.topology import ChimeraGraph
from repro.exceptions import ReproError
from repro.experiments.profiles import PROFILES
from repro.experiments.scenarios import PAPER_CLASS_SIZES, TestCaseClass, paper_test_classes


class TestTestCaseClass:
    def test_label(self):
        assert TestCaseClass(2, 537).label == "537 Queries, 2 Plans"

    def test_invalid_dimensions(self):
        with pytest.raises(ReproError):
            TestCaseClass(0, 10)
        with pytest.raises(ReproError):
            TestCaseClass(2, 0)

    def test_paper_class_sizes_recorded(self):
        assert PAPER_CLASS_SIZES == {2: 537, 3: 253, 4: 140, 5: 108}


class TestPaperTestClasses:
    def test_four_classes_with_expected_plan_counts(self):
        topology = ChimeraGraph(6, 6)
        classes = paper_test_classes(topology, PROFILES["smoke"])
        assert [c.plans_per_query for c in classes] == [2, 3, 4, 5]
        assert all(c.num_queries >= 2 for c in classes)

    def test_query_counts_scale_with_profile(self):
        topology = ChimeraGraph(12, 12)
        smoke = paper_test_classes(topology, PROFILES["smoke"])
        paper = paper_test_classes(topology, PROFILES["paper"])
        for small, large in zip(smoke, paper):
            assert large.num_queries > small.num_queries

    def test_paper_profile_on_paper_machine_approximates_paper_sizes(self):
        """With the paper's yield, the class sizes land near the published ones."""
        topology = DefectModel().apply(ChimeraGraph(12, 12), seed=1)
        classes = paper_test_classes(topology, PROFILES["paper"])
        sizes = {c.plans_per_query: c.num_queries for c in classes}
        # Two-plan class: paper had 537 of a 576-site maximum.
        assert 480 <= sizes[2] <= 576
        # Five-plan class: same order of magnitude as the paper's 108.
        assert 90 <= sizes[5] <= 144

    def test_query_count_decreases_with_plans_per_query(self):
        topology = ChimeraGraph(12, 12)
        classes = paper_test_classes(topology, PROFILES["default"])
        counts = [c.num_queries for c in classes]
        assert counts == sorted(counts, reverse=True)


class TestScenarioDeterminism:
    """PR 4 hardening: class derivation is a pure function of its inputs."""

    def test_same_topology_and_profile_give_identical_classes(self):
        topology = ChimeraGraph(6, 6)
        first = paper_test_classes(topology, PROFILES["smoke"])
        second = paper_test_classes(topology, PROFILES["smoke"])
        assert first == second

    def test_classes_feed_the_workload_registry_shapes(self):
        """The paper family accepts every derived class size unchanged."""
        from repro.workloads import get_family

        topology = ChimeraGraph(4, 4)
        for case in paper_test_classes(topology, PROFILES["smoke"], plans_range=(2, 3)):
            problem = get_family("paper").build(
                0,
                num_queries=case.num_queries,
                plans_per_query=case.plans_per_query,
            )
            assert problem.num_queries == case.num_queries
            assert all(
                query.num_plans == case.plans_per_query for query in problem.queries
            )
