"""Tests for the evaluation metrics (scaled cost, speedup)."""

import pytest

from repro.baselines.anytime import SolverTrajectory
from repro.exceptions import ReproError
from repro.experiments.metrics import (
    geometric_mean,
    reference_cost,
    scaled_cost,
    speedup_over_classical,
)


class TestReferenceCost:
    def test_most_expensive_plans_without_savings(self, paper_example_problem):
        # max(2, 4) + max(3, 1) = 7
        assert reference_cost(paper_example_problem) == pytest.approx(7.0)

    def test_reference_upper_bounds_every_valid_solution(self, small_problem):
        reference = reference_cost(small_problem)
        import itertools

        for choices in itertools.product(*(range(2) for _ in range(4))):
            assert small_problem.solution_from_choices(list(choices)).cost <= reference


class TestScaledCost:
    def test_optimum_maps_to_zero(self):
        assert scaled_cost(10.0, optimum=10.0, reference=20.0) == 0.0

    def test_reference_maps_to_one(self):
        assert scaled_cost(20.0, optimum=10.0, reference=20.0) == pytest.approx(1.0)

    def test_midpoint(self):
        assert scaled_cost(15.0, optimum=10.0, reference=20.0) == pytest.approx(0.5)

    def test_below_optimum_clamps_to_zero(self):
        assert scaled_cost(9.0, optimum=10.0, reference=20.0) == 0.0

    def test_infinite_cost_passthrough(self):
        assert scaled_cost(float("inf"), 10.0, 20.0) == float("inf")

    def test_degenerate_span(self):
        assert scaled_cost(10.0, optimum=10.0, reference=10.0) == 0.0
        assert scaled_cost(11.0, optimum=10.0, reference=10.0) == 1.0


class TestSpeedup:
    def _trajectory(self, points):
        return SolverTrajectory(solver_name="X", points=points)

    def test_paper_definition(self):
        """Speedup = time for the best classical solver to match QA's first read."""
        classical = [
            self._trajectory([(50.0, 8.0), (400.0, 5.0)]),
            self._trajectory([(120.0, 5.0)]),
        ]
        speedup = speedup_over_classical(
            quantum_first_read_cost=5.0,
            quantum_first_read_time_ms=0.376,
            classical_trajectories=classical,
            classical_budget_ms=1000.0,
        )
        # The second solver matches cost 5.0 at 120 ms, earlier than 400 ms.
        assert speedup == pytest.approx(120.0 / 0.376)

    def test_unmatched_quality_uses_budget(self):
        classical = [self._trajectory([(10.0, 50.0)])]
        speedup = speedup_over_classical(1.0, 0.376, classical, classical_budget_ms=2000.0)
        assert speedup == pytest.approx(2000.0 / 0.376)

    def test_classical_faster_gives_speedup_below_one(self):
        classical = [self._trajectory([(0.1, 1.0)])]
        speedup = speedup_over_classical(5.0, 0.376, classical, classical_budget_ms=100.0)
        assert speedup < 1.0

    def test_invalid_arguments(self):
        classical = [self._trajectory([(1.0, 1.0)])]
        with pytest.raises(ReproError):
            speedup_over_classical(1.0, 0.0, classical, 100.0)
        with pytest.raises(ReproError):
            speedup_over_classical(1.0, 1.0, [], 100.0)
        with pytest.raises(ReproError):
            speedup_over_classical(1.0, 1.0, classical, 0.0)


class TestGeometricMean:
    def test_simple_values(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_invalid_values(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])
