"""Tests for the bench orchestrator (service + server modes)."""

import json

import pytest

from repro.bench.orchestrator import (
    BenchOrchestrator,
    BenchRunConfig,
    emit_workload_jsonl,
    render_summary,
)
from repro.bench.schema import validate_bench_document
from repro.exceptions import ReproError
from repro.service.jobs import request_from_spec
from repro.workloads import ScenarioSpec, WorkloadSuite, register_suite

#: A two-scenario suite small enough for sub-second orchestrator runs.
TINY_SUITE = register_suite(
    WorkloadSuite(
        name="unit-tiny",
        description="orchestrator unit-test suite",
        scenarios=(
            ScenarioSpec("tiny-paper", "paper", seed=5, params={"num_queries": 3}),
            ScenarioSpec("tiny-star", "star", seed=6, params={"num_queries": 3}),
        ),
        default_budget_ms=10.0,
        instances_per_scenario=2,
    ),
    replace=True,
)


class TestConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError, match="mode"):
            BenchRunConfig(suite="unit-tiny", mode="batch")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ReproError, match="budget_ms"):
            BenchRunConfig(suite="unit-tiny", budget_ms=0.0)

    def test_suite_defaults_apply(self):
        orchestrator = BenchOrchestrator(BenchRunConfig(suite="unit-tiny"))
        assert orchestrator.budget_ms == 10.0
        assert orchestrator.instances == 2
        overridden = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", budget_ms=25.0, instances=1)
        )
        assert overridden.budget_ms == 25.0
        assert overridden.instances == 1


class TestServiceMode:
    def test_produces_a_valid_document_with_quality(self):
        document = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", solver="CLIMB", seed=3)
        ).run()
        validate_bench_document(document)
        assert document["suite"] == "unit-tiny"
        assert document["mode"] == "service"
        assert document["totals"]["jobs"] == 4
        assert document["totals"]["failures"] == 0
        names = [scenario["name"] for scenario in document["scenarios"]]
        assert names == ["tiny-paper", "tiny-star"]
        for scenario in document["scenarios"]:
            assert scenario["jobs"] == 2
            assert scenario["quality"]["mean_gap_to_best_known"] >= 0.0
            assert 0 <= scenario["quality"]["best_known_matches"] <= 2

    def test_quality_pass_can_be_disabled(self):
        document = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", quality_reference="")
        ).run()
        validate_bench_document(document)
        for scenario in document["scenarios"]:
            assert "quality" not in scenario

    def test_unknown_solver_reports_failures_not_crashes(self):
        document = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", solver="NO-SUCH-SOLVER")
        ).run()
        validate_bench_document(document)
        assert document["totals"]["failures"] == document["totals"]["jobs"]

    def test_run_and_save_writes_bench_json(self, tmp_path):
        document, path = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny")
        ).run_and_save(tmp_path)
        assert path.name == "BENCH_unit-tiny.json"
        assert json.loads(path.read_text())["totals"] == document["totals"]

    def test_render_summary_mentions_every_scenario(self):
        document = BenchOrchestrator(BenchRunConfig(suite="unit-tiny")).run()
        summary = render_summary(document)
        assert "tiny-paper" in summary and "tiny-star" in summary
        assert "suite=unit-tiny" in summary


class TestServerMode:
    def test_closed_loop_against_a_real_server(self):
        document = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", mode="server", solver="CLIMB")
        ).run()
        validate_bench_document(document)
        assert document["mode"] == "server"
        assert document["totals"]["failures"] == 0
        assert document["totals"]["jobs"] == 4


class TestOpenLoopConfig:
    def test_instances_override_rejected_for_open_loop_suites(self):
        with pytest.raises(ReproError, match="arrival schedule"):
            BenchOrchestrator(
                BenchRunConfig(suite="stream-poisson", mode="server", instances=5)
            )

    def test_service_mode_run_of_a_stream_suite_reports_closed_loop(self):
        document = BenchOrchestrator(
            BenchRunConfig(
                suite="stream-poisson", mode="service", budget_ms=5.0, instances=1
            )
        ).run()
        validate_bench_document(document)
        # The arrival schedule is ignored in service mode, and the
        # document must not pretend otherwise.
        assert "arrival" not in document["config"]
        assert "open_loop" not in document["config"]
        assert document["config"]["instances_per_scenario"] == 1


class TestEmitWorkload:
    def test_jsonl_lines_rebuild_the_exact_instances(self, tmp_path):
        path = emit_workload_jsonl(
            "unit-tiny", tmp_path / "suite.jsonl", solver="CLIMB"
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4
        expected = TINY_SUITE.scenarios[0].build(0)
        request = request_from_spec(lines[0])
        assert request.solver == "CLIMB"
        assert request.time_budget_ms == 10.0
        assert request.problem.canonical_hash() == expected.canonical_hash()
        assert lines[0]["metadata"] == {"scenario": "tiny-paper", "family": "paper"}
