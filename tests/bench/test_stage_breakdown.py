"""Tests of the per-stage latency breakdown in BENCH totals."""

from repro.bench.orchestrator import (
    STAGE_SPAN_NAMES,
    BenchOrchestrator,
    BenchRunConfig,
    stage_breakdown_from_spans,
)
from repro.bench.schema import validate_bench_document
from repro.obs.trace import Tracer, get_tracer

import tests.bench.test_orchestrator  # noqa: F401  (registers the unit-tiny suite)

#: Keys every breakdown must carry, per the observability acceptance bar.
REQUIRED_STAGES = ("qubo_build", "embed", "anneal", "decode", "queue_wait", "solve")


class TestStageBreakdownFromSpans:
    def _spans(self, name, durations):
        tracer = Tracer(enabled=True)
        for duration in durations:
            with tracer.span(name) as span:
                pass
            span.duration_ms = duration  # deterministic timings for the test
        return tracer.drain()

    def test_aggregates_counts_totals_and_means(self):
        spans = self._spans("mqo.anneal", [10.0, 30.0])
        breakdown = stage_breakdown_from_spans(spans)
        assert breakdown["anneal"] == {"count": 2, "total_ms": 40.0, "mean_ms": 20.0}

    def test_all_stages_present_even_when_unexercised(self):
        breakdown = stage_breakdown_from_spans([])
        for stage in REQUIRED_STAGES:
            entry = breakdown[stage]
            assert entry["count"] == 0
            assert entry["total_ms"] == 0.0
            assert entry["mean_ms"] == 0.0

    def test_queue_wait_comes_from_the_server_snapshot(self):
        breakdown = stage_breakdown_from_spans([], queue_wait={"count": 4, "mean_ms": 2.5})
        assert breakdown["queue_wait"] == {"count": 4, "total_ms": 10.0, "mean_ms": 2.5}

    def test_unfinished_spans_are_ignored(self):
        tracer = Tracer(enabled=True)
        with tracer.span("mqo.embed"):
            pass
        spans = tracer.drain()
        spans[0].duration_ms = None
        assert stage_breakdown_from_spans(spans)["embed"]["count"] == 0

    def test_every_mapped_span_name_is_distinct(self):
        assert len(set(STAGE_SPAN_NAMES.values())) == len(STAGE_SPAN_NAMES)


class TestPerShardAttribution:
    def _shard_spans(self, shard, name, durations):
        tracer = Tracer(enabled=True)
        for duration in durations:
            with tracer.span(name) as span:
                span.set_attribute("shard", shard)
            span.duration_ms = duration
        return tracer.drain()

    def test_shard_tagged_spans_get_a_per_shard_block(self):
        spans = self._shard_spans(0, "service.execute", [10.0, 20.0])
        spans += self._shard_spans(1, "service.execute", [40.0])
        breakdown = stage_breakdown_from_spans(spans)
        # The flat totals still cover everything...
        assert breakdown["solve"] == {"count": 3, "total_ms": 70.0, "mean_ms": 23.333}
        # ...and the per-shard block attributes them to their shard.
        per_shard = breakdown["per_shard"]
        assert set(per_shard) == {"0", "1"}
        assert per_shard["0"]["solve"] == {"count": 2, "total_ms": 30.0, "mean_ms": 15.0}
        assert per_shard["1"]["solve"] == {"count": 1, "total_ms": 40.0, "mean_ms": 40.0}

    def test_untagged_spans_produce_no_per_shard_block(self):
        tracer = Tracer(enabled=True)
        with tracer.span("service.execute"):
            pass
        breakdown = stage_breakdown_from_spans(tracer.drain())
        assert "per_shard" not in breakdown

    def test_mixed_tagged_and_untagged_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("service.execute") as span:
            pass
        span.duration_ms = 5.0
        spans = tracer.drain() + self._shard_spans(1, "service.execute", [15.0])
        breakdown = stage_breakdown_from_spans(spans)
        assert breakdown["solve"]["count"] == 2  # flat view counts both
        assert breakdown["per_shard"]["1"]["solve"]["count"] == 1
        assert "0" not in breakdown["per_shard"]


class TestOrchestratorEmbedding:
    def test_totals_carry_the_breakdown_and_document_stays_valid(self):
        orchestrator = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", solver="CLIMB", quality_reference="")
        )
        document = orchestrator.run()
        validate_bench_document(document)
        breakdown = document["totals"]["stage_breakdown"]
        for stage in REQUIRED_STAGES:
            assert stage in breakdown
            assert breakdown[stage]["count"] >= 0
        # CLIMB exercises no annealer stages, but every job runs through
        # the service execute span.
        assert breakdown["solve"]["count"] == document["totals"]["jobs"]
        assert breakdown["solve"]["total_ms"] > 0

    def test_run_restores_tracer_state_and_keeps_spans(self):
        tracer = get_tracer()
        assert not tracer.enabled  # suite default
        orchestrator = BenchOrchestrator(
            BenchRunConfig(suite="unit-tiny", solver="CLIMB", quality_reference="")
        )
        orchestrator.run()
        assert not tracer.enabled
        assert len(tracer) == 0  # run() drained its own spans
        assert any(span.name == "service.execute" for span in orchestrator.last_spans)
