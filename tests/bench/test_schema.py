"""Tests for the BENCH document schema and validator."""

import copy

import pytest

from repro.bench.schema import (
    BENCH_FORMAT_VERSION,
    BENCH_KIND,
    BenchSchemaError,
    build_bench_document,
    load_bench_document,
    save_bench_document,
    validate_bench_document,
)
from repro.bench.stats import summarize_latencies


def minimal_document() -> dict:
    """A small, valid BENCH document used as the mutation baseline."""
    latency = summarize_latencies([10.0, 12.0, 20.0])
    scenario = {
        "name": "s1",
        "family": "paper",
        "jobs": 3,
        "failures": 0,
        "duration_s": 0.042,
        "throughput_jobs_per_s": 71.4,
        "latency_ms": latency,
    }
    totals = {
        "jobs": 3,
        "failures": 0,
        "duration_s": 0.042,
        "throughput_jobs_per_s": 71.4,
        "latency_ms": latency,
    }
    return build_bench_document(
        suite="unit", mode="service", scenarios=[scenario], totals=totals
    )


class TestBuildAndValidate:
    def test_build_produces_a_valid_document(self):
        document = minimal_document()
        validate_bench_document(document)
        assert document["format_version"] == BENCH_FORMAT_VERSION
        assert document["kind"] == BENCH_KIND
        assert document["env"]["python"]

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(format_version=99), "format_version"),
            (lambda d: d.update(kind="other"), "kind"),
            (lambda d: d.update(suite=""), "suite"),
            (lambda d: d.update(mode="batch"), "mode"),
            (lambda d: d.pop("created_unix"), "created_unix"),
            (lambda d: d.update(env=[]), "env"),
            (lambda d: d["env"].pop("python"), "python"),
            (lambda d: d.update(scenarios=[]), "scenarios"),
            (lambda d: d["scenarios"][0].pop("family"), "family"),
            (lambda d: d["scenarios"][0].update(jobs=-1), "jobs"),
            (lambda d: d["scenarios"][0].update(jobs=True), "jobs"),
            (lambda d: d["scenarios"][0]["latency_ms"].pop("p99"), "p99"),
            (lambda d: d["totals"].update(jobs=7), "totals.jobs"),
            (lambda d: d["totals"].pop("latency_ms"), "latency_ms"),
        ],
    )
    def test_mutations_fail_validation(self, mutate, message):
        document = minimal_document()
        mutate(document)
        with pytest.raises(BenchSchemaError, match=message):
            validate_bench_document(document)

    def test_unordered_percentiles_rejected(self):
        document = minimal_document()
        document["totals"]["latency_ms"]["p50"] = 999.0
        with pytest.raises(BenchSchemaError, match="ordered"):
            validate_bench_document(document)

    def test_duplicate_scenario_names_rejected(self):
        document = minimal_document()
        twin = copy.deepcopy(document["scenarios"][0])
        document["scenarios"].append(twin)
        document["totals"]["jobs"] = 6
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_bench_document(document)

    def test_extra_keys_are_allowed(self):
        document = minimal_document()
        document["scenarios"][0]["server_stats"] = {"anything": 1}
        document["config"]["speedup"] = 3.5
        validate_bench_document(document)


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path):
        document = minimal_document()
        path = save_bench_document(document, tmp_path / "BENCH_unit.json")
        assert load_bench_document(path) == document

    def test_save_refuses_invalid_documents(self, tmp_path):
        document = minimal_document()
        document["totals"]["jobs"] = 99
        with pytest.raises(BenchSchemaError):
            save_bench_document(document, tmp_path / "BENCH_bad.json")
        assert not (tmp_path / "BENCH_bad.json").exists()

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_bench_document(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="cannot read"):
            load_bench_document(tmp_path / "absent.json")
