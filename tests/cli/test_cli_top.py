"""CLI tests of the ``top`` subcommand and its frame renderer."""

import pytest

from repro.cli import _parse_shard_series, _render_top, build_parser, main
from repro.server.app import ServerConfig, run_server_in_thread
from repro.server.readiness import wait_for_server

from tests.server.conftest import scripted_shard_frontend, tiny_problem


class TestTopParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.host == "127.0.0.1"
        assert args.port == 7337
        assert args.interval == 2.0
        assert args.count == 0
        assert args.timeout_s == 10.0

    def test_serve_accepts_trace(self):
        assert (
            build_parser().parse_args(["serve", "--trace", "t.ndjson"]).trace
            == "t.ndjson"
        )
        assert build_parser().parse_args(["serve"]).trace is None


class TestShardSeriesParser:
    def test_extracts_counters_and_gauges_per_shard(self):
        text = (
            'repro_server_shard_jobs_total{shard="0"} 5\n'
            'repro_server_shard_jobs_total{shard="1"} 7\n'
            'repro_server_shard_heartbeat_age_seconds{shard="0"} 0.42\n'
            "repro_server_queue_depth 3\n"  # not a shard series: ignored
        )
        series = _parse_shard_series(text)
        assert series == {
            "0": {"jobs": 5.0, "heartbeat_age_seconds": 0.42},
            "1": {"jobs": 7.0},
        }

    def test_malformed_lines_are_skipped(self):
        assert _parse_shard_series('repro_server_shard_jobs_total{shard="0"} oops\n') == {}


class TestRenderTop:
    STATS = {
        "uptime_s": 12.5,
        "counters": {"jobs_finished": 9, "jobs_failed": 1},
        "jobs_finished_per_second": 0.72,
        "queue_depth": 2,
        "inflight": 1,
        "stream_channels": 0,
        "queue_wait": {"p50_ms": 1.5, "p99_ms": 8.0},
        "job_run": {"p50_ms": 40.0, "p99_ms": 90.0},
    }

    def test_thread_tier_renders_without_a_shard_table(self):
        health = {"verdict": "ok", "tier": "threads", "active": 1}
        frame = _render_top("127.0.0.1", 7337, self.STATS, health, "")
        assert "verdict ok (tier threads)" in frame
        assert "9 finished, 1 failed" in frame
        assert "workers active: 1" in frame
        assert "shard" not in frame

    def test_shard_tier_renders_one_row_per_shard(self):
        health = {
            "verdict": "degraded",
            "tier": "shards",
            "count": 2,
            "alive": 1,
            "restarts": 1,
            "shards": {
                "0": {"pid": 11, "ready": True, "dead": False, "stale": False,
                      "assigned": 1, "outbox": 0, "overflow": 0, "restarts": 0,
                      "heartbeat_age_s": 0.3},
                "1": {"pid": None, "ready": False, "dead": True, "stale": False,
                      "assigned": 0, "outbox": 2, "overflow": 1, "restarts": 1,
                      "heartbeat_age_s": 6.2},
            },
        }
        text = 'repro_server_shard_jobs_total{shard="0"} 4\n'
        frame = _render_top("127.0.0.1", 7337, self.STATS, health, text)
        assert "verdict degraded" in frame
        assert "1/2 alive, 1 restarts" in frame
        lines = frame.splitlines()
        rows = [line for line in lines if line.lstrip().startswith(("0 ", "0 |", "1 "))]
        assert any("up" in line and "4" in line for line in rows)
        assert any("dead" in line for line in rows)

    def test_stale_shard_is_labelled(self):
        health = {
            "verdict": "degraded", "tier": "shards", "count": 1, "alive": 0,
            "restarts": 0,
            "shards": {"0": {"pid": 9, "ready": True, "dead": False, "stale": True,
                             "assigned": 0, "outbox": 0, "overflow": 0,
                             "restarts": 0, "heartbeat_age_s": 9.9}},
        }
        frame = _render_top("h", 1, self.STATS, health, "")
        assert "stale" in frame


class TestTopAgainstLiveServer:
    @pytest.fixture()
    def server(self):
        """A default-registry solver server on an ephemeral port."""
        handle = run_server_in_thread(ServerConfig(port=0, workers=2))
        yield handle
        handle.stop()

    def test_one_shot_when_stdout_is_piped(self, server, capsys):
        # Under capsys stdout is not a TTY, so `top` prints one frame
        # and exits instead of looping.
        exit_code = main(["top", "--port", str(server.port)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert f"repro-mqo top — 127.0.0.1:{server.port}" in out
        assert "verdict ok (tier threads)" in out
        assert out.count("repro-mqo top") == 1

    def test_count_limits_refreshes(self, server, capsys):
        exit_code = main(
            ["top", "--port", str(server.port), "--count", "2", "--interval", "0.01"]
        )
        assert exit_code == 0
        assert capsys.readouterr().out.count("repro-mqo top") == 2

    def test_sharded_server_shows_the_shard_table(self, capsys):
        handle = run_server_in_thread(
            ServerConfig(port=0, workers=2, shards=2, shard_heartbeat_s=0.2),
            frontend_factory=scripted_shard_frontend,
        )
        try:
            wait_for_server(port=handle.port, timeout_s=15.0, min_shards=2)
            from repro.server.client import SolverClient

            with SolverClient(port=handle.port) as client:
                assert client.solve(tiny_problem(), solver="STEP", budget_ms=500.0).ok
            assert main(["top", "--port", str(handle.port)]) == 0
        finally:
            handle.stop()
        out = capsys.readouterr().out
        assert "tier shards" in out
        assert "2/2 alive" in out
        # One table row per shard, keyed by the shard index column.
        assert "shard" in out
        assert "up" in out

    def test_unreachable_server_reports_error_exit(self, capsys):
        assert main(["top", "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err
