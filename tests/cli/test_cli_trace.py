"""CLI tests of ``--trace`` NDJSON export and tracer state restoration."""

import json
import socket
import threading

from repro.cli import build_parser, main
from repro.obs.trace import get_tracer
from repro.server.client import SolverClient
from repro.server.readiness import wait_for_server


class TestTraceFlagParsing:
    def test_solve_batch_and_bench_accept_trace(self):
        parser = build_parser()
        assert parser.parse_args(["solve", "--trace", "t.ndjson"]).trace == "t.ndjson"
        assert parser.parse_args(["batch", "-", "--trace", "t.ndjson"]).trace == "t.ndjson"
        assert parser.parse_args(["bench", "--trace", "t.ndjson"]).trace == "t.ndjson"
        assert parser.parse_args(["solve"]).trace is None

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.host == "127.0.0.1"
        assert args.port == 7337
        assert args.timeout_s == 10.0


class TestSolveTrace:
    def test_solve_writes_pipeline_spans(self, tmp_path, capsys):
        path = tmp_path / "trace.ndjson"
        exit_code = main(
            ["solve", "--queries", "4", "--reads", "20", "--trace", str(path)]
        )
        assert exit_code == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        names = {record["name"] for record in records}
        assert {"mqo.prepare", "mqo.qubo_build", "mqo.anneal", "mqo.decode"} <= names
        # One trace: the child stages share the prepare/solve trace ids.
        assert all("span_id" in record and "trace_id" in record for record in records)
        assert f"wrote {len(records)} spans to {path}" in capsys.readouterr().err

    def test_tracer_disabled_again_after_the_command(self, tmp_path):
        main(["solve", "--queries", "4", "--reads", "20", "--trace", str(tmp_path / "t.ndjson")])
        tracer = get_tracer()
        assert not tracer.enabled
        assert len(tracer) == 0


class TestBatchTrace:
    def test_batch_traces_every_job(self, tmp_path, capsys):
        workload = tmp_path / "jobs.jsonl"
        workload.write_text(
            "\n".join(
                json.dumps({"queries": 4, "plans": 2, "seed": seed, "solver": "CLIMB"})
                for seed in range(2)
            )
            + "\n"
        )
        path = tmp_path / "trace.ndjson"
        exit_code = main(
            [
                "batch",
                str(workload),
                "--budget-ms",
                "50",
                "--output",
                str(tmp_path / "results.jsonl"),
                "--trace",
                str(path),
            ]
        )
        assert exit_code == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        executes = [r for r in records if r["name"] == "service.execute"]
        assert len(executes) == 2
        assert all(r["status"] == "ok" for r in executes)


def _free_port() -> int:
    """An OS-assigned port, released for immediate reuse by ``serve``."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestServeTrace:
    def test_serve_writes_spans_on_shutdown(self, tmp_path):
        """``serve --trace`` dumps the server's spans when it stops.

        The server runs ``main()`` on a thread against a real socket; a
        client solves one job and issues a draining shutdown, after
        which the NDJSON file must hold the solve's pipeline spans —
        proof the tracer stayed enabled for the server's lifetime and
        was exported on the way out.
        """
        path = tmp_path / "serve-trace.ndjson"
        port = _free_port()
        exit_codes = []
        thread = threading.Thread(
            target=lambda: exit_codes.append(
                main(
                    [
                        "serve",
                        "--port",
                        str(port),
                        "--workers",
                        "1",
                        "--trace",
                        str(path),
                    ]
                )
            ),
            daemon=True,
        )
        thread.start()
        try:
            wait_for_server(port=port, timeout_s=20.0)
            with SolverClient(port=port) as client:
                result = client.solve(
                    {"queries": 4, "plans": 2, "seed": 1}, solver="CLIMB", budget_ms=60.0
                )
                assert result.ok
                client.shutdown(drain=True)
        finally:
            thread.join(timeout=20.0)
        assert not thread.is_alive()
        assert exit_codes == [0]
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(record["name"] == "service.execute" for record in records)
        # The command restored the tracer it found (disabled, empty).
        tracer = get_tracer()
        assert not tracer.enabled
        assert len(tracer) == 0
