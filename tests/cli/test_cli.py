"""Tests for the repro-mqo command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import save_problem


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.queries == 20
        assert args.plans == 2
        assert not args.baselines

    def test_capacity_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.qubits == [1152, 2304, 4608]
        assert args.pattern == "clustered"


class TestInfoCommand:
    def test_prints_device_json(self, capsys):
        assert main(["info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["device"]["total_qubits"] == 1152
        assert payload["device"]["functional_qubits"] == 1097


class TestCapacityCommand:
    def test_prints_frontier(self, capsys):
        assert main(["capacity", "--qubits", "1152"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "1152 qubits" in output

    def test_native_pattern(self, capsys):
        assert main(["capacity", "--qubits", "1097", "--pattern", "native"]) == 0
        assert "native" in capsys.readouterr().out


class TestSolveCommand:
    def test_solve_generated_instance(self, capsys):
        exit_code = main(["solve", "--queries", "6", "--plans", "2", "--reads", "30", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "QA" in output
        assert "best cost" in output

    def test_solve_with_baselines(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "5",
                "--plans",
                "2",
                "--reads",
                "20",
                "--baselines",
                "--budget-ms",
                "200",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "LIN-MQO" in output
        assert "CLIMB" in output

    def test_solve_problem_file(self, tmp_path, capsys):
        problem = generate_paper_testcase(5, 2, seed=3)
        path = save_problem(problem, tmp_path / "problem.json")
        exit_code = main(["solve", "--problem-file", str(path), "--reads", "20"])
        assert exit_code == 0
        assert problem.name in capsys.readouterr().out
