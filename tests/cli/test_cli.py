"""Tests for the repro-mqo command-line interface."""

import json

import pytest

from repro.cli import _iter_workload, _submit_spec_and_seed, build_parser, main
from repro.exceptions import ReproError
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import save_problem
from repro.service.batch import derive_job_seed


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.queries == 20
        assert args.plans == 2
        assert not args.baselines

    def test_capacity_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.qubits == [1152, 2304, 4608]
        assert args.pattern == "clustered"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7337
        assert args.workers == 2
        assert args.queue_capacity == 128
        assert args.cache_file is None

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "workload.jsonl"])
        assert args.port == 7337
        assert args.solver is None
        assert not args.stream
        assert args.priority is None


class TestInfoCommand:
    def test_prints_device_json(self, capsys):
        assert main(["info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["device"]["total_qubits"] == 1152
        assert payload["device"]["functional_qubits"] == 1097


class TestCapacityCommand:
    def test_prints_frontier(self, capsys):
        assert main(["capacity", "--qubits", "1152"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "1152 qubits" in output

    def test_native_pattern(self, capsys):
        assert main(["capacity", "--qubits", "1097", "--pattern", "native"]) == 0
        assert "native" in capsys.readouterr().out


class TestSolveCommand:
    def test_solve_generated_instance(self, capsys):
        exit_code = main(["solve", "--queries", "6", "--plans", "2", "--reads", "30", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "QA" in output
        assert "best cost" in output

    def test_solve_with_baselines(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "5",
                "--plans",
                "2",
                "--reads",
                "20",
                "--baselines",
                "--budget-ms",
                "200",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "LIN-MQO" in output
        assert "CLIMB" in output

    def test_solve_problem_file(self, tmp_path, capsys):
        problem = generate_paper_testcase(5, 2, seed=3)
        path = save_problem(problem, tmp_path / "problem.json")
        exit_code = main(["solve", "--problem-file", str(path), "--reads", "20"])
        assert exit_code == 0
        assert problem.name in capsys.readouterr().out

    def test_solve_json_output(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "5",
                "--plans",
                "2",
                "--reads",
                "20",
                "--baselines",
                "--budget-ms",
                "100",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"]["num_queries"] == 5
        assert len(payload["problem"]["canonical_hash"]) == 64
        winners = [result["winner"] for result in payload["results"]]
        assert winners[0] == "QA"
        assert "LIN-MQO" in winners
        for result in payload["results"]:
            assert result["is_valid"]
            assert result["trajectory"]

    def test_solve_decomposed(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "12",
                "--plans",
                "2",
                "--seed",
                "3",
                "--decompose",
                "--max-cluster-size",
                "4",
                "--budget-ms",
                "400",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "decomposed into" in output
        assert "decomposed_qa" in output

    def test_solve_decomposed_json(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "10",
                "--plans",
                "2",
                "--seed",
                "3",
                "--decompose",
                "--budget-ms",
                "400",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["qubits_per_variable"] is None  # no QUBO embedding
        [result] = payload["results"]
        assert result["winner"] == "decomposed_qa"
        assert result["is_valid"]


class TestBatchCommand:
    @staticmethod
    def _write_workload(path, count, budget_ms=60.0):
        with open(path, "w") as handle:
            for index in range(count):
                spec = {"queries": 4, "plans": 2, "seed": index, "budget_ms": budget_ms}
                handle.write(json.dumps(spec) + "\n")
        return path

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "workload.jsonl"])
        assert args.solver == "portfolio"
        assert args.workers == 0
        assert args.cache_file is None

    def test_batch_streams_portfolio_results(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 3)
        exit_code = main(
            ["batch", str(workload), "--solvers", "LIN-MQO", "CLIMB", "--seed", "1"]
        )
        assert exit_code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 3
        assert {line["job_id"] for line in lines} == {"job-0", "job-1", "job-2"}
        for line in lines:
            assert line["solver"] == "portfolio"
            assert line["winner"] in ("LIN-MQO", "CLIMB")
            assert line["is_valid"]

    def test_batch_warm_cache_reports_hits(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 2)
        cache_file = tmp_path / "cache.json"
        common = [
            "batch",
            str(workload),
            "--solver",
            "CLIMB",
            "--seed",
            "5",
            "--cache-file",
            str(cache_file),
        ]
        assert main(common) == 0
        cold = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert all(not line["from_cache"] for line in cold)

        assert main(common) == 0
        warm = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert all(line["from_cache"] for line in warm)
        def by_job(lines):
            return sorted((line["job_id"], line["best_cost"]) for line in lines)

        assert by_job(cold) == by_job(warm)

    def test_batch_output_file(self, tmp_path):
        workload = self._write_workload(tmp_path / "workload.jsonl", 2)
        out = tmp_path / "results.jsonl"
        exit_code = main(
            ["batch", str(workload), "--solver", "CLIMB", "--output", str(out)]
        )
        assert exit_code == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 2

    def test_batch_empty_workload_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("# only a comment\n")
        assert main(["batch", str(empty)]) == 1

    def test_bad_input_does_not_truncate_output_file(self, tmp_path):
        out = tmp_path / "results.jsonl"
        out.write_text("precious prior results\n")
        missing = tmp_path / "missing.jsonl"
        assert main(["batch", str(missing), "--output", str(out)]) == 2
        assert out.read_text() == "precious prior results\n"
        # Same guarantee for submit against an unreachable server.
        workload = tmp_path / "w.jsonl"
        workload.write_text(json.dumps({"queries": 4, "plans": 2, "seed": 1}) + "\n")
        assert main(["submit", str(workload), "--port", "1", "--output", str(out)]) == 2
        assert out.read_text() == "precious prior results\n"

    def test_batch_unknown_solver_reports_failure_exit(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 1)
        assert main(["batch", str(workload), "--solver", "NOPE"]) == 1
        (line,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert "UnknownSolverError" in line["error"]


class TestWorkloadStreaming:
    """Regression coverage: the JSONL workload is parsed lazily."""

    def test_iter_workload_parses_on_demand(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        path.write_text(
            '{"queries": 4}\n'
            "# a comment\n"
            "\n"
            '{"queries": 5}\n'
            "THIS LINE IS NOT JSON\n"
        )
        iterator = _iter_workload(str(path))
        # Early lines stream out before the malformed tail is ever read —
        # a whole-file parse would raise up front.
        assert next(iterator)["queries"] == 4
        assert next(iterator)["queries"] == 5
        with pytest.raises(ReproError, match="line 5"):
            next(iterator)

    def test_iter_workload_missing_file_raises_lazily(self, tmp_path):
        iterator = _iter_workload(str(tmp_path / "missing.jsonl"))
        with pytest.raises(ReproError, match="cannot read workload file"):
            next(iterator)

    def test_large_workload_head_is_cheap(self, tmp_path):
        path = tmp_path / "huge.jsonl"
        with open(path, "w") as handle:
            for index in range(20000):
                handle.write(json.dumps({"queries": 4, "seed": index}) + "\n")
        iterator = _iter_workload(str(path))
        # Consuming the head of a 20k-line workload must not materialise
        # the rest (this returns immediately; loading would be visible).
        head = [next(iterator) for _ in range(3)]
        assert [spec["seed"] for spec in head] == [0, 1, 2]
        iterator.close()

    def test_chunked_batch_matches_whole_file_semantics(
        self, tmp_path, capsys, monkeypatch
    ):
        # Force tiny chunks so a 5-job workload spans three executor
        # rounds; job ids and derived seeds must still be global.
        monkeypatch.setattr("repro.cli._BATCH_CHUNK_SIZE", 2)
        path = tmp_path / "workload.jsonl"
        with open(path, "w") as handle:
            for index in range(5):
                spec = {"queries": 4, "plans": 2, "generator_seed": index, "budget_ms": 40.0}
                handle.write(json.dumps(spec) + "\n")
        assert main(["batch", str(path), "--solver", "CLIMB", "--seed", "3"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [line["job_id"] for line in lines] == [f"job-{i}" for i in range(5)]
        assert [line["seed"] for line in lines] == [
            derive_job_seed(3, index) for index in range(5)
        ]
        assert all(line["winner"] == "CLIMB" for line in lines)

    def test_duplicates_deduped_across_chunks(self, tmp_path, capsys, monkeypatch):
        # Five identical jobs spanning three chunks must solve once; the
        # cross-chunk twins are echoed with from_cache=true, matching the
        # old whole-file dedupe semantics.
        monkeypatch.setattr("repro.cli._BATCH_CHUNK_SIZE", 2)
        path = tmp_path / "dupes.jsonl"
        spec = {"queries": 4, "plans": 2, "generator_seed": 9, "seed": 5, "budget_ms": 40.0}
        with open(path, "w") as handle:
            for _ in range(5):
                handle.write(json.dumps(spec) + "\n")
        assert main(["batch", str(path), "--solver", "CLIMB"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 5
        assert sum(not line["from_cache"] for line in lines) == 1
        assert len({line["best_cost"] for line in lines}) == 1


class TestSubmitCommand:
    @pytest.fixture()
    def server(self):
        """A default-registry solver server on an ephemeral port."""
        from repro.server.app import ServerConfig, run_server_in_thread

        handle = run_server_in_thread(ServerConfig(port=0, workers=2))
        yield handle
        handle.stop()

    @staticmethod
    def _write_workload(path, count):
        with open(path, "w") as handle:
            for index in range(count):
                handle.write(json.dumps({"queries": 4, "plans": 2, "seed": index}) + "\n")
        return path

    def test_submit_pipelines_results(self, server, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 3)
        exit_code = main(
            [
                "submit",
                str(workload),
                "--port",
                str(server.port),
                "--solver",
                "CLIMB",
                "--budget-ms",
                "60",
            ]
        )
        assert exit_code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 3
        assert all(line["winner"] == "CLIMB" for line in lines)
        assert all(line["is_valid"] for line in lines)
        # Result ids are stable per input line, matching `batch` output.
        assert [line["job_id"] for line in lines] == ["job-0", "job-1", "job-2"]

    def test_submit_flags_are_defaults_not_overrides(self, server, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {"queries": 4, "plans": 2, "seed": 1, "solver": "GREEDY"}
                )
                + "\n"
            )
            handle.write(json.dumps({"queries": 4, "plans": 2, "seed": 2}) + "\n")
        exit_code = main(
            [
                "submit",
                str(path),
                "--port",
                str(server.port),
                "--solver",
                "CLIMB",
                "--budget-ms",
                "60",
            ]
        )
        assert exit_code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        # A spec-named solver wins over --solver (batch semantics).
        assert [line["winner"] for line in lines] == ["GREEDY", "CLIMB"]

    def test_submit_stream_mode_emits_update_lines(self, server, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 1)
        exit_code = main(
            [
                "submit",
                str(workload),
                "--port",
                str(server.port),
                "--solver",
                "CLIMB",
                "--budget-ms",
                "80",
                "--stream",
            ]
        )
        assert exit_code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        updates = [line for line in lines if line.get("type") == "update"]
        results = [line for line in lines if "winner" in line]
        assert updates, "streaming mode must emit anytime update lines"
        assert len(results) == 1
        # Updates precede the result on the stream.
        assert lines.index(updates[0]) < lines.index(results[0])

    def test_submit_empty_workload_fails(self, server, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("# nothing here\n")
        assert main(["submit", str(empty), "--port", str(server.port)]) == 1

    def test_submit_unreachable_server_reports_error(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 1)
        # Port 1 is never listening; the CLI must fail cleanly (exit 2).
        assert main(["submit", str(workload), "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_fails_fast_on_non_retryable_rejection(self, tmp_path, capsys):
        from repro.server.app import ServerConfig, run_server_in_thread

        handle = run_server_in_thread(ServerConfig(port=0, workers=1, max_budget_ms=100.0))
        try:
            path = tmp_path / "capped.jsonl"
            with open(path, "w") as handle_file:
                handle_file.write(json.dumps({"queries": 4, "plans": 2, "seed": 0}) + "\n")
                handle_file.write(
                    json.dumps(
                        {"queries": 4, "plans": 2, "seed": 1, "budget_ms": 5000.0}
                    )
                    + "\n"
                )
            # The second line exceeds the server's budget cap — a permanent
            # rejection that must abort instead of retrying forever.
            exit_code = main(
                [
                    "submit",
                    str(path),
                    "--port",
                    str(handle.port),
                    "--solver",
                    "CLIMB",
                    "--budget-ms",
                    "50",
                ]
            )
            assert exit_code == 2
            assert "budget" in capsys.readouterr().err
        finally:
            handle.stop()

    def test_submit_survives_workloads_beyond_queue_capacity(self, tmp_path, capsys):
        from repro.server.app import ServerConfig, run_server_in_thread

        handle = run_server_in_thread(
            ServerConfig(port=0, workers=1, queue_capacity=3)
        )
        try:
            path = tmp_path / "big.jsonl"
            with open(path, "w") as handle_file:
                for index in range(12):
                    handle_file.write(
                        json.dumps({"queries": 4, "plans": 2, "seed": index}) + "\n"
                    )
            # 12 jobs against capacity 3: the windowed pipeline must
            # self-throttle instead of dying on backpressure.
            exit_code = main(
                [
                    "submit",
                    str(path),
                    "--port",
                    str(handle.port),
                    "--solver",
                    "CLIMB",
                    "--budget-ms",
                    "30",
                ]
            )
            assert exit_code == 0
            lines = [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line.strip()
            ]
            assert len(lines) == 12
            assert all(line["winner"] == "CLIMB" for line in lines)
        finally:
            handle.stop()


class TestSubmitSeedDerivation:
    def test_generator_spec_keeps_unseeded_generation(self):
        spec, seed = _submit_spec_and_seed({"queries": 4, "plans": 2}, 3, 0)
        # The derived seed drives *solving*; generation stays unseeded
        # exactly like `repro-mqo batch` (which builds the problem before
        # assigning the solve seed).
        assert spec["generator_seed"] is None
        assert seed == derive_job_seed(3, 0)

    def test_explicit_seed_is_untouched(self):
        original = {"queries": 4, "plans": 2, "seed": 11}
        spec, seed = _submit_spec_and_seed(original, 3, 0)
        assert spec is original
        assert seed is None

    def test_explicit_generator_seed_preserved(self):
        spec, seed = _submit_spec_and_seed(
            {"queries": 4, "plans": 2, "generator_seed": 9}, 3, 1
        )
        assert spec["generator_seed"] == 9
        assert seed == derive_job_seed(3, 1)

    def test_problem_specs_get_only_the_solve_seed(self):
        spec, seed = _submit_spec_and_seed({"plans_per_query": [[1.0, 2.0]]}, 3, 2)
        assert "generator_seed" not in spec
        assert seed == derive_job_seed(3, 2)
