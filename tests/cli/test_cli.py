"""Tests for the repro-mqo command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import save_problem


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.queries == 20
        assert args.plans == 2
        assert not args.baselines

    def test_capacity_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.qubits == [1152, 2304, 4608]
        assert args.pattern == "clustered"


class TestInfoCommand:
    def test_prints_device_json(self, capsys):
        assert main(["info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["device"]["total_qubits"] == 1152
        assert payload["device"]["functional_qubits"] == 1097


class TestCapacityCommand:
    def test_prints_frontier(self, capsys):
        assert main(["capacity", "--qubits", "1152"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "1152 qubits" in output

    def test_native_pattern(self, capsys):
        assert main(["capacity", "--qubits", "1097", "--pattern", "native"]) == 0
        assert "native" in capsys.readouterr().out


class TestSolveCommand:
    def test_solve_generated_instance(self, capsys):
        exit_code = main(["solve", "--queries", "6", "--plans", "2", "--reads", "30", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "QA" in output
        assert "best cost" in output

    def test_solve_with_baselines(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "5",
                "--plans",
                "2",
                "--reads",
                "20",
                "--baselines",
                "--budget-ms",
                "200",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "LIN-MQO" in output
        assert "CLIMB" in output

    def test_solve_problem_file(self, tmp_path, capsys):
        problem = generate_paper_testcase(5, 2, seed=3)
        path = save_problem(problem, tmp_path / "problem.json")
        exit_code = main(["solve", "--problem-file", str(path), "--reads", "20"])
        assert exit_code == 0
        assert problem.name in capsys.readouterr().out

    def test_solve_json_output(self, capsys):
        exit_code = main(
            [
                "solve",
                "--queries",
                "5",
                "--plans",
                "2",
                "--reads",
                "20",
                "--baselines",
                "--budget-ms",
                "100",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"]["num_queries"] == 5
        assert len(payload["problem"]["canonical_hash"]) == 64
        winners = [result["winner"] for result in payload["results"]]
        assert winners[0] == "QA"
        assert "LIN-MQO" in winners
        for result in payload["results"]:
            assert result["is_valid"]
            assert result["trajectory"]


class TestBatchCommand:
    @staticmethod
    def _write_workload(path, count, budget_ms=60.0):
        with open(path, "w") as handle:
            for index in range(count):
                spec = {"queries": 4, "plans": 2, "seed": index, "budget_ms": budget_ms}
                handle.write(json.dumps(spec) + "\n")
        return path

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "workload.jsonl"])
        assert args.solver == "portfolio"
        assert args.workers == 0
        assert args.cache_file is None

    def test_batch_streams_portfolio_results(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 3)
        exit_code = main(
            ["batch", str(workload), "--solvers", "LIN-MQO", "CLIMB", "--seed", "1"]
        )
        assert exit_code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 3
        assert {line["job_id"] for line in lines} == {"job-0", "job-1", "job-2"}
        for line in lines:
            assert line["solver"] == "portfolio"
            assert line["winner"] in ("LIN-MQO", "CLIMB")
            assert line["is_valid"]

    def test_batch_warm_cache_reports_hits(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 2)
        cache_file = tmp_path / "cache.json"
        common = [
            "batch",
            str(workload),
            "--solver",
            "CLIMB",
            "--seed",
            "5",
            "--cache-file",
            str(cache_file),
        ]
        assert main(common) == 0
        cold = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert all(not line["from_cache"] for line in cold)

        assert main(common) == 0
        warm = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert all(line["from_cache"] for line in warm)
        by_job = lambda lines: sorted(
            (line["job_id"], line["best_cost"]) for line in lines
        )
        assert by_job(cold) == by_job(warm)

    def test_batch_output_file(self, tmp_path):
        workload = self._write_workload(tmp_path / "workload.jsonl", 2)
        out = tmp_path / "results.jsonl"
        exit_code = main(
            ["batch", str(workload), "--solver", "CLIMB", "--output", str(out)]
        )
        assert exit_code == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 2

    def test_batch_empty_workload_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("# only a comment\n")
        assert main(["batch", str(empty)]) == 1

    def test_batch_unknown_solver_reports_failure_exit(self, tmp_path, capsys):
        workload = self._write_workload(tmp_path / "workload.jsonl", 1)
        assert main(["batch", str(workload), "--solver", "NOPE"]) == 1
        (line,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert "UnknownSolverError" in line["error"]
