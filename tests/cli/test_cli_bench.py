"""Tests for the ``repro-mqo bench`` subcommand."""

import json

import pytest

from repro.cli import build_parser, main


class TestBenchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.suite == "smoke"
        assert args.mode == "service"
        assert args.solver == "CLIMB"
        assert args.budget_ms is None
        assert args.output_dir == "benchmark_results"
        assert not args.list
        assert not args.no_save

    def test_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--mode", "batch"])


class TestBenchList:
    def test_lists_suites_and_families(self, capsys):
        assert main(["bench", "--list"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output
        assert "stream-poisson" in output
        for family in ("star", "zipf", "tpch_mix", "oversubscribed"):
            assert family in output


class TestBenchRun:
    def test_smoke_run_writes_validated_document(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--suite",
                "smoke",
                "--instances",
                "1",
                "--budget-ms",
                "10",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        path = tmp_path / "BENCH_smoke.json"
        assert path.exists()
        from repro.bench.schema import load_bench_document

        document = load_bench_document(path)
        assert document["suite"] == "smoke"
        assert document["totals"]["failures"] == 0
        # every registered smoke scenario ran
        assert len(document["scenarios"]) == 11
        assert "suite=smoke" in capsys.readouterr().out

    def test_no_save_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        exit_code = main(
            ["bench", "--suite", "smoke", "--instances", "1", "--budget-ms", "10", "--no-save"]
        )
        assert exit_code == 0
        assert not (tmp_path / "benchmark_results").exists()

    def test_unknown_suite_is_a_clean_error(self, capsys):
        assert main(["bench", "--suite", "missing"]) == 2
        assert "unknown workload suite" in capsys.readouterr().err

    def test_failing_jobs_exit_nonzero(self, capsys):
        exit_code = main(
            [
                "bench",
                "--suite",
                "smoke",
                "--instances",
                "1",
                "--budget-ms",
                "10",
                "--solver",
                "NO-SUCH",
                "--no-save",
            ]
        )
        assert exit_code == 1
        assert "failed" in capsys.readouterr().err

    def test_emit_workload_round_trips_through_batch(self, tmp_path, capsys):
        workload = tmp_path / "suite.jsonl"
        assert main(["bench", "--suite", "smoke", "--emit-workload", str(workload)]) == 0
        lines = [json.loads(line) for line in workload.read_text().splitlines()]
        assert len(lines) == 22  # 11 scenarios x 2 instances
        capsys.readouterr()
        # The emitted JSONL is directly consumable by `repro-mqo batch`.
        assert main(["batch", str(workload), "--solver", "CLIMB"]) == 0
        results = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(results) == 22
        assert all(result["error"] is None for result in results)
        assert results[0]["metadata"]["scenario"] == "star-small"
