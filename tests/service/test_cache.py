"""Tests for the LRU result cache and its JSON persistence."""

import json

import pytest

from repro.exceptions import ServiceError
from repro.mqo.generator import generate_paper_testcase
from repro.service.cache import ResultCache
from repro.service.jobs import SolveRequest


def _entry(index: int) -> dict:
    return {"best_cost": float(index), "winner": "CLIMB"}


class TestCoreOperations:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", _entry(1))
        assert cache.get("k") == _entry(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_values_are_copied(self):
        cache = ResultCache()
        value = _entry(1)
        cache.put("k", value)
        value["best_cost"] = -1.0
        fetched = cache.get("k")
        assert fetched["best_cost"] == 1.0
        fetched["winner"] = "X"
        assert cache.get("k")["winner"] == "CLIMB"

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        assert cache.get("a") is not None  # refresh "a": "b" becomes LRU
        cache.put("c", _entry(3))
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_invalid_capacity_and_value(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=0)
        with pytest.raises(ServiceError):
            ResultCache().put("k", "not-a-dict")

    def test_clear(self):
        cache = ResultCache()
        cache.put("k", _entry(1))
        cache.clear()
        assert len(cache) == 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        cache.save()

        warmed = ResultCache(path=path)
        assert len(warmed) == 2
        assert warmed.get("a") == _entry(1)
        assert warmed.get("b") == _entry(2)

    def test_save_requires_some_path(self):
        with pytest.raises(ServiceError):
            ResultCache().save()
        with pytest.raises(ServiceError):
            ResultCache().load()

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ServiceError):
            ResultCache().load(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "entries": []}))
        with pytest.raises(ServiceError):
            ResultCache().load(path)

    def test_load_respects_capacity(self, tmp_path):
        path = tmp_path / "cache.json"
        big = ResultCache(path=path, capacity=8)
        for index in range(8):
            big.put(f"k{index}", _entry(index))
        big.save()
        small = ResultCache(capacity=3, path=path)
        assert len(small) == 3
        # The most recently written entries survive.
        assert "k7" in small and "k5" in small
        assert "k0" not in small


class _FakeClock:
    """Manually advanced timestamp source for TTL tests."""

    def __init__(self, now=0.0):
        self.now = now

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put("a", _entry(1))
        cache.save()
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cache.json"]

    def test_save_preserves_target_permissions(self, tmp_path):
        import os

        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put("a", _entry(1))
        cache.save()
        os.chmod(path, 0o664)  # e.g. group-shared cache file
        cache.put("b", _entry(2))
        cache.save()
        # The atomic temp-and-replace must not clamp the file to the
        # temp file's private 0600 mode.
        assert os.stat(path).st_mode & 0o777 == 0o664

    def test_crash_mid_save_keeps_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put("a", _entry(1))
        cache.save()

        cache.put("b", _entry(2))

        def exploding_replace(src, dst):
            raise OSError("disk went away mid-rename")

        monkeypatch.setattr("repro.service.cache.os.replace", exploding_replace)
        with pytest.raises(OSError):
            cache.save()
        monkeypatch.undo()

        # The previous store is intact and parseable, and the aborted
        # attempt left no temp file behind.
        survivor = ResultCache(path=path)
        assert len(survivor) == 1
        assert survivor.get("a") == _entry(1)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cache.json"]


class TestExpiry:
    def test_invalid_ttl_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(ttl_seconds=0)

    def test_entry_expires_into_a_miss(self):
        clock = _FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        cache.put("k", _entry(1))
        clock.advance(9.0)
        assert cache.get("k") == _entry(1)
        clock.advance(2.0)  # now 11 s after the put
        assert cache.get("k") is None
        assert cache.stats.expirations == 1
        assert "k" not in cache  # dropped, not just hidden

    def test_put_refreshes_age(self):
        clock = _FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        cache.put("k", _entry(1))
        clock.advance(8.0)
        cache.put("k", _entry(2))
        clock.advance(8.0)  # 16 s after first put, 8 s after refresh
        assert cache.get("k") == _entry(2)

    def test_contains_and_len_honour_ttl(self):
        clock = _FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        cache.put("old", _entry(1))
        clock.advance(6.0)
        cache.put("new", _entry(2))
        clock.advance(6.0)  # "old" expired, "new" still live; no get() ran
        assert "old" not in cache
        assert "new" in cache
        assert len(cache) == 1

    def test_purge_expired(self):
        clock = _FakeClock()
        cache = ResultCache(ttl_seconds=5.0, clock=clock)
        cache.put("old", _entry(1))
        clock.advance(6.0)
        cache.put("new", _entry(2))
        assert cache.purge_expired() == 1
        assert "old" not in cache and "new" in cache

    def test_ttl_survives_persistence(self, tmp_path):
        path = tmp_path / "cache.json"
        clock = _FakeClock()
        writer = ResultCache(path=path, ttl_seconds=10.0, clock=clock)
        writer.put("early", _entry(1))
        clock.advance(8.0)
        writer.put("late", _entry(2))
        writer.save()

        clock.advance(4.0)  # "early" is now 12 s old, "late" 4 s
        warmed = ResultCache(ttl_seconds=10.0, clock=clock)
        assert warmed.load(path) == 1
        assert warmed.get("early") is None
        assert warmed.get("late") == _entry(2)
        assert warmed.stats.expirations == 1

    def test_legacy_file_without_timestamps_loads_fresh(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "entries": [{"key": "a", "value": _entry(1)}],
                }
            )
        )
        cache = ResultCache(ttl_seconds=10.0)
        assert cache.load(path) == 1
        assert cache.get("a") == _entry(1)


class TestCacheKeys:
    def test_key_ignores_plan_enumeration_order(self):
        problem = generate_paper_testcase(5, 2, seed=3)
        same = generate_paper_testcase(5, 2, seed=3)
        k1 = SolveRequest(problem=problem, seed=1).cache_key()
        k2 = SolveRequest(problem=same, seed=1).cache_key()
        assert k1 == k2

    def test_key_depends_on_solver_budget_and_seed(self):
        problem = generate_paper_testcase(5, 2, seed=3)
        base = SolveRequest(problem=problem, seed=1).cache_key()
        assert SolveRequest(problem=problem, seed=2).cache_key() != base
        assert (
            SolveRequest(problem=problem, seed=1, solver="CLIMB").cache_key() != base
        )
        assert (
            SolveRequest(problem=problem, seed=1, time_budget_ms=9.0).cache_key()
            != base
        )
