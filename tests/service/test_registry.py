"""Tests for the solver registry."""

import pytest

from repro.baselines.hillclimb import IteratedHillClimbing
from repro.exceptions import DuplicateSolverError, ServiceError, UnknownSolverError
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.problem import MQOProblem
from repro.service.registry import (
    SolverCapabilities,
    SolverRegistry,
    default_registry,
    register_default_solvers,
)


@pytest.fixture()
def registry():
    reg = SolverRegistry()
    reg.register("CLIMB", IteratedHillClimbing)
    return reg


class TestRegistration:
    def test_register_and_lookup(self, registry):
        spec = registry.get("CLIMB")
        assert spec.name == "CLIMB"
        solver = registry.create("CLIMB")
        assert isinstance(solver, IteratedHillClimbing)

    def test_create_returns_fresh_instances(self, registry):
        assert registry.create("CLIMB") is not registry.create("CLIMB")

    def test_duplicate_registration_raises(self, registry):
        with pytest.raises(DuplicateSolverError):
            registry.register("CLIMB", IteratedHillClimbing)

    def test_duplicate_with_replace_overrides(self, registry):
        marker = IteratedHillClimbing(max_restarts=3)
        registry.register("CLIMB", lambda: marker, replace=True)
        assert registry.create("CLIMB") is marker

    def test_unknown_lookup_raises(self, registry):
        with pytest.raises(UnknownSolverError):
            registry.get("NOPE")
        with pytest.raises(UnknownSolverError):
            registry.create("NOPE")

    def test_unregister(self, registry):
        registry.unregister("CLIMB")
        assert "CLIMB" not in registry
        with pytest.raises(UnknownSolverError):
            registry.unregister("CLIMB")

    def test_bad_name_rejected(self, registry):
        with pytest.raises(ServiceError):
            registry.register("", IteratedHillClimbing)

    def test_factory_without_solve_rejected_at_create(self, registry):
        registry.register("BROKEN", lambda: object())
        with pytest.raises(ServiceError):
            registry.create("BROKEN")

    def test_registration_order_preserved(self, registry):
        registry.register("Z", IteratedHillClimbing)
        registry.register("A", IteratedHillClimbing)
        assert registry.names() == ["CLIMB", "Z", "A"]


class TestCapabilities:
    def test_supports_respects_max_plans(self):
        small_only = SolverCapabilities(max_plans=3)
        problem = MQOProblem(plans_per_query=[[1.0, 2.0], [3.0, 4.0]])
        assert not small_only.supports(problem)
        assert SolverCapabilities(max_plans=4).supports(problem)
        assert SolverCapabilities().supports(problem)

    def test_supporting_filters_registry(self):
        registry = SolverRegistry()
        registry.register("BIG", IteratedHillClimbing)
        registry.register(
            "TINY", IteratedHillClimbing, SolverCapabilities(max_plans=2)
        )
        problem = MQOProblem(plans_per_query=[[1.0, 2.0], [3.0, 4.0]])
        assert registry.supporting(problem) == ["BIG"]


class TestDefaultRegistry:
    def test_paper_lineup_registered(self):
        registry = default_registry()
        for name in (
            "QA",
            "LIN-MQO",
            "LIN-QUB",
            "CLIMB",
            "GA(50)",
            "GA(200)",
            "GREEDY",
            "decomposed_qa",
        ):
            assert name in registry

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()

    def test_qa_capabilities_bounded(self):
        spec = default_registry().get("QA")
        assert spec.capabilities.max_plans == 1152
        assert "quantum" in spec.capabilities.tags
        exact = default_registry().get("LIN-MQO")
        assert exact.capabilities.exact

    def test_register_default_solvers_into_fresh_registry(self):
        registry = register_default_solvers(SolverRegistry())
        assert len(registry) == 8

    def test_decomposed_solver_routes_only_oversized_instances(self):
        spec = default_registry().get("decomposed_qa")
        qa_cap = default_registry().get("QA").capabilities.max_plans
        assert spec.capabilities.min_plans == qa_cap + 1
        small = generate_paper_testcase(4, 2, seed=1)
        assert not spec.capabilities.supports(small)
        assert "decomposition" in spec.capabilities.tags
