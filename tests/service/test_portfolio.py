"""Tests for the portfolio scheduler."""

import pytest

from repro.exceptions import ServiceError, UnknownSolverError
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.problem import MQOProblem
from repro.service.portfolio import (
    MERGED_TRAJECTORY_NAME,
    PortfolioScheduler,
    _member_seed,
)
from repro.service.registry import SolverCapabilities, SolverRegistry, default_registry


@pytest.fixture()
def problem() -> MQOProblem:
    return generate_paper_testcase(6, 2, seed=11)


@pytest.fixture()
def scheduler() -> PortfolioScheduler:
    return PortfolioScheduler(solvers=("LIN-MQO", "CLIMB", "GA(50)"))


class TestLineup:
    def test_default_lineup_is_capability_filtered(self, problem):
        registry = SolverRegistry()
        registry.register("ANY", lambda: None)
        registry.register("TINY", lambda: None, SolverCapabilities(max_plans=1))
        raced, skipped = PortfolioScheduler(registry=registry).lineup(problem)
        assert raced == ["ANY"]
        assert skipped == ("TINY",)

    def test_unknown_member_raises(self, problem):
        with pytest.raises(UnknownSolverError):
            PortfolioScheduler(solvers=("NOPE",)).lineup(problem)

    def test_all_members_skipped_raises(self, problem):
        registry = SolverRegistry()
        registry.register("TINY", lambda: None, SolverCapabilities(max_plans=1))
        with pytest.raises(ServiceError):
            PortfolioScheduler(registry=registry).lineup(problem)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError):
            PortfolioScheduler(mode="fork-bomb")


class TestRacing:
    def test_winner_is_deterministic_under_fixed_seed(self, problem, scheduler):
        first = scheduler.solve(problem, time_budget_ms=200.0, seed=5)
        second = scheduler.solve(problem, time_budget_ms=200.0, seed=5)
        assert first.winner == second.winner
        assert first.best_cost == second.best_cost
        assert sorted(first.best_solution.selected_plans) == sorted(
            second.best_solution.selected_plans
        )

    def test_exact_member_wins_on_tiny_instance(self, problem, scheduler):
        # LIN-MQO proves optimality well inside the budget, so no member
        # can beat it and the deterministic tie-break keeps it in front.
        result = scheduler.solve(problem, time_budget_ms=300.0, seed=0)
        assert result.winner == "LIN-MQO"
        assert result.merged_trajectory.proved_optimal
        assert result.errors == {}

    def test_result_carries_every_member_trajectory(self, problem, scheduler):
        result = scheduler.solve(problem, time_budget_ms=150.0, seed=1)
        assert sorted(result.trajectories) == ["CLIMB", "GA(50)", "LIN-MQO"]
        for trajectory in result.trajectories.values():
            assert trajectory.best_solution is not None
            assert trajectory.best_solution.is_valid

    def test_merged_trajectory_is_monotone_envelope(self, problem, scheduler):
        result = scheduler.solve(problem, time_budget_ms=150.0, seed=2)
        merged = result.merged_trajectory
        assert merged.solver_name == MERGED_TRAJECTORY_NAME
        costs = [cost for _, cost in merged.points]
        assert costs == sorted(costs, reverse=True)
        assert merged.best_cost == result.best_cost
        assert merged.best_cost <= min(
            t.best_cost for t in result.trajectories.values()
        )
        times = [t for t, _ in merged.points]
        assert times == sorted(times)

    def test_split_mode_matches_thread_mode_quality(self, problem):
        split = PortfolioScheduler(solvers=("LIN-MQO", "CLIMB"), mode="split")
        result = split.solve(problem, time_budget_ms=300.0, seed=5)
        assert result.winner == "LIN-MQO"
        assert result.merged_trajectory.proved_optimal

    def test_merge_shifts_members_by_start_offset(self):
        # In split mode the second member starts after the first's slice;
        # its solver-local times must be shifted onto the wall-clock axis.
        from repro.baselines.anytime import SolverTrajectory
        from repro.mqo.problem import MQOProblem as Problem

        tiny = Problem([[1.0, 2.0]])
        better = tiny.solution_from_choices([0])  # cost 1.0
        worse = tiny.solution_from_choices([1])  # cost 2.0
        first = SolverTrajectory("A", points=[(5.0, worse.cost)], best_solution=worse)
        second = SolverTrajectory("B", points=[(5.0, better.cost)], best_solution=better)
        merged = PortfolioScheduler._merge(
            ["A", "B"],
            {"A": first, "B": second},
            winner="B",
            start_offsets={"A": 0.0, "B": 100.0},
        )
        assert merged.points == [(5.0, worse.cost), (105.0, better.cost)]

    @pytest.mark.parametrize("error", [ServiceError("kaboom"), ValueError("kaboom")])
    def test_member_failure_is_tolerated(self, problem, error):
        registry = SolverRegistry()

        class Exploding:
            name = "BOOM"

            def solve(self, problem, time_budget_ms, seed=None):
                raise error

        registry.register("BOOM", Exploding)
        registry.register("CLIMB", default_registry().get("CLIMB").factory)
        scheduler = PortfolioScheduler(registry=registry)
        result = scheduler.solve(problem, time_budget_ms=100.0, seed=0)
        assert result.winner == "CLIMB"
        assert "BOOM" in result.errors
        assert "kaboom" in result.errors["BOOM"]

    def test_non_positive_budget_rejected(self, problem, scheduler):
        with pytest.raises(ServiceError):
            scheduler.solve(problem, time_budget_ms=0.0)

    def test_per_call_lineup_override(self, problem, scheduler):
        result = scheduler.solve(
            problem, time_budget_ms=100.0, seed=0, solvers=("CLIMB",)
        )
        assert list(result.trajectories) == ["CLIMB"]
        assert result.winner == "CLIMB"


class TestMemberSeeds:
    def test_member_seeds_are_stable_and_distinct(self):
        seeds = [_member_seed(42, i) for i in range(4)]
        assert seeds == [_member_seed(42, i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds != [_member_seed(43, i) for i in range(4)]
