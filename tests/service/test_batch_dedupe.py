"""Tests for in-batch deduplication of identical solve requests."""

from repro.mqo.generator import generate_paper_testcase
from repro.service.batch import BatchExecutor
from repro.service.jobs import SolveRequest


def _request(problem, job_id, seed=3, solver="CLIMB", budget=80.0, metadata=None):
    return SolveRequest(
        problem=problem,
        solver=solver,
        time_budget_ms=budget,
        seed=seed,
        job_id=job_id,
        metadata=metadata or {},
    )


class TestBatchDedupe:
    def test_identical_jobs_solved_once(self):
        problem = generate_paper_testcase(4, 2, seed=1)
        requests = [
            _request(problem, "first", metadata={"k": 1}),
            _request(problem, "twin", metadata={"k": 2}),
            _request(problem, "third"),
        ]
        results = BatchExecutor(workers=0).run(requests)
        assert all(result.ok for result in results)
        assert [result.job_id for result in results] == ["first", "twin", "third"]
        # The representative actually solved; the twins are echoes.
        assert results[0].from_cache is False
        assert results[1].from_cache is True
        assert results[2].from_cache is True
        assert results[1].best_cost == results[0].best_cost
        assert results[1].selected_plans == results[0].selected_plans
        # Identity fields echo each request, not the representative.
        assert results[1].metadata == {"k": 2}
        assert results[1].total_time_ms == 0.0

    def test_different_seeds_not_deduplicated(self):
        problem = generate_paper_testcase(4, 2, seed=1)
        requests = [
            _request(problem, "a", seed=1),
            _request(problem, "b", seed=2),
        ]
        results = BatchExecutor(workers=0).run(requests)
        assert all(result.from_cache is False for result in results)

    def test_dedupe_disabled(self):
        problem = generate_paper_testcase(4, 2, seed=1)
        requests = [_request(problem, "a"), _request(problem, "b")]
        results = BatchExecutor(workers=0, dedupe=False).run(requests)
        assert all(result.from_cache is False for result in results)

    def test_deduped_equals_solo_result(self):
        """An echoed twin must carry exactly the representative's answer."""
        problem = generate_paper_testcase(5, 2, seed=2)
        solo = BatchExecutor(workers=0).run([_request(problem, "solo")])[0]
        paired = BatchExecutor(workers=0).run(
            [_request(problem, "rep"), _request(problem, "twin")]
        )
        assert paired[1].best_cost == solo.best_cost
        assert paired[1].selected_plans == solo.selected_plans

    def test_derived_seeds_keep_jobs_distinct(self):
        """Without explicit seeds, per-position derivation prevents dedupe."""
        problem = generate_paper_testcase(4, 2, seed=1)
        requests = [
            SolveRequest(problem=problem, solver="CLIMB", time_budget_ms=50.0, job_id=j)
            for j in ("x", "y")
        ]
        results = BatchExecutor(workers=0).run(requests, base_seed=9)
        assert results[0].seed != results[1].seed
        assert all(result.from_cache is False for result in results)
