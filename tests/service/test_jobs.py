"""Tests for the request/response model and JSONL workload specs."""

import math

import pytest

from repro.baselines.anytime import SolverTrajectory
from repro.exceptions import ServiceError
from repro.mqo.generator import generate_paper_testcase
from repro.service.jobs import (
    PORTFOLIO_SOLVER,
    SolveRequest,
    SolveResult,
    request_from_spec,
)
from repro.mqo.serialization import problem_to_dict


@pytest.fixture()
def problem():
    return generate_paper_testcase(5, 2, seed=3)


class TestSolveRequest:
    def test_dict_roundtrip(self, problem):
        request = SolveRequest(
            problem=problem,
            solver="CLIMB",
            time_budget_ms=250.0,
            seed=7,
            job_id="j1",
            solvers=("CLIMB", "LIN-MQO"),
            metadata={"tenant": "t1"},
        )
        rebuilt = SolveRequest.from_dict(request.to_dict())
        assert rebuilt.solver == "CLIMB"
        assert rebuilt.time_budget_ms == 250.0
        assert rebuilt.seed == 7
        assert rebuilt.job_id == "j1"
        assert rebuilt.solvers == ("CLIMB", "LIN-MQO")
        assert rebuilt.metadata == {"tenant": "t1"}
        assert rebuilt.problem.canonical_hash() == problem.canonical_hash()
        assert rebuilt.cache_key() == request.cache_key()

    def test_missing_problem_raises(self):
        with pytest.raises(ServiceError):
            SolveRequest.from_dict({"solver": "CLIMB"})

    def test_non_positive_budget_rejected(self, problem):
        with pytest.raises(ServiceError):
            SolveRequest(problem=problem, time_budget_ms=0.0)


class TestSolveResult:
    def test_from_trajectory(self, problem):
        request = SolveRequest(problem=problem, solver="CLIMB", seed=1, job_id="x")
        solution = problem.solution_from_choices([0] * problem.num_queries)
        trajectory = SolverTrajectory(
            solver_name="CLIMB",
            points=[(1.0, 12.0), (2.0, solution.cost)],
            best_solution=solution,
            proved_optimal=False,
            total_time_ms=3.0,
        )
        result = SolveResult.from_trajectory(request, trajectory)
        assert result.ok
        assert result.winner == "CLIMB"
        assert result.best_cost == solution.cost
        assert result.selected_plans == sorted(solution.selected_plans)
        assert result.trajectory == [(1.0, 12.0), (2.0, solution.cost)]
        assert result.cache_key == request.cache_key()

    def test_from_error(self, problem):
        request = SolveRequest(problem=problem, job_id="bad")
        result = SolveResult.from_error(request, "boom")
        assert not result.ok
        assert result.error == "boom"
        assert result.job_id == "bad"
        assert math.isinf(result.best_cost)

    def test_dict_roundtrip(self, problem):
        request = SolveRequest(problem=problem, solver="CLIMB", seed=1)
        solution = problem.solution_from_choices([0] * problem.num_queries)
        trajectory = SolverTrajectory(
            solver_name="CLIMB", points=[(2.0, solution.cost)], best_solution=solution
        )
        original = SolveResult.from_trajectory(request, trajectory)
        rebuilt = SolveResult.from_dict(original.to_dict())
        assert rebuilt == original


class TestRequestFromSpec:
    def test_generator_spec(self):
        request = request_from_spec(
            {"queries": 4, "plans": 2, "seed": 5}, job_id="g0"
        )
        assert request.problem.num_queries == 4
        assert request.problem.num_plans == 8
        assert request.seed == 5
        assert request.solver == PORTFOLIO_SOLVER
        assert request.job_id == "g0"

    def test_generator_seed_can_differ_from_solve_seed(self):
        request = request_from_spec(
            {"queries": 4, "plans": 2, "generator_seed": 5, "seed": 9}
        )
        twin = request_from_spec({"queries": 4, "plans": 2, "generator_seed": 5})
        assert request.seed == 9
        assert request.problem.canonical_hash() == twin.problem.canonical_hash()

    def test_bare_problem_spec(self, problem):
        spec = problem_to_dict(problem)
        spec["solver"] = "CLIMB"
        spec["budget_ms"] = 50.0
        request = request_from_spec(spec)
        assert request.solver == "CLIMB"
        assert request.time_budget_ms == 50.0
        assert request.problem.canonical_hash() == problem.canonical_hash()

    def test_full_request_spec(self, problem):
        request = SolveRequest(problem=problem, solver="CLIMB", seed=2)
        rebuilt = request_from_spec(request.to_dict())
        assert rebuilt.solver == "CLIMB"
        assert rebuilt.seed == 2

    def test_defaults_applied(self, problem):
        request = request_from_spec(
            problem_to_dict(problem), default_solver="CLIMB", default_budget_ms=77.0
        )
        assert request.solver == "CLIMB"
        assert request.time_budget_ms == 77.0

    def test_bad_specs_rejected(self):
        with pytest.raises(ServiceError):
            request_from_spec({"nonsense": 1})
        with pytest.raises(ServiceError):
            request_from_spec([1, 2, 3])
