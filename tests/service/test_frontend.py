"""Tests for the ServiceFrontend facade and its experiment-runner hookup."""

import pytest

from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.chimera.topology import ChimeraGraph
from repro.experiments.profiles import ExperimentProfile
from repro.experiments.runner import QA_SOLVER_NAME, ExperimentRunner
from repro.mqo.generator import generate_paper_testcase
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest


@pytest.fixture()
def problem():
    return generate_paper_testcase(5, 2, seed=2)


@pytest.fixture()
def frontend():
    return ServiceFrontend(
        cache=ResultCache(), portfolio_solvers=("LIN-MQO", "CLIMB")
    )


class TestSolve:
    def test_portfolio_solve(self, frontend, problem):
        result = frontend.solve(problem, time_budget_ms=150.0, seed=0)
        assert result.ok
        assert result.winner in ("LIN-MQO", "CLIMB")
        assert result.is_valid

    def test_named_solver_solve(self, frontend, problem):
        result = frontend.solve(problem, solver="CLIMB", time_budget_ms=80.0, seed=0)
        assert result.winner == "CLIMB"

    def test_cache_round_trip(self, frontend, problem):
        cold = frontend.solve(problem, time_budget_ms=100.0, seed=3)
        warm = frontend.solve(problem, time_budget_ms=100.0, seed=3)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.best_cost == cold.best_cost
        assert warm.selected_plans == cold.selected_plans

    def test_race_bypasses_cache(self, frontend, problem):
        frontend.solve(problem, time_budget_ms=100.0, seed=3)
        race = frontend.race(problem, time_budget_ms=100.0, seed=3)
        assert sorted(race.trajectories) == ["CLIMB", "LIN-MQO"]

    def test_solve_batch(self, frontend):
        requests = [
            SolveRequest(
                problem=generate_paper_testcase(4, 2, seed=index),
                solver="CLIMB",
                time_budget_ms=60.0,
            )
            for index in range(3)
        ]
        results = frontend.solve_batch(requests, base_seed=5)
        assert [r.job_id for r in results] == ["job-0", "job-1", "job-2"]
        assert all(r.ok for r in results)

    def test_solve_batch_honours_default_lineup(self, frontend, problem):
        (result,) = frontend.solve_batch(
            [SolveRequest(problem=problem, time_budget_ms=100.0, seed=3)]
        )
        # The frontend was built with portfolio_solvers=(LIN-MQO, CLIMB),
        # so the batch must race only those members...
        assert result.winner in ("LIN-MQO", "CLIMB")
        # ...and share cache entries with solve() for the same work.
        via_solve = frontend.solve(problem, time_budget_ms=100.0, seed=3)
        assert via_solve.from_cache
        assert via_solve.cache_key == result.cache_key


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def mini_profile(self):
        return ExperimentProfile(
            name="mini-service",
            query_scale=0.25,
            num_instances=1,
            classical_budget_ms=150.0,
            checkpoints_ms=(1.0, 10.0, 150.0),
            num_reads=30,
            num_gauges=3,
            sa_sweeps=40,
            chimera_rows=4,
            chimera_cols=4,
            include_slow_solvers=False,
        )

    def test_runner_sweep_through_portfolio(self, mini_profile):
        runner = ExperimentRunner(
            profile=mini_profile,
            topology=ChimeraGraph(4, 4),
            solvers=[IntegerProgrammingMQOSolver(), IteratedHillClimbing()],
            frontend=ServiceFrontend(),
            seed=7,
        )
        test_class = runner.test_classes((2,))[0]
        (result,) = runner.run_class(test_class)
        assert sorted(result.trajectories) == ["CLIMB", "LIN-MQO", QA_SOLVER_NAME]
        for name, trajectory in result.trajectories.items():
            assert trajectory.best_solution is not None, name
            assert trajectory.best_solution.is_valid
        assert result.best_known_cost <= result.quantum_trajectory().best_cost
