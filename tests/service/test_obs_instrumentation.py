"""Service/pipeline counters on the process-global metrics registry.

The registry is process-global and cumulative, so every assertion works
on *deltas* around the exercised operation.
"""

from repro.mqo.generator import generate_paper_testcase
from repro.obs.metrics import get_registry
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest


def _counter(name, **labels):
    return get_registry().counter(name, labels=labels or None)


def _request(seed=0, solver="CLIMB"):
    return SolveRequest(
        problem=generate_paper_testcase(4, 2, seed=seed),
        solver=solver,
        time_budget_ms=100.0,
        seed=1,
    )


class TestResultCacheCounters:
    def test_hit_and_miss_counters_track_the_frontend_cache(self):
        hits = _counter("repro_service_result_cache_hits_total")
        misses = _counter("repro_service_result_cache_misses_total")
        frontend = ServiceFrontend(cache=ResultCache())
        before = (hits.value, misses.value)
        frontend.submit(_request())
        frontend.submit(_request())  # identical → served from the cache
        assert hits.value == before[0] + 1
        assert misses.value == before[1] + 1


class TestWinnerAttribution:
    def test_wins_are_labelled_by_solver(self):
        wins = _counter("repro_service_wins_total", solver="CLIMB")
        before = wins.value
        ServiceFrontend().submit(_request(seed=7))
        assert wins.value == before + 1


class TestImprovementCounter:
    def test_trajectory_improvements_are_counted(self):
        improvements = _counter("repro_solver_improvements_total")
        before = improvements.value
        ServiceFrontend().submit(_request(seed=3))
        # CLIMB records at least its first solution as an improvement.
        assert improvements.value > before


class TestAnnealCounters:
    def test_reads_and_gauge_batches_accumulate(self):
        from repro.core.pipeline import QuantumMQO

        reads = _counter("repro_anneal_reads_total")
        gauges = _counter("repro_anneal_gauge_batches_total")
        before = (reads.value, gauges.value)
        QuantumMQO(seed=0).solve(generate_paper_testcase(4, 2, seed=0), num_reads=40)
        assert reads.value == before[0] + 40
        assert gauges.value > before[1]
