"""Tests for the QA adapter's prepared-pipeline cache and prepare hook."""

import pytest

from repro.mqo.generator import generate_paper_testcase
from repro.service.qa_adapter import QuantumAnnealingSolver


@pytest.fixture(autouse=True)
def _clean_cache():
    QuantumAnnealingSolver.prepared_cache.clear()
    yield
    QuantumAnnealingSolver.prepared_cache.clear()


class TestPreparedCache:
    def test_prepare_is_cached_across_instances(self):
        problem = generate_paper_testcase(4, 2, seed=1)
        first = QuantumAnnealingSolver().prepare(problem)
        second = QuantumAnnealingSolver().prepare(problem)
        assert second is first
        stats = QuantumAnnealingSolver.prepared_cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_distinct_problems_prepare_separately(self):
        a = generate_paper_testcase(4, 2, seed=1)
        b = generate_paper_testcase(4, 2, seed=2)
        solver = QuantumAnnealingSolver()
        assert solver.prepare(a) is not solver.prepare(b)

    def test_reuse_disabled_recompiles(self):
        problem = generate_paper_testcase(3, 2, seed=0)
        solver = QuantumAnnealingSolver(reuse_prepared=False)
        first = solver.prepare(problem)
        second = solver.prepare(problem)
        assert first is not second
        assert len(QuantumAnnealingSolver.prepared_cache) == 0

    def test_solve_results_identical_warm_and_cold(self):
        """A cache hit must not change the solver's output for equal seeds."""
        problem = generate_paper_testcase(4, 2, seed=3)
        cold = QuantumAnnealingSolver().solve(problem, time_budget_ms=50.0, seed=11)
        warm = QuantumAnnealingSolver().solve(problem, time_budget_ms=50.0, seed=11)
        assert warm.points == cold.points
        assert warm.best_cost == cold.best_cost
        assert (
            warm.best_solution.selected_plans == cold.best_solution.selected_plans
        )

    def test_solve_valid_solution(self):
        problem = generate_paper_testcase(5, 2, seed=7)
        trajectory = QuantumAnnealingSolver().solve(problem, time_budget_ms=60.0, seed=0)
        assert trajectory.best_solution is not None
        assert trajectory.best_solution.is_valid


class TestPortfolioPrepareHook:
    def test_portfolio_race_warms_the_cache(self):
        from repro.service.portfolio import PortfolioScheduler

        problem = generate_paper_testcase(4, 2, seed=5)
        scheduler = PortfolioScheduler(mode="split")
        outcome = scheduler.solve(
            problem, time_budget_ms=200.0, seed=1, solvers=["QA", "CLIMB"]
        )
        assert outcome.winner
        assert len(QuantumAnnealingSolver.prepared_cache) == 1

    def test_repeated_races_hit_the_cache(self):
        from repro.service.portfolio import PortfolioScheduler

        problem = generate_paper_testcase(4, 2, seed=5)
        scheduler = PortfolioScheduler(mode="split")
        for _ in range(3):
            scheduler.solve(problem, time_budget_ms=100.0, seed=1, solvers=["QA"])
        stats = QuantumAnnealingSolver.prepared_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 2
