"""Tests of the service-layer fused executor and frontend entry point.

``execute_fused_requests`` must be indistinguishable from sequential
:func:`execute_request` calls, result for result: same seeds produce the
same trajectories, best costs and selected plans (wall-clock timing
aside), non-annealing requests transparently fall back to the solo
path, and failures stay per-request.  ``ServiceFrontend.submit_fused``
adds the cache semantics of :meth:`submit` on top.
"""

import pytest

from repro.mqo.generator import generate_paper_testcase
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.fusion import execute_fused_requests
from repro.service.jobs import SolveRequest


def _qa_request(seed, budget_ms=120.0, queries=4):
    return SolveRequest(
        problem=generate_paper_testcase(queries, 2, seed=seed),
        solver="QA",
        time_budget_ms=budget_ms,
        seed=seed,
    )


class TestExecuteFusedRequests:
    def test_bit_identical_to_sequential_submits(self):
        requests = [_qa_request(seed) for seed in range(4)]
        fused = execute_fused_requests(requests)
        solo_frontend = ServiceFrontend()
        for request, result in zip(requests, fused):
            solo = solo_frontend.submit(request)
            assert result.ok and solo.ok
            assert result.winner == solo.winner == "QA"
            assert result.best_cost == solo.best_cost
            assert result.selected_plans == solo.selected_plans
            assert result.trajectory == solo.trajectory

    def test_mixed_window_falls_back_for_classical_solvers(self):
        """Non-annealing requests run solo; order is preserved."""
        solo_seen = []

        def spy_solo(request):
            solo_seen.append(request.solver)
            from repro.service.batch import execute_request

            return execute_request(request)

        requests = [
            _qa_request(0),
            SolveRequest(
                problem=generate_paper_testcase(4, 2, seed=1),
                solver="GREEDY",
                time_budget_ms=60.0,
                seed=1,
            ),
            _qa_request(2),
        ]
        results = execute_fused_requests(requests, solo=spy_solo)
        assert solo_seen == ["GREEDY"]
        assert [r.winner for r in results] == ["QA", "GREEDY", "QA"]
        assert all(r.ok for r in results)

    def test_unknown_solver_fails_that_request_only(self):
        requests = [
            _qa_request(0),
            SolveRequest(
                problem=generate_paper_testcase(4, 2, seed=1),
                solver="NOPE",
                time_budget_ms=60.0,
            ),
        ]
        results = execute_fused_requests(requests)
        assert results[0].ok
        assert not results[1].ok
        assert results[1].error

    def test_single_request_window(self):
        """A degenerate one-job window still round-trips."""
        request = _qa_request(7)
        (result,) = execute_fused_requests([request])
        solo = ServiceFrontend().submit(request)
        assert result.ok
        assert result.best_cost == solo.best_cost
        assert result.trajectory == solo.trajectory


class TestSubmitFused:
    def test_cache_hits_served_per_request(self):
        frontend = ServiceFrontend(cache=ResultCache())
        requests = [_qa_request(seed) for seed in range(3)]
        cold = frontend.submit_fused(requests)
        warm = frontend.submit_fused(requests)
        assert all(not r.from_cache for r in cold)
        assert all(r.from_cache for r in warm)
        for before, after in zip(cold, warm):
            assert after.best_cost == before.best_cost
            assert after.selected_plans == before.selected_plans
            assert after.total_time_ms == 0.0

    def test_fused_results_populate_the_submit_cache(self):
        """A fused miss warms the same cache key submit() reads."""
        frontend = ServiceFrontend(cache=ResultCache())
        request = _qa_request(5)
        (fused,) = frontend.submit_fused([request])
        solo = frontend.submit(request)
        assert solo.from_cache
        assert solo.best_cost == fused.best_cost

    def test_results_in_request_order(self):
        frontend = ServiceFrontend()
        requests = [_qa_request(seed, queries=3 + (seed % 3)) for seed in range(5)]
        results = frontend.submit_fused(requests)
        assert len(results) == len(requests)
        references = [ServiceFrontend().submit(request) for request in requests]
        for result, reference in zip(results, references):
            assert result.best_cost == reference.best_cost
