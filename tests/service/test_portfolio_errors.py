"""Portfolio racing must survive members that raise mid-race.

A portfolio's whole point is robustness: one crashing solver must not
take the race down.  These tests register scripted solvers — one that
records an improvement and then explodes, plus deterministic recorders
of different final quality — and assert the scheduler still returns the
best *surviving* member's result in both racing modes, reports the
failure in ``errors``, and that the service frontend keeps working on
top of such a line-up.
"""

from itertools import product

import pytest

from repro.baselines.anytime import AnytimeSolver, TrajectoryRecorder
from repro.exceptions import SolverError
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.service.batch import execute_request
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest
from repro.service.portfolio import PortfolioScheduler
from repro.service.registry import SolverRegistry


def _problem() -> MQOProblem:
    """The paper's worked example (optimum: plans {1, 2}, cost 2)."""
    return MQOProblem(
        plans_per_query=[[2.0, 4.0], [3.0, 1.0]],
        savings={(1, 2): 5.0},
        name="portfolio-errors",
    )


def _solutions_worst_to_best(problem: MQOProblem):
    """Every valid selection, ordered by strictly decreasing cost."""
    combos = product(*[query.plan_indices for query in problem.queries])
    solutions = [
        MQOSolution(problem=problem, selected_plans=frozenset(combo)) for combo in combos
    ]
    solutions.sort(key=lambda solution: -solution.cost)
    unique = []
    for solution in solutions:
        if not unique or solution.cost < unique[-1].cost - 1e-12:
            unique.append(solution)
    return unique


class ExplodingSolver(AnytimeSolver):
    """Records one improvement, then raises mid-race."""

    name = "BOOM"

    def solve(self, problem, time_budget_ms, seed=None):
        """Fail after doing some work (the partial work must be discarded)."""
        recorder = TrajectoryRecorder(self.name)
        recorder.record(_solutions_worst_to_best(problem)[0])
        raise SolverError("BOOM lost its marbles mid-race")


class RecordingSolver(AnytimeSolver):
    """Deterministically walks the solution ranking up to a cutoff."""

    name = "GOOD"

    def __init__(self, name="GOOD", skip_last=0):
        self.name = name
        self.skip_last = skip_last

    def solve(self, problem, time_budget_ms, seed=None):
        """Record the ranking (optionally stopping short of the optimum)."""
        recorder = TrajectoryRecorder(self.name)
        ranking = _solutions_worst_to_best(problem)
        if self.skip_last:
            ranking = ranking[: -self.skip_last]
        for solution in ranking:
            recorder.record(solution)
        return recorder.finish()


@pytest.fixture()
def registry() -> SolverRegistry:
    """MEDIOCRE (registered first), BOOM (raises), GOOD (reaches optimum)."""
    reg = SolverRegistry()
    reg.register("MEDIOCRE", lambda: RecordingSolver(name="MEDIOCRE", skip_last=1))
    reg.register("BOOM", ExplodingSolver)
    reg.register("GOOD", lambda: RecordingSolver(name="GOOD"))
    return reg


@pytest.mark.parametrize("mode", ["threads", "split"])
class TestRaceSurvivesFailures:
    def test_best_surviving_member_wins(self, registry, mode):
        scheduler = PortfolioScheduler(registry=registry, mode=mode)
        outcome = scheduler.solve(_problem(), time_budget_ms=200.0, seed=1)
        assert outcome.winner == "GOOD"
        assert outcome.best_cost == pytest.approx(2.0)
        assert outcome.best_solution is not None
        assert outcome.best_solution.is_valid

    def test_failure_is_reported_not_raised(self, registry, mode):
        scheduler = PortfolioScheduler(registry=registry, mode=mode)
        outcome = scheduler.solve(_problem(), time_budget_ms=200.0, seed=1)
        assert set(outcome.errors) == {"BOOM"}
        assert "SolverError" in outcome.errors["BOOM"]
        # The exploding member contributes nothing: only survivors appear.
        assert set(outcome.trajectories) == {"MEDIOCRE", "GOOD"}
        assert outcome.merged_trajectory.points

    def test_all_members_failing_yields_no_winner(self, mode):
        reg = SolverRegistry()
        reg.register("BOOM-A", ExplodingSolver)
        reg.register("BOOM-B", ExplodingSolver)
        scheduler = PortfolioScheduler(registry=reg, mode=mode)
        outcome = scheduler.solve(_problem(), time_budget_ms=100.0, seed=1)
        assert outcome.winner == ""
        assert set(outcome.errors) == {"BOOM-A", "BOOM-B"}
        assert outcome.best_solution is None


class TestFrontendWithFailingMember:
    def test_race_returns_surviving_winner(self, registry):
        frontend = ServiceFrontend(registry=registry)
        outcome = frontend.race(_problem(), time_budget_ms=200.0, seed=1)
        assert outcome.winner == "GOOD"
        assert "BOOM" in outcome.errors

    def test_solve_produces_ok_result(self, registry):
        frontend = ServiceFrontend(registry=registry)
        result = frontend.solve(_problem(), time_budget_ms=200.0, seed=1)
        assert result.ok
        assert result.error is None
        assert result.winner == "GOOD"
        assert result.best_cost == pytest.approx(2.0)

    def test_total_failure_becomes_error_result(self):
        reg = SolverRegistry()
        reg.register("BOOM", ExplodingSolver)
        request = SolveRequest(problem=_problem(), time_budget_ms=100.0, seed=1)
        result = execute_request(request, registry=reg)
        assert not result.ok
        assert result.error is not None
        assert "BOOM" in result.error
