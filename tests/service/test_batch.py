"""Tests for the batch executor: determinism, workers, cache integration."""

import pytest

from repro.exceptions import ServiceError
from repro.mqo.generator import generate_paper_testcase
from repro.service.batch import BatchExecutor, derive_job_seed, execute_request
from repro.service.cache import ResultCache
from repro.service.jobs import SolveRequest
from repro.service.registry import SolverRegistry, default_registry


def _requests(count: int, solver: str = "LIN-MQO", budget_ms: float = 500.0):
    # Tiny instances + a generous budget: the exact solver proves
    # optimality in a few ms, so runs replay identically even when CI
    # load or worker contention eats most of the wall clock.
    return [
        SolveRequest(
            problem=generate_paper_testcase(4, 2, seed=index),
            solver=solver,
            time_budget_ms=budget_ms,
        )
        for index in range(count)
    ]


def _fingerprint(results):
    return [(r.job_id, r.best_cost, tuple(r.selected_plans)) for r in results]


class TestExecuteRequest:
    def test_named_solver(self):
        request = _requests(1)[0]
        result = execute_request(request)
        assert result.ok
        assert result.winner == "LIN-MQO"
        assert result.proved_optimal
        assert result.is_valid
        assert result.cache_key == request.cache_key()

    def test_portfolio_request(self):
        problem = generate_paper_testcase(5, 2, seed=0)
        request = SolveRequest(
            problem=problem,
            time_budget_ms=150.0,
            seed=4,
            solvers=("LIN-MQO", "CLIMB"),
        )
        result = execute_request(request)
        assert result.ok
        assert result.winner in ("LIN-MQO", "CLIMB")
        assert result.solver == "portfolio"

    def test_solver_failure_is_captured(self):
        request = _requests(1)[0]
        request.solver = "NOPE"
        result = execute_request(request)
        assert not result.ok
        assert "UnknownSolverError" in result.error

    def test_non_repro_exception_is_captured_too(self):
        registry = SolverRegistry()

        class Buggy:
            name = "BUGGY"

            def solve(self, problem, time_budget_ms, seed=None):
                raise ValueError("not a ReproError")

        registry.register("BUGGY", Buggy)
        request = _requests(1, solver="BUGGY")[0]
        result = execute_request(request, registry=registry)
        assert not result.ok
        assert "ValueError: not a ReproError" in result.error


class TestDeterminism:
    def test_same_base_seed_same_results(self):
        requests = _requests(4)
        first = BatchExecutor(workers=0).run(requests, base_seed=9)
        second = BatchExecutor(workers=0).run(requests, base_seed=9)
        assert all(r.proved_optimal for r in first + second)  # converged
        assert _fingerprint(first) == _fingerprint(second)
        assert [r.seed for r in first] == [r.seed for r in second]

    def test_worker_count_does_not_change_results(self):
        requests = _requests(4)
        inline = BatchExecutor(workers=0).run(requests, base_seed=9)
        pooled = BatchExecutor(workers=2).run(requests, base_seed=9)
        # Seeds derive from (base_seed, position) only, never from the
        # executor configuration.
        assert [r.seed for r in inline] == [r.seed for r in pooled]
        assert all(r.proved_optimal for r in inline + pooled)  # converged
        assert _fingerprint(inline) == _fingerprint(pooled)

    def test_explicit_request_seed_wins_over_derived(self):
        request = _requests(1)[0]
        request.seed = 1234
        (result,) = BatchExecutor(workers=0).run([request], base_seed=9)
        assert result.seed == 1234

    def test_derive_job_seed_properties(self):
        seeds = [derive_job_seed(7, index) for index in range(8)]
        assert seeds == [derive_job_seed(7, index) for index in range(8)]
        assert len(set(seeds)) == 8
        assert derive_job_seed(8, 0) != derive_job_seed(7, 0)

    def test_negative_base_seed_accepted(self):
        assert derive_job_seed(-1, 0) == derive_job_seed(-1, 0)
        assert derive_job_seed(-1, 0) != derive_job_seed(-2, 0)


class TestCacheIntegration:
    def test_second_run_hits_without_resolving(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=0, cache=cache)
        requests = _requests(3)
        cold = executor.run(requests, base_seed=1)
        assert all(not r.from_cache for r in cold)
        warm = executor.run(requests, base_seed=1)
        assert all(r.from_cache for r in warm)
        assert _fingerprint(cold) == _fingerprint(warm)
        assert cache.stats.hits == 3
        assert all(r.total_time_ms == 0.0 for r in warm)

    def test_cache_hit_echoes_current_request_metadata(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=0, cache=cache)
        request = _requests(1)[0]
        request.seed = 1
        executor.run([request])
        rerun = _requests(1)[0]
        rerun.seed = 1
        rerun.metadata = {"ticket": 2}
        (hit,) = executor.run([rerun])
        assert hit.from_cache
        assert hit.metadata == {"ticket": 2}

    def test_different_base_seed_misses(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=0, cache=cache)
        requests = _requests(2)
        executor.run(requests, base_seed=1)
        rerun = executor.run(requests, base_seed=2)
        assert all(not r.from_cache for r in rerun)

    def test_cache_persisted_after_batch(self, tmp_path):
        path = tmp_path / "cache.json"
        executor = BatchExecutor(workers=0, cache=ResultCache(path=path))
        executor.run(_requests(2), base_seed=1)
        assert path.exists()

        warmed = BatchExecutor(workers=0, cache=ResultCache(path=path))
        results = warmed.run(_requests(2), base_seed=1)
        assert all(r.from_cache for r in results)

    def test_failures_are_not_cached(self):
        cache = ResultCache()
        request = _requests(1)[0]
        request.solver = "NOPE"
        executor = BatchExecutor(workers=0, cache=cache)
        (result,) = executor.run([request], base_seed=0)
        assert not result.ok
        assert len(cache) == 0


class TestConfiguration:
    def test_negative_workers_rejected(self):
        with pytest.raises(ServiceError):
            BatchExecutor(workers=-1)

    def test_custom_registry_needs_inline_execution(self):
        with pytest.raises(ServiceError):
            BatchExecutor(workers=2, registry=SolverRegistry())
        BatchExecutor(workers=0, registry=SolverRegistry())  # fine inline

    def test_custom_registry_used_inline(self):
        registry = SolverRegistry()
        registry.register("ONLY", default_registry().get("CLIMB").factory)
        request = _requests(1, solver="ONLY")[0]
        (result,) = BatchExecutor(workers=0, registry=registry).run([request])
        assert result.ok
        assert result.winner == "ONLY"

    def test_job_ids_default_to_position(self):
        results = BatchExecutor(workers=0).run(_requests(2), base_seed=0)
        assert [r.job_id for r in results] == ["job-0", "job-1"]


class TestKeptPool:
    def test_keep_pool_reuses_one_pool_across_runs(self):
        # The chunked CLI runs many small batches; with keep_pool the
        # process pool must survive across run_iter calls instead of
        # being respawned per chunk.
        executor = BatchExecutor(workers=2, keep_pool=True)
        try:
            assert executor._pool is None
            list(executor.run_iter(_requests(2), base_seed=1))
            first = executor._pool
            assert first is not None
            list(executor.run_iter(_requests(2), base_seed=2))
            assert executor._pool is first
        finally:
            executor.close()
        assert executor._pool is None

    def test_default_mode_leaves_no_kept_pool(self):
        executor = BatchExecutor(workers=2)
        list(executor.run_iter(_requests(2), base_seed=1))
        assert executor._pool is None
        executor.close()  # no-op
