"""Bit-identity tests of the cross-request fusion window.

The fused anneal's contract (``docs/fusion.md``): per group, the
states coming out of one :class:`FusionWindow` are **exactly** — not
statistically — the states a solo
:meth:`BatchedAnnealer.sample_block_states` run produces with the same
generator, regardless of how many other jobs shared the window or how
their read counts, sweep counts and block shapes differ.  Hypothesis
drives the window composition; every comparison is ``np.array_equal``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealer.batched import BatchedAnnealer
from repro.annealer.fusion import FusionGroup, FusionWindow, fused_sample_block_states
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.exceptions import DeviceError
from repro.qubo.random_qubo import random_qubo

#: One window member: (qubo seeds, num_reads, num_sweeps, rng seed).
group_shapes = st.tuples(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=3),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=0, max_value=1000),
)


def _build_group(shape):
    """A FusionGroup plus its (qubos, reads, sweeps, seed) description."""
    qubo_seeds, num_reads, num_sweeps, seed = shape
    qubos = [
        random_qubo(3 + (s % 5), density=0.6, seed=s) for s in qubo_seeds
    ]
    return (
        FusionGroup(
            qubos=qubos,
            num_reads=num_reads,
            rng=np.random.default_rng(seed),
            num_sweeps=num_sweeps,
        ),
        (qubos, num_reads, num_sweeps, seed),
    )


class TestFusionBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(shapes=st.lists(group_shapes, min_size=1, max_size=4))
    def test_fused_equals_solo_batched(self, shapes):
        """Each group's fused states equal its solo BatchedAnnealer run."""
        groups, descriptions = zip(*(_build_group(shape) for shape in shapes))
        fused = FusionWindow().sample(list(groups))
        for (block_states, compiled), (qubos, num_reads, num_sweeps, seed) in zip(
            fused, descriptions
        ):
            solo_states, solo_compiled = BatchedAnnealer(
                num_sweeps=num_sweeps
            ).sample_block_states(
                qubos, num_reads=num_reads, seed=np.random.default_rng(seed)
            )
            assert len(block_states) == len(solo_states) == len(qubos)
            for ours, theirs in zip(block_states, solo_states):
                assert np.array_equal(ours, theirs)
            for ours, theirs in zip(compiled, solo_compiled):
                assert ours.num_variables == theirs.num_variables

    def test_single_block_group_matches_plain_sampler(self):
        """A one-block group reproduces the plain sparse sampler exactly.

        This is what lets the server fuse single-gauge jobs: the device's
        sequential path for one batch is ``SimulatedAnnealingSampler``,
        and the fused path must replay its stream bit-for-bit.
        """
        qubo = random_qubo(9, density=0.5, seed=3)
        sampler = SimulatedAnnealingSampler(num_sweeps=40)
        solo, _ = sampler.sample_states(qubo, num_reads=6, seed=42)
        (block_states, _compiled), = fused_sample_block_states(
            [
                FusionGroup(
                    qubos=[qubo],
                    num_reads=6,
                    rng=np.random.default_rng(42),
                    num_sweeps=40,
                )
            ]
        )
        assert np.array_equal(block_states[0], solo)

    def test_peers_do_not_perturb_each_other(self):
        """A group's states are invariant to who shares its window."""
        qubos = [random_qubo(6, density=0.6, seed=s) for s in range(2)]

        def run(peers):
            target = FusionGroup(
                qubos=qubos,
                num_reads=4,
                rng=np.random.default_rng(11),
                num_sweeps=30,
            )
            return FusionWindow().sample([target] + peers)[0][0]

        alone = run([])
        crowded = run(
            [
                FusionGroup(
                    qubos=[random_qubo(13, density=0.4, seed=90 + k)],
                    num_reads=7,
                    rng=np.random.default_rng(90 + k),
                    num_sweeps=55,
                )
                for k in range(3)
            ]
        )
        for ours, theirs in zip(alone, crowded):
            assert np.array_equal(ours, theirs)

    def test_mixed_sweep_horizons_early_exit(self):
        """Groups with shorter sweep budgets stop early yet stay identical."""
        shapes = [([1], 3, 5, 1), ([2, 3], 2, 40, 2), ([4], 4, 17, 3)]
        groups, descriptions = zip(*(_build_group(shape) for shape in shapes))
        fused = FusionWindow().sample(list(groups))
        for (block_states, _), (qubos, num_reads, num_sweeps, seed) in zip(
            fused, descriptions
        ):
            solo_states, _ = BatchedAnnealer(num_sweeps=num_sweeps).sample_block_states(
                qubos, num_reads=num_reads, seed=np.random.default_rng(seed)
            )
            for ours, theirs in zip(block_states, solo_states):
                assert np.array_equal(ours, theirs)


class TestFusionValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(DeviceError):
            FusionWindow().sample([])

    def test_empty_group_rejected(self):
        with pytest.raises(DeviceError):
            FusionWindow().sample(
                [FusionGroup(qubos=[], num_reads=1, rng=0, num_sweeps=5)]
            )

    def test_bad_reads_rejected(self):
        qubo = random_qubo(4, density=0.5, seed=0)
        with pytest.raises(DeviceError):
            FusionWindow().sample(
                [FusionGroup(qubos=[qubo], num_reads=0, rng=0, num_sweeps=5)]
            )

    def test_bad_sweeps_rejected(self):
        qubo = random_qubo(4, density=0.5, seed=0)
        with pytest.raises(DeviceError):
            FusionWindow().sample(
                [FusionGroup(qubos=[qubo], num_reads=1, rng=0, num_sweeps=0)]
            )
