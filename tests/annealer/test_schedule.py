"""Tests for annealing schedules."""

import numpy as np
import pytest

from repro.annealer.schedule import (
    AnnealingSchedule,
    default_schedule_for,
    geometric_beta_schedule,
    linear_beta_schedule,
)
from repro.exceptions import DeviceError


class TestAnnealingSchedule:
    def test_num_sweeps(self):
        schedule = AnnealingSchedule(betas=(0.1, 0.5, 1.0))
        assert schedule.num_sweeps == 3

    def test_as_array(self):
        schedule = AnnealingSchedule(betas=(0.1, 0.2))
        assert np.allclose(schedule.as_array(), [0.1, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(DeviceError):
            AnnealingSchedule(betas=())

    def test_nonpositive_rejected(self):
        with pytest.raises(DeviceError):
            AnnealingSchedule(betas=(0.1, 0.0))


class TestGeometricSchedule:
    def test_endpoints(self):
        schedule = geometric_beta_schedule(0.1, 10.0, 5)
        assert schedule.betas[0] == pytest.approx(0.1)
        assert schedule.betas[-1] == pytest.approx(10.0)
        assert schedule.num_sweeps == 5

    def test_monotone_increasing(self):
        schedule = geometric_beta_schedule(0.1, 10.0, 20)
        betas = schedule.as_array()
        assert np.all(np.diff(betas) > 0)

    def test_single_sweep(self):
        schedule = geometric_beta_schedule(0.1, 10.0, 1)
        assert schedule.betas == (10.0,)

    def test_invalid_arguments(self):
        with pytest.raises(DeviceError):
            geometric_beta_schedule(0.0, 1.0, 10)
        with pytest.raises(DeviceError):
            geometric_beta_schedule(0.1, 1.0, 0)


class TestLinearSchedule:
    def test_uniform_spacing(self):
        schedule = linear_beta_schedule(1.0, 5.0, 5)
        assert np.allclose(np.diff(schedule.as_array()), 1.0)

    def test_single_sweep(self):
        assert linear_beta_schedule(0.5, 2.0, 1).betas == (2.0,)

    def test_invalid(self):
        with pytest.raises(DeviceError):
            linear_beta_schedule(-1.0, 1.0, 5)


class TestDefaultSchedule:
    def test_hot_start_scales_with_weight(self):
        small = default_schedule_for(1.0, 10)
        large = default_schedule_for(100.0, 10)
        assert large.betas[0] < small.betas[0]

    def test_cold_end_freezes_unit_moves(self):
        schedule = default_schedule_for(10.0, 50)
        assert schedule.betas[-1] >= 10.0

    def test_zero_weight_handled(self):
        schedule = default_schedule_for(0.0, 5)
        assert schedule.num_sweeps == 5
        assert all(beta > 0 for beta in schedule.betas)
