"""Tests for the vectorised simulated-annealing sampler."""

import numpy as np
import pytest

from repro.annealer.simulated_annealing import SimulatedAnnealingSampler, _greedy_coloring
from repro.exceptions import DeviceError
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_qubo


class TestGreedyColoring:
    def test_path_graph_uses_two_colors(self):
        adjacency = [[1], [0, 2], [1, 3], [2]]
        classes = _greedy_coloring(adjacency)
        assert len(classes) == 2
        assert sorted(q for cls in classes for q in cls) == [0, 1, 2, 3]

    def test_classes_are_independent_sets(self):
        adjacency = [[1, 2], [0, 2], [0, 1], []]
        classes = _greedy_coloring(adjacency)
        for cls in classes:
            for i in cls:
                for j in cls:
                    if i != j:
                        assert j not in adjacency[i]

    def test_empty_graph(self):
        assert _greedy_coloring([]) == []


class TestSampler:
    def test_finds_optimum_of_small_problems(self):
        sampler = SimulatedAnnealingSampler(num_sweeps=200)
        for seed in range(3):
            qubo = random_qubo(10, density=0.5, seed=seed)
            _opt, opt_energy = solve_bruteforce(qubo)
            _assignments, energies = sampler.sample(qubo, num_reads=20, seed=seed)
            assert min(energies) == pytest.approx(opt_energy, abs=1e-9)

    def test_energies_match_assignments(self):
        sampler = SimulatedAnnealingSampler(num_sweeps=20)
        qubo = random_qubo(8, density=0.4, seed=1)
        assignments, energies = sampler.sample(qubo, num_reads=5, seed=2)
        for assignment, energy in zip(assignments, energies):
            assert energy == pytest.approx(qubo.energy(assignment))

    def test_number_of_reads(self):
        sampler = SimulatedAnnealingSampler(num_sweeps=10)
        qubo = random_qubo(5, seed=0)
        assignments, energies = sampler.sample(qubo, num_reads=7, seed=1)
        assert len(assignments) == 7
        assert len(energies) == 7

    def test_deterministic_given_seed(self):
        sampler = SimulatedAnnealingSampler(num_sweeps=30)
        qubo = random_qubo(6, seed=0)
        a = sampler.sample(qubo, num_reads=4, seed=9)
        b = sampler.sample(qubo, num_reads=4, seed=9)
        assert a[1] == b[1]
        assert a[0] == b[0]

    def test_initial_states_respected_shape(self):
        sampler = SimulatedAnnealingSampler(num_sweeps=5)
        qubo = random_qubo(4, seed=0)
        with pytest.raises(DeviceError):
            sampler.sample(qubo, num_reads=3, initial_states=np.zeros((2, 4)))

    def test_empty_qubo_rejected(self):
        with pytest.raises(DeviceError):
            SimulatedAnnealingSampler().sample(QUBOModel(), num_reads=1)

    def test_invalid_reads_rejected(self):
        with pytest.raises(DeviceError):
            SimulatedAnnealingSampler().sample(random_qubo(3, seed=0), num_reads=0)

    def test_invalid_sweeps_rejected(self):
        with pytest.raises(DeviceError):
            SimulatedAnnealingSampler(num_sweeps=0)

    def test_single_variable_problem(self):
        sampler = SimulatedAnnealingSampler(num_sweeps=30)
        qubo = QUBOModel(linear={"x": -2.0})
        assignments, energies = sampler.sample(qubo, num_reads=5, seed=0)
        assert all(a["x"] == 1 for a in assignments)
        assert all(e == pytest.approx(-2.0) for e in energies)

    def test_strong_coupling_respected(self):
        # Strongly ferromagnetic pair with a field: both variables align.
        qubo = QUBOModel(linear={0: 1.0, 1: 1.0}, quadratic={(0, 1): -10.0})
        sampler = SimulatedAnnealingSampler(num_sweeps=100)
        assignments, _ = sampler.sample(qubo, num_reads=10, seed=4)
        assert all(a[0] == a[1] for a in assignments)
