"""Tests for gauge (spin-reversal) transformations."""

import pytest

from repro.annealer.gauge import GaugeTransform, random_gauge
from repro.exceptions import DeviceError
from repro.qubo.ising import IsingModel, binary_to_spins
from repro.qubo.model import QUBOModel
from repro.qubo.ising import qubo_to_ising


class TestGaugeTransform:
    def test_invalid_factor_rejected(self):
        with pytest.raises(DeviceError):
            GaugeTransform(factors={0: 2})

    def test_identity(self):
        gauge = GaugeTransform.identity([0, 1, 2])
        ising = IsingModel(h={0: 1.0, 1: -1.0}, j={(0, 1): 0.5})
        assert gauge.apply_to_ising(ising).h == ising.h
        assert gauge.apply_to_binary({0: 1, 1: 0}) == {0: 1, 1: 0}

    def test_unknown_variable_defaults_to_identity(self):
        gauge = GaugeTransform(factors={0: -1})
        assert gauge.factor(99) == 1

    def test_energy_invariance(self):
        """Gauged problem + gauged spins = same energy (the defining property)."""
        ising = IsingModel(h={0: 1.0, 1: -0.5, 2: 0.25}, j={(0, 1): 2.0, (1, 2): -1.0})
        gauge = GaugeTransform(factors={0: -1, 1: 1, 2: -1})
        gauged = gauge.apply_to_ising(ising)
        for spins in (
            {0: 1, 1: 1, 2: 1},
            {0: -1, 1: 1, 2: -1},
            {0: -1, 1: -1, 2: -1},
        ):
            gauged_spins = gauge.apply_to_spins(spins)
            assert gauged.energy(gauged_spins) == pytest.approx(ising.energy(spins))

    def test_apply_to_spins_is_involution(self):
        gauge = GaugeTransform(factors={0: -1, 1: 1})
        spins = {0: -1, 1: 1}
        assert gauge.apply_to_spins(gauge.apply_to_spins(spins)) == spins

    def test_apply_to_binary_is_involution(self):
        gauge = GaugeTransform(factors={0: -1, 1: 1, 2: -1})
        sample = {0: 1, 1: 0, 2: 0}
        assert gauge.apply_to_binary(gauge.apply_to_binary(sample)) == sample

    def test_apply_to_binary_flips_only_negative_factors(self):
        gauge = GaugeTransform(factors={0: -1, 1: 1})
        assert gauge.apply_to_binary({0: 1, 1: 1}) == {0: 0, 1: 1}

    def test_apply_to_binary_rejects_non_binary(self):
        gauge = GaugeTransform(factors={0: -1})
        with pytest.raises(DeviceError):
            gauge.apply_to_binary({0: 2})

    def test_binary_roundtrip_preserves_qubo_energy(self):
        qubo = QUBOModel(linear={0: 1.0, 1: -2.0}, quadratic={(0, 1): 1.5})
        ising = qubo_to_ising(qubo)
        gauge = GaugeTransform(factors={0: -1, 1: -1})
        gauged_ising = gauge.apply_to_ising(ising)
        for assignment in ({0: 0, 1: 0}, {0: 1, 1: 0}, {0: 1, 1: 1}):
            spins = binary_to_spins(assignment)
            gauged_spins = gauge.apply_to_spins(spins)
            assert gauged_ising.energy(gauged_spins) == pytest.approx(qubo.energy(assignment))


class TestRandomGauge:
    def test_factors_cover_all_variables(self, rng):
        gauge = random_gauge([0, 1, 2, 3], seed=rng)
        assert set(gauge.factors) == {0, 1, 2, 3}
        assert all(f in (-1, 1) for f in gauge.factors.values())

    def test_deterministic_for_seed(self):
        a = random_gauge(list(range(20)), seed=5)
        b = random_gauge(list(range(20)), seed=5)
        assert a.factors == b.factors

    def test_different_seeds_differ(self):
        a = random_gauge(list(range(50)), seed=1)
        b = random_gauge(list(range(50)), seed=2)
        assert a.factors != b.factors
