"""Property tests: the sparse CSR path must reproduce the dense path.

The acceptance bar for the sparse rewrite is *bit-equivalence of the
sampling dynamics*: both backends draw the same random numbers in the
same order, so for equal seeds they must produce identical sampled
states and (up to floating-point associativity) identical energies, on
random dense-ish QUBOs as well as on Chimera-structured ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealer.compile import CompileCache
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.chimera.topology import ChimeraGraph
from repro.qubo.random_qubo import random_chimera_qubo, random_qubo


def _pair(num_sweeps):
    """A (sparse, dense) sampler pair with cold compile caches."""
    sparse = SimulatedAnnealingSampler(
        num_sweeps=num_sweeps, backend="sparse", compile_cache=CompileCache(maxsize=0)
    )
    dense = SimulatedAnnealingSampler(
        num_sweeps=num_sweeps, backend="dense", compile_cache=CompileCache(maxsize=0)
    )
    return sparse, dense


def _assert_equivalent(qubo, num_reads, seed, num_sweeps):
    sparse, dense = _pair(num_sweeps)
    sparse_assignments, sparse_energies = sparse.sample(qubo, num_reads=num_reads, seed=seed)
    dense_assignments, dense_energies = dense.sample(qubo, num_reads=num_reads, seed=seed)
    assert sparse_assignments == dense_assignments
    assert np.allclose(sparse_energies, dense_energies, atol=1e-9)
    for assignment, energy in zip(sparse_assignments, sparse_energies):
        assert qubo.energy(assignment) == pytest.approx(energy, abs=1e-9)


class TestSparseDenseEquivalence:
    @given(
        num_variables=st.integers(min_value=1, max_value=18),
        density=st.floats(min_value=0.0, max_value=1.0),
        qubo_seed=st.integers(min_value=0, max_value=2**31 - 1),
        sample_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_qubos(self, num_variables, density, qubo_seed, sample_seed):
        qubo = random_qubo(num_variables, density=density, seed=qubo_seed)
        _assert_equivalent(qubo, num_reads=4, seed=sample_seed, num_sweeps=25)

    @given(
        qubo_seed=st.integers(min_value=0, max_value=2**31 - 1),
        sample_seed=st.integers(min_value=0, max_value=2**31 - 1),
        edge_probability=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_chimera_structured_qubos(self, qubo_seed, sample_seed, edge_probability):
        topology = ChimeraGraph(2, 2)
        qubo = random_chimera_qubo(
            topology.edges(),
            topology.qubits,
            edge_probability=edge_probability,
            seed=qubo_seed,
        )
        _assert_equivalent(qubo, num_reads=5, seed=sample_seed, num_sweeps=30)

    def test_large_weights_no_overflow_warning(self):
        qubo = random_qubo(8, density=0.8, weight_range=(-1e6, 1e6), seed=0)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _assert_equivalent(qubo, num_reads=4, seed=1, num_sweeps=30)

    def test_identical_with_warm_structure_cache(self):
        """Cache hits must not change the sampled states."""
        topology = ChimeraGraph(2, 2)
        qubo = random_chimera_qubo(topology.edges(), topology.qubits, seed=3)
        cold = SimulatedAnnealingSampler(
            num_sweeps=30, compile_cache=CompileCache(maxsize=0)
        )
        warm = SimulatedAnnealingSampler(num_sweeps=30, compile_cache=CompileCache(maxsize=4))
        warm.sample(qubo, num_reads=2, seed=0)  # populate the structure cache
        a_cold = cold.sample(qubo, num_reads=5, seed=11)
        a_warm = warm.sample(qubo, num_reads=5, seed=11)
        assert a_cold[0] == a_warm[0]
        assert a_cold[1] == a_warm[1]

    def test_initial_states_respected_by_both_backends(self):
        qubo = random_qubo(6, density=0.5, seed=2)
        initial = np.zeros((3, 6))
        sparse, dense = _pair(20)
        a1, _ = sparse.sample(qubo, num_reads=3, seed=7, initial_states=initial)
        a2, _ = dense.sample(qubo, num_reads=3, seed=7, initial_states=initial)
        assert a1 == a2

    def test_unknown_backend_rejected(self):
        from repro.exceptions import DeviceError

        with pytest.raises(DeviceError):
            SimulatedAnnealingSampler(backend="gpu")
