"""Tests of the opt-in numba Metropolis sweep backend.

The numba kernel is an optional acceleration lane behind the existing
``backend=`` seam of :class:`SimulatedAnnealingSampler`.  Without the
package installed (the common case — it is not a dependency), selecting
it must fail with a clear :class:`DeviceError` at construction, and the
kernel-equivalence tests skip cleanly.  With it installed, the native
sweep must reproduce the numpy sparse backend bit-for-bit (the same
contract ``backend="dense"`` already honours), modulo the documented
last-ulp ``exp`` caveat shared by every backend pair.
"""

import numpy as np
import pytest

from repro.annealer.numba_kernels import HAVE_NUMBA, require_numba
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.exceptions import DeviceError
from repro.qubo.random_qubo import random_qubo

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="optional numba package not installed"
)


class TestBackendGating:
    def test_numba_is_a_registered_backend(self):
        assert "numba" in SimulatedAnnealingSampler.BACKENDS

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_missing_numba_fails_at_construction(self):
        """Selecting the backend without the package is an early, clear error."""
        with pytest.raises(DeviceError, match="numba"):
            SimulatedAnnealingSampler(backend="numba")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_require_numba_names_the_fallback(self):
        with pytest.raises(DeviceError, match='backend="sparse"'):
            require_numba()

    def test_unknown_backend_rejected(self):
        with pytest.raises(DeviceError):
            SimulatedAnnealingSampler(backend="cuda")


@needs_numba
class TestNumbaEquivalence:
    """Only runs where numba is installed; skips cleanly elsewhere."""

    def test_matches_sparse_backend_exactly(self):
        qubo = random_qubo(24, density=0.3, seed=5)
        sparse = SimulatedAnnealingSampler(num_sweeps=60, backend="sparse")
        native = SimulatedAnnealingSampler(num_sweeps=60, backend="numba")
        sparse_states, _ = sparse.sample_states(qubo, num_reads=8, seed=9)
        native_states, _ = native.sample_states(qubo, num_reads=8, seed=9)
        assert np.array_equal(sparse_states, native_states)

    def test_deterministic_given_seed(self):
        qubo = random_qubo(12, density=0.5, seed=2)
        native = SimulatedAnnealingSampler(num_sweeps=30, backend="numba")
        first, _ = native.sample_states(qubo, num_reads=4, seed=3)
        second, _ = native.sample_states(qubo, num_reads=4, seed=3)
        assert np.array_equal(first, second)
