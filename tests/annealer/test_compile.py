"""Tests for the sparse QUBO compilation layer."""

import numpy as np
import pytest

from repro.annealer.compile import (
    CompileCache,
    compile_qubo,
    default_compile_cache,
    greedy_coloring,
    structure_key,
)
from repro.chimera.topology import ChimeraGraph
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_chimera_qubo, random_qubo


def _random_states(n, reads, seed):
    return np.random.default_rng(seed).integers(0, 2, size=(reads, n)).astype(float)


class TestCompiledQUBO:
    def test_energies_match_model(self):
        qubo = random_qubo(12, density=0.5, seed=3)
        compiled = compile_qubo(qubo)
        states = _random_states(12, 8, seed=0)
        energies = compiled.energies(states)
        expected = qubo.energies(states, compiled.variables)
        assert np.allclose(energies, expected)

    def test_local_field_matches_dense(self):
        qubo = random_qubo(10, density=0.6, seed=1)
        compiled = compile_qubo(qubo)
        coupling = compiled.dense_coupling()
        states = _random_states(10, 5, seed=2)
        for class_index, plan in enumerate(compiled.structure.classes):
            sparse_field = compiled.local_field(states, class_index)
            dense_field = compiled.linear[plan.members] + states @ coupling[:, plan.members]
            assert np.allclose(sparse_field, dense_field)

    def test_local_field_with_isolated_variables(self):
        qubo = QUBOModel(linear={0: -1.0, 1: 2.0, 2: 0.5}, quadratic={(0, 1): 3.0})
        compiled = compile_qubo(qubo)
        states = np.ones((4, 3))
        coupling = compiled.dense_coupling()
        for class_index, plan in enumerate(compiled.structure.classes):
            sparse_field = compiled.local_field(states, class_index)
            dense_field = compiled.linear[plan.members] + states @ coupling[:, plan.members]
            assert np.allclose(sparse_field, dense_field)

    def test_no_interactions_at_all(self):
        qubo = QUBOModel(linear={0: -1.0, 1: 1.0})
        compiled = compile_qubo(qubo)
        states = np.zeros((3, 2))
        assert np.allclose(compiled.energies(states), 0.0)
        total_members = sum(
            plan.members.size for plan in compiled.structure.classes
        )
        assert total_members == 2

    def test_color_classes_are_independent_sets(self):
        qubo = random_qubo(15, density=0.4, seed=7)
        compiled = compile_qubo(qubo)
        quadratic = qubo.quadratic
        index = {var: i for i, var in enumerate(compiled.variables)}
        edges = {
            tuple(sorted((index[u], index[v]))) for (u, v) in quadratic
        }
        for plan in compiled.structure.classes:
            members = plan.members.tolist()
            for a in members:
                for b in members:
                    if a < b:
                        assert (a, b) not in edges

    def test_sparse_memory_beats_dense_on_chimera(self):
        # 512 variables: the degree-6 Chimera structure keeps the sparse
        # arrays an order of magnitude below the dense coupling matrix.
        topology = ChimeraGraph(8, 8)
        qubo = random_chimera_qubo(topology.edges(), topology.qubits, seed=0)
        compiled = compile_qubo(qubo)
        dense_bytes = compiled.num_variables**2 * 8
        assert compiled.nbytes_sparse() * 10 < dense_bytes

    def test_max_abs_weight(self):
        qubo = QUBOModel(linear={0: -5.0, 1: 1.0}, quadratic={(0, 1): 3.0})
        compiled = compile_qubo(qubo)
        assert compiled.max_abs_weight == pytest.approx(5.0)


class TestGreedyColoringReexport:
    def test_coloring_covers_all_nodes(self):
        adjacency = [[1], [0, 2], [1], []]
        classes = greedy_coloring(adjacency)
        assert sorted(node for cls in classes for node in cls) == [0, 1, 2, 3]


class TestCompileCache:
    def test_structure_shared_between_same_pattern(self):
        cache = CompileCache(maxsize=4)
        topology = ChimeraGraph(2, 2)
        q1 = random_chimera_qubo(topology.edges(), topology.qubits, seed=1)
        q2 = random_chimera_qubo(topology.edges(), topology.qubits, seed=2)
        c1 = compile_qubo(q1, cache=cache)
        c2 = compile_qubo(q2, cache=cache)
        assert c1.structure is c2.structure
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}
        # Values are never shared.
        assert not np.array_equal(c1.sym_data, c2.sym_data)

    def test_different_patterns_do_not_collide(self):
        cache = CompileCache(maxsize=4)
        q1 = random_qubo(6, density=0.9, seed=1)
        q2 = random_qubo(6, density=0.1, seed=1)
        c1 = compile_qubo(q1, cache=cache)
        c2 = compile_qubo(q2, cache=cache)
        assert c1.structure is not c2.structure
        assert cache.stats()["hits"] == 0

    def test_refilled_values_match_cold_compile(self):
        cache = CompileCache(maxsize=4)
        topology = ChimeraGraph(2, 2)
        q1 = random_chimera_qubo(topology.edges(), topology.qubits, seed=1)
        q2 = random_chimera_qubo(topology.edges(), topology.qubits, seed=9)
        compile_qubo(q1, cache=cache)  # warms the structure
        warm = compile_qubo(q2, cache=cache)
        cold = compile_qubo(q2, cache=None)
        states = _random_states(warm.num_variables, 6, seed=5)
        assert np.allclose(warm.energies(states), cold.energies(states))
        for k in range(warm.num_classes):
            assert np.allclose(
                warm.local_field(states, k), cold.local_field(states, k)
            )

    def test_lru_eviction(self):
        cache = CompileCache(maxsize=2)
        qubos = [random_qubo(4, density=d, seed=1) for d in (0.2, 0.6, 1.0)]
        for qubo in qubos:
            compile_qubo(qubo, cache=cache)
        assert len(cache) <= 2

    def test_zero_maxsize_disables_caching(self):
        cache = CompileCache(maxsize=0)
        qubo = random_qubo(5, seed=0)
        compile_qubo(qubo, cache=cache)
        compile_qubo(qubo, cache=cache)
        assert len(cache) == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            CompileCache(maxsize=-1)

    def test_default_cache_is_singleton(self):
        assert default_compile_cache() is default_compile_cache()

    def test_structure_key_sensitive_to_edge_order(self):
        a = QUBOModel(quadratic={(0, 1): 1.0, (1, 2): 2.0})
        b = QUBOModel(quadratic={(1, 2): 2.0, (0, 1): 1.0})
        va, la, ea, wa = a.to_arrays()
        vb, lb, eb, wb = b.to_arrays()
        assert structure_key(va, ea) != structure_key(vb, eb)


class TestToArrays:
    def test_roundtrip_counts(self):
        qubo = random_qubo(8, density=0.5, seed=0)
        variables, linear, edges, weights = qubo.to_arrays()
        assert len(variables) == 8
        assert linear.shape == (8,)
        assert edges.shape == (qubo.num_interactions, 2)
        assert weights.shape == (qubo.num_interactions,)

    def test_missing_variable_order_rejected(self):
        from repro.exceptions import QUBOError

        qubo = QUBOModel(linear={0: 1.0, 1: 2.0})
        with pytest.raises(QUBOError):
            qubo.to_arrays(variable_order=[0])
