"""Tests for the SampleSet container."""

import pytest

from repro.annealer.sampleset import Sample, SampleSet
from repro.exceptions import DeviceError


def _make_sampleset():
    samples = [
        Sample(assignment={0: 1}, energy=5.0, read_index=0, gauge_index=0),
        Sample(assignment={0: 0}, energy=3.0, read_index=1, gauge_index=0),
        Sample(assignment={0: 1}, energy=4.0, read_index=2, gauge_index=1),
        Sample(assignment={0: 0}, energy=3.0, read_index=3, gauge_index=1),
    ]
    return SampleSet(samples=samples, per_read_time_ms=0.376, programming_time_ms=1.0)


class TestSampleSet:
    def test_len_and_iteration(self):
        sampleset = _make_sampleset()
        assert len(sampleset) == 4
        assert sampleset.num_reads == 4
        assert [s.read_index for s in sampleset] == [0, 1, 2, 3]
        assert sampleset[2].energy == 4.0

    def test_best_breaks_ties_by_read_order(self):
        sampleset = _make_sampleset()
        best = sampleset.best()
        assert best.energy == 3.0
        assert best.read_index == 1

    def test_best_after_prefix(self):
        sampleset = _make_sampleset()
        assert sampleset.best_after(1).energy == 5.0
        assert sampleset.best_after(2).energy == 3.0
        assert sampleset.best_after(100).energy == 3.0

    def test_best_after_invalid(self):
        with pytest.raises(DeviceError):
            _make_sampleset().best_after(0)

    def test_best_of_empty_raises(self):
        with pytest.raises(DeviceError):
            SampleSet().best()

    def test_energies_in_read_order(self):
        assert _make_sampleset().energies() == [5.0, 3.0, 4.0, 3.0]

    def test_device_time_accounting(self):
        sampleset = _make_sampleset()
        assert sampleset.device_time_ms(1) == pytest.approx(1.0 + 0.376)
        assert sampleset.device_time_ms() == pytest.approx(1.0 + 4 * 0.376)
        assert sampleset.device_time_ms(100) == pytest.approx(1.0 + 4 * 0.376)

    def test_trajectory_is_monotone(self):
        trajectory = _make_sampleset().trajectory()
        assert len(trajectory) == 4
        costs = [cost for _, cost in trajectory]
        assert costs == [5.0, 3.0, 3.0, 3.0]
        times = [time for time, _ in trajectory]
        assert times == sorted(times)

    def test_negative_timing_rejected(self):
        with pytest.raises(DeviceError):
            SampleSet(per_read_time_ms=-1.0)
