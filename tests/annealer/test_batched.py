"""Tests for the block-diagonal batched annealer."""

import numpy as np
import pytest

from repro.annealer.batched import BatchedAnnealer
from repro.annealer.compile import CompileCache
from repro.annealer.simulated_annealing import SimulatedAnnealingSampler
from repro.chimera.topology import ChimeraGraph
from repro.exceptions import DeviceError
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_chimera_qubo, random_qubo


class TestBatchedAnnealer:
    def test_single_block_matches_plain_sampler(self):
        """With one block the fused sweep is the plain sparse sweep."""
        qubo = random_qubo(9, density=0.5, seed=3)
        sampler = SimulatedAnnealingSampler(num_sweeps=40)
        batched = BatchedAnnealer(num_sweeps=40)
        assignments, energies = sampler.sample(qubo, num_reads=6, seed=42)
        blocks = batched.sample_blocks([qubo], num_reads=6, seed=42)
        assert blocks[0].assignments == assignments
        assert np.allclose(blocks[0].energies, energies)

    def test_energies_consistent_per_block(self):
        topology = ChimeraGraph(2, 2)
        qubos = [
            random_chimera_qubo(topology.edges(), topology.qubits, seed=s) for s in range(3)
        ] + [random_qubo(5, density=0.7, seed=1)]
        results = BatchedAnnealer(num_sweeps=30).sample_blocks(qubos, num_reads=4, seed=0)
        assert len(results) == 4
        for qubo, block in zip(qubos, results):
            assert len(block.assignments) == 4
            for assignment, energy in zip(block.assignments, block.energies):
                assert qubo.energy(assignment) == pytest.approx(energy, abs=1e-9)

    def test_finds_optima_of_small_blocks(self):
        qubos = [random_qubo(8, density=0.5, seed=s) for s in range(3)]
        results = BatchedAnnealer(num_sweeps=200).sample_blocks(qubos, num_reads=20, seed=7)
        for qubo, block in zip(qubos, results):
            _opt, opt_energy = solve_bruteforce(qubo)
            assert min(block.energies) == pytest.approx(opt_energy, abs=1e-9)

    def test_deterministic_given_seed(self):
        qubos = [random_qubo(6, density=0.5, seed=s) for s in range(2)]
        annealer = BatchedAnnealer(num_sweeps=25)
        first = annealer.sample_blocks(qubos, num_reads=3, seed=5)
        second = annealer.sample_blocks(qubos, num_reads=3, seed=5)
        for a, b in zip(first, second):
            assert a.assignments == b.assignments
            assert a.energies == b.energies

    def test_blocks_with_different_weight_scales_keep_own_schedule(self):
        """A huge-weight block must not melt a small-weight block's anneal."""
        small = QUBOModel(linear={0: -1.0, 1: 1.0}, quadratic={(0, 1): -2.0})
        huge = QUBOModel(linear={0: 1e6, 1: 1e6}, quadratic={(0, 1): -3e6})
        results = BatchedAnnealer(num_sweeps=150).sample_blocks(
            [small, huge], num_reads=10, seed=2
        )
        _opt_small, e_small = solve_bruteforce(small)
        _opt_huge, e_huge = solve_bruteforce(huge)
        assert min(results[0].energies) == pytest.approx(e_small, abs=1e-9)
        assert min(results[1].energies) == pytest.approx(e_huge, abs=1e-6)

    def test_shared_structure_compiles_once(self):
        cache = CompileCache(maxsize=8)
        topology = ChimeraGraph(2, 2)
        qubos = [
            random_chimera_qubo(topology.edges(), topology.qubits, seed=s) for s in range(5)
        ]
        BatchedAnnealer(num_sweeps=5, compile_cache=cache).sample_blocks(
            qubos, num_reads=2, seed=0
        )
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 4

    def test_empty_inputs_rejected(self):
        annealer = BatchedAnnealer(num_sweeps=5)
        with pytest.raises(DeviceError):
            annealer.sample_blocks([], num_reads=1)
        with pytest.raises(DeviceError):
            annealer.sample_blocks([random_qubo(3, seed=0)], num_reads=0)
        with pytest.raises(DeviceError):
            annealer.sample_blocks([QUBOModel()], num_reads=1)

    def test_invalid_sweeps_rejected(self):
        with pytest.raises(DeviceError):
            BatchedAnnealer(num_sweeps=0)


class TestDeviceGaugeBatching:
    def test_fused_and_sequential_sample_same_distribution(self):
        """Both modes must find the optimum of a small native problem."""
        from repro.annealer.device import DWaveSamplerSimulator
        from repro.annealer.noise import NoiseModel
        from repro.chimera.hardware import DWAVE_2X

        topology = ChimeraGraph(1, 2)
        qubo = random_chimera_qubo(topology.edges(), topology.qubits, seed=5)
        _opt, opt_energy = solve_bruteforce(qubo)
        for batch_gauges in (True, False):
            device = DWaveSamplerSimulator(
                spec=DWAVE_2X,
                topology=topology,
                noise=NoiseModel(0.0, 0.0),
                num_sweeps=150,
                seed=3,
                batch_gauges=batch_gauges,
            )
            sample_set = device.sample_qubo(qubo, num_reads=30, num_gauges=5)
            assert sample_set.num_reads == 30
            assert sample_set.best().energy == pytest.approx(opt_energy, abs=1e-9)

    def test_gauge_indices_preserved_in_fused_mode(self):
        from repro.annealer.device import DWaveSamplerSimulator
        from repro.annealer.noise import NoiseModel
        from repro.chimera.hardware import DWAVE_2X

        topology = ChimeraGraph(1, 2)
        qubo = random_chimera_qubo(topology.edges(), topology.qubits, seed=1)
        device = DWaveSamplerSimulator(
            spec=DWAVE_2X,
            topology=topology,
            noise=NoiseModel(0.0, 0.0),
            num_sweeps=10,
            seed=0,
            batch_gauges=True,
        )
        sample_set = device.sample_qubo(qubo, num_reads=10, num_gauges=4)
        assert [s.read_index for s in sample_set] == list(range(10))
        assert {s.gauge_index for s in sample_set} == set(range(4))
