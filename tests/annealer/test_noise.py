"""Tests for the device noise model."""

import pytest

from repro.annealer.noise import NoiseModel
from repro.exceptions import DeviceError
from repro.qubo.ising import IsingModel


class TestNoiseModel:
    def test_defaults_are_small_but_nonzero(self):
        noise = NoiseModel()
        assert 0 < noise.static_bias_fraction < 0.05
        assert 0 < noise.programming_noise_fraction < 0.05
        assert not noise.is_noiseless

    def test_noiseless_flag(self):
        assert NoiseModel(0.0, 0.0).is_noiseless

    def test_negative_fractions_rejected(self):
        with pytest.raises(DeviceError):
            NoiseModel(-0.1, 0.0)
        with pytest.raises(DeviceError):
            NoiseModel(0.0, -0.1)

    def test_static_bias_shape_and_determinism(self):
        noise = NoiseModel(0.05, 0.0)
        bias_a = noise.static_bias([0, 1, 2], seed=1)
        bias_b = noise.static_bias([0, 1, 2], seed=1)
        assert bias_a == bias_b
        assert set(bias_a) == {0, 1, 2}

    def test_zero_static_bias(self):
        noise = NoiseModel(0.0, 0.01)
        assert noise.static_bias([0, 1]) == {0: 0.0, 1: 0.0}


class TestPerturbIsing:
    def test_noiseless_perturbation_is_identity(self):
        noise = NoiseModel(0.0, 0.0)
        ising = IsingModel(h={0: 1.0, 1: -1.0}, j={(0, 1): 0.5}, offset=2.0)
        perturbed = noise.perturb_ising(ising, {0: 0.0, 1: 0.0}, scale=1.0, seed=0)
        assert perturbed.h == ising.h
        assert perturbed.j == ising.j
        assert perturbed.offset == ising.offset

    def test_static_bias_added_proportionally_to_scale(self):
        noise = NoiseModel(0.1, 0.0)
        ising = IsingModel(h={0: 1.0}, j={})
        perturbed = noise.perturb_ising(ising, {0: 0.5}, scale=10.0, seed=0)
        assert perturbed.h[0] == pytest.approx(1.0 + 10.0 * 0.5)

    def test_programming_noise_perturbs_couplings(self):
        noise = NoiseModel(0.0, 0.05)
        ising = IsingModel(h={0: 0.0}, j={(0, 1): 1.0})
        perturbed = noise.perturb_ising(ising, {}, scale=1.0, seed=3)
        assert perturbed.j[(0, 1)] != 1.0

    def test_original_model_untouched(self):
        noise = NoiseModel(0.1, 0.1)
        ising = IsingModel(h={0: 1.0}, j={(0, 1): 1.0})
        noise.perturb_ising(ising, {0: 1.0}, scale=1.0, seed=0)
        assert ising.h[0] == 1.0
        assert ising.j[(0, 1)] == 1.0

    def test_negative_scale_rejected(self):
        with pytest.raises(DeviceError):
            NoiseModel().perturb_ising(IsingModel(), {}, scale=-1.0)
