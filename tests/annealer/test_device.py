"""Tests for the D-Wave device simulator."""

import pytest

from repro.annealer.device import DWaveSamplerSimulator
from repro.annealer.noise import NoiseModel
from repro.chimera.topology import ChimeraGraph
from repro.exceptions import DeviceCapacityError, DeviceError
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_chimera_qubo


def _native_qubo(topology, seed=0):
    return random_chimera_qubo(topology.edges(), topology.qubits, seed=seed)


class TestValidation:
    def test_rejects_unknown_qubit(self, ideal_device):
        qubo = QUBOModel(linear={99999: 1.0})
        with pytest.raises(DeviceCapacityError):
            ideal_device.sample_qubo(qubo, num_reads=1)

    def test_rejects_non_integer_variable(self, ideal_device):
        qubo = QUBOModel(linear={"a": 1.0})
        with pytest.raises(DeviceCapacityError):
            ideal_device.sample_qubo(qubo, num_reads=1)

    def test_rejects_non_coupler_interaction(self, ideal_device):
        # Qubits 0 and 1 sit in the same column of a cell: no coupler.
        qubo = QUBOModel(quadratic={(0, 1): 1.0})
        with pytest.raises(DeviceError):
            ideal_device.sample_qubo(qubo, num_reads=1)

    def test_rejects_broken_qubit(self, small_spec):
        topology = ChimeraGraph(4, 4, broken_qubits=[0])
        device = DWaveSamplerSimulator(spec=small_spec, topology=topology, seed=0)
        with pytest.raises(DeviceCapacityError):
            device.sample_qubo(QUBOModel(linear={0: 1.0}), num_reads=1)

    def test_invalid_read_counts(self, ideal_device, tiny_chimera):
        qubo = QUBOModel(linear={0: -1.0})
        with pytest.raises(DeviceError):
            ideal_device.sample_qubo(qubo, num_reads=0)
        with pytest.raises(DeviceError):
            ideal_device.sample_qubo(qubo, num_reads=5, num_gauges=0)

    def test_invalid_programming_time(self, small_chimera, small_spec):
        with pytest.raises(DeviceError):
            DWaveSamplerSimulator(
                spec=small_spec, topology=small_chimera, programming_time_ms=-1.0
            )


class TestSampling:
    def test_read_count_and_order(self, ideal_device):
        qubo = _native_qubo(ideal_device.topology, seed=1)
        sampleset = ideal_device.sample_qubo(qubo, num_reads=25, num_gauges=5)
        assert sampleset.num_reads == 25
        assert [s.read_index for s in sampleset] == list(range(25))
        assert {s.gauge_index for s in sampleset} == set(range(5))

    def test_energies_consistent_with_assignments(self, ideal_device):
        qubo = _native_qubo(ideal_device.topology, seed=2)
        sampleset = ideal_device.sample_qubo(qubo, num_reads=10, num_gauges=2)
        for sample in sampleset:
            assert sample.energy == pytest.approx(qubo.energy(sample.assignment))

    def test_finds_optimum_of_small_native_problem(self, small_spec):
        topology = ChimeraGraph(1, 2)  # 16 qubits: brute force feasible
        device = DWaveSamplerSimulator(
            spec=small_spec, topology=topology, noise=NoiseModel(0.0, 0.0), num_sweeps=150, seed=3
        )
        qubo = _native_qubo(topology, seed=5)
        _opt, opt_energy = solve_bruteforce(qubo)
        sampleset = device.sample_qubo(qubo, num_reads=30, num_gauges=5)
        assert sampleset.best().energy == pytest.approx(opt_energy, abs=1e-9)

    def test_timing_model_matches_paper_constants(self, ideal_device):
        qubo = QUBOModel(linear={0: -1.0})
        sampleset = ideal_device.sample_qubo(qubo, num_reads=100, num_gauges=10)
        assert sampleset.per_read_time_ms == pytest.approx(0.376)
        assert sampleset.device_time_ms() == pytest.approx(100 * 0.376)

    def test_default_read_and_gauge_counts_from_spec(self, small_chimera, small_spec):
        device = DWaveSamplerSimulator(
            spec=small_spec, topology=small_chimera, num_sweeps=5, seed=0
        )
        qubo = QUBOModel(linear={0: -1.0})
        sampleset = device.sample_qubo(qubo)
        assert sampleset.num_reads == small_spec.default_num_reads
        assert sampleset.info["num_gauges"] == small_spec.default_num_gauges

    def test_gauges_capped_by_reads(self, ideal_device):
        qubo = QUBOModel(linear={0: -1.0})
        sampleset = ideal_device.sample_qubo(qubo, num_reads=3, num_gauges=10)
        assert sampleset.info["num_gauges"] == 3

    def test_programming_time_accounted_per_gauge(self, small_chimera, small_spec):
        device = DWaveSamplerSimulator(
            spec=small_spec,
            topology=small_chimera,
            num_sweeps=5,
            programming_time_ms=2.0,
            seed=1,
        )
        qubo = QUBOModel(linear={0: -1.0})
        sampleset = device.sample_qubo(qubo, num_reads=10, num_gauges=5)
        assert sampleset.programming_time_ms == pytest.approx(10.0)

    def test_batch_sizes_split_evenly(self):
        assert DWaveSamplerSimulator._batch_sizes(10, 3) == [4, 3, 3]
        assert DWaveSamplerSimulator._batch_sizes(9, 3) == [3, 3, 3]
        assert DWaveSamplerSimulator._batch_sizes(2, 2) == [1, 1]

    def test_default_topology_built_from_spec(self, small_spec):
        device = DWaveSamplerSimulator(spec=small_spec, seed=0)
        assert device.num_qubits == small_spec.total_qubits

    def test_noise_affects_samples_but_not_reported_energy(self, small_chimera, small_spec):
        """Reported energies are always evaluated on the noiseless problem."""
        noisy = DWaveSamplerSimulator(
            spec=small_spec,
            topology=small_chimera,
            noise=NoiseModel(0.2, 0.1),
            num_sweeps=20,
            seed=7,
        )
        qubo = _native_qubo(small_chimera, seed=9)
        sampleset = noisy.sample_qubo(qubo, num_reads=5, num_gauges=1)
        for sample in sampleset:
            assert sample.energy == pytest.approx(qubo.energy(sample.assignment))
