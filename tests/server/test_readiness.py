"""Tests for the server readiness probe (repro.server.readiness)."""

import socket

import pytest

from repro.exceptions import ReproError, ServerError
from repro.server.readiness import main, wait_for_server


def _free_port() -> int:
    """A port that was just free (nothing listens on it afterwards)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestWaitForServer:
    def test_returns_promptly_for_a_live_server(self, server_factory):
        handle = server_factory()
        waited = wait_for_server(port=handle.port, timeout_s=5.0)
        assert 0.0 <= waited < 5.0

    def test_times_out_against_a_dead_port(self):
        with pytest.raises(ServerError, match="not ready"):
            wait_for_server(port=_free_port(), timeout_s=0.3)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ReproError, match="timeout_s"):
            wait_for_server(port=_free_port(), timeout_s=0.0)

    def test_listening_but_silent_socket_keeps_polling_until_timeout(self):
        # A raw TCP listener that never speaks the protocol: the TCP
        # probe succeeds but the ping never answers, so the probe must
        # keep polling and time out instead of reporting readiness.
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            with pytest.raises(ServerError, match="not ready"):
                wait_for_server(port=port, timeout_s=0.5)


class TestMain:
    def test_exit_zero_when_ready(self, server_factory, capsys):
        handle = server_factory()
        assert main(["--port", str(handle.port), "--timeout-s", "5"]) == 0
        assert "ready" in capsys.readouterr().err

    def test_exit_one_on_timeout(self, capsys):
        assert main(["--port", str(_free_port()), "--timeout-s", "0.3"]) == 1
        assert "error" in capsys.readouterr().err
