"""Property tests of the shard-routing function and its inputs.

The sharded worker tier is only correct if routing is a *pure* function
of the problem: the same instance must land on the same shard on every
submission, across server restarts and across processes, or the
per-shard cache locality story collapses.  These tests pin that down
with Hypothesis over arbitrary hashes plus generated MQO problems, and
check that the hash-prefix modulo spreads real workloads evenly.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mqo.generator import generate_paper_testcase
from repro.mqo.problem import MQOProblem
from repro.server.sharding import _ROUTE_PREFIX, default_shard_count, shard_for

#: A canonical hash is a SHA-256 hex digest; routing reads its prefix.
hashes = st.text(alphabet="0123456789abcdef", min_size=_ROUTE_PREFIX, max_size=64)
shard_counts = st.integers(min_value=1, max_value=64)


# ---------------------------------------------------------------------- #
# shard_for over arbitrary hashes
# ---------------------------------------------------------------------- #
@given(canonical_hash=hashes, num_shards=shard_counts)
def test_shard_in_range(canonical_hash: str, num_shards: int) -> None:
    """Every hash routes to a valid slot: 0 <= slot < num_shards."""
    slot = shard_for(canonical_hash, num_shards)
    assert 0 <= slot < num_shards


@given(canonical_hash=hashes, num_shards=shard_counts)
def test_shard_deterministic(canonical_hash: str, num_shards: int) -> None:
    """Routing is a pure function: repeated calls agree exactly."""
    assert shard_for(canonical_hash, num_shards) == shard_for(canonical_hash, num_shards)


@given(canonical_hash=hashes)
def test_single_shard_takes_everything(canonical_hash: str) -> None:
    """With one shard there is only one possible answer."""
    assert shard_for(canonical_hash, 1) == 0


@given(canonical_hash=hashes, num_shards=shard_counts, suffix=hashes)
def test_routing_reads_only_the_prefix(
    canonical_hash: str, num_shards: int, suffix: str
) -> None:
    """Only the first ``_ROUTE_PREFIX`` hex digits influence the slot.

    This is what makes routing stable across hash-length variations and
    cheap enough to sit on the admission path.
    """
    prefix = canonical_hash[:_ROUTE_PREFIX]
    assert shard_for(prefix + suffix, num_shards) == shard_for(canonical_hash, num_shards)


@given(num_shards=st.integers(max_value=0))
def test_invalid_shard_count_rejected(num_shards: int) -> None:
    """Zero or negative shard counts are a caller bug, reported loudly."""
    with pytest.raises(ValueError):
        shard_for("0" * _ROUTE_PREFIX, num_shards)


# ---------------------------------------------------------------------- #
# Routing of real problems
# ---------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), num_shards=shard_counts)
def test_generated_problem_routes_identically_across_rebuilds(
    seed: int, num_shards: int
) -> None:
    """Regenerating the same instance routes to the same shard.

    A client process and the server never share Python objects — only
    the instance spec — so routing must agree between two independent
    materialisations of the same problem.
    """
    first = generate_paper_testcase(num_queries=4, plans_per_query=2, seed=seed)
    second = generate_paper_testcase(num_queries=4, plans_per_query=2, seed=seed)
    assert first.canonical_hash() == second.canonical_hash()
    assert shard_for(first.canonical_hash(), num_shards) == shard_for(
        second.canonical_hash(), num_shards
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), num_shards=shard_counts)
def test_relabelled_problem_routes_identically(seed: int, num_shards: int) -> None:
    """Names and labels do not move a problem between shards.

    The canonical hash is label-free by construction, so a renamed copy
    of an instance must keep hitting the shard whose caches are warm.
    """
    problem = generate_paper_testcase(num_queries=4, plans_per_query=2, seed=seed)
    renamed = MQOProblem(
        plans_per_query=[
            [problem.plan_cost(p) for p in query.plan_indices]
            for query in problem.queries
        ],
        savings=dict(problem.savings),
        name=f"renamed-{seed}",
    )
    assert shard_for(renamed.canonical_hash(), num_shards) == shard_for(
        problem.canonical_hash(), num_shards
    )


# ---------------------------------------------------------------------- #
# Occupancy balance
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("num_shards", [2, 4, 8])
def test_occupancy_balanced_over_generated_problems(num_shards: int) -> None:
    """1000 distinct generated problems spread roughly evenly.

    SHA-256 prefixes are uniform, so shard occupancy is multinomial:
    each shard expects ``n / num_shards`` problems with standard
    deviation ``sqrt(n * p * (1 - p))``.  We assert every shard stays
    within 5 standard deviations of the expectation — loose enough to
    be deterministic-safe (seeds are fixed), tight enough to catch a
    routing bias (e.g. accidentally hashing the instance *name*, which
    is constant across this corpus).
    """
    total = 1000
    counts: Counter = Counter()
    seen = set()
    for seed in range(total):
        problem = generate_paper_testcase(num_queries=5, plans_per_query=3, seed=seed)
        digest = problem.canonical_hash()
        seen.add(digest)
        counts[shard_for(digest, num_shards)] += 1
    # The corpus must actually be distinct instances, or balance is vacuous.
    assert len(seen) > total * 0.9
    expected = total / num_shards
    probability = 1.0 / num_shards
    tolerance = 5.0 * (total * probability * (1.0 - probability)) ** 0.5
    for slot in range(num_shards):
        assert abs(counts[slot] - expected) <= tolerance, (
            f"shard {slot} holds {counts[slot]} of {total} problems "
            f"(expected {expected:.0f} ± {tolerance:.0f})"
        )
    assert sum(counts.values()) == total


def test_default_shard_count_positive() -> None:
    """Auto shard count is always at least one, whatever the host says."""
    assert default_shard_count() >= 1
