"""Worker-pool tests: coalescing, error capture, metrics accounting.

These run the pool against a stub frontend inside a private event loop,
so they are fast and fully deterministic — the socket layer is covered
by the end-to-end tests.
"""

import asyncio
import time

import pytest

from repro.core.decomposition import current_progress_observers
from repro.exceptions import AdmissionError
from repro.server.metrics import ServerMetrics
from repro.server.queue import JobQueue, ServerJob
from repro.server.streaming import StreamBroker
from repro.server.workers import WorkerPool
from repro.service.jobs import SolveRequest, SolveResult

from tests.server.conftest import tiny_problem


class StubFrontend:
    """Frontend double: records calls, optionally sleeps or fails."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False):
        self.delay_s = delay_s
        self.fail = fail
        self.calls = []

    def submit(self, request: SolveRequest) -> SolveResult:
        self.calls.append(request)
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("stub frontend exploded")
        return SolveResult(
            job_id=request.job_id,
            solver=request.solver,
            winner="STUB",
            best_cost=1.0,
            selected_plans=[0, 2],
            is_valid=True,
            trajectory=[(0.5, 1.0)],
            total_time_ms=1.0,
            time_budget_ms=request.time_budget_ms,
            seed=request.seed,
            metadata=dict(request.metadata),
        )


def _job(job_id: str, seed: int = 1, client: str = "c") -> ServerJob:
    return ServerJob(
        job_id=job_id,
        client_id=client,
        request=SolveRequest(
            problem=tiny_problem("workers-test"),
            solver="STUB",
            seed=seed,
            job_id=job_id,
        ),
    )


def _run_pool(frontend, jobs, num_workers=1, coalesce=True, timeout_s=5.0):
    """Admit ``jobs``, run the pool to completion, return delivered frames."""

    async def scenario():
        queue = JobQueue(capacity=32)
        broker = StreamBroker()
        metrics = ServerMetrics()
        pool = WorkerPool(
            frontend=frontend,
            queue=queue,
            broker=broker,
            metrics=metrics,
            num_workers=num_workers,
            coalesce=coalesce,
        )
        delivered = {}
        statuses = {}
        for job in jobs:
            broker.open(job.job_id)
            broker.subscribe(
                job.job_id,
                (lambda jid: lambda frame: delivered.setdefault(jid, []).append(frame))(
                    job.job_id
                ),
                updates=False,
            )
            statuses[job.job_id] = pool.admit(job)
        pool.start()
        deadline = time.monotonic() + timeout_s
        while len(delivered) < len(jobs) and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        queue.drain()
        await pool.join()
        pool.shutdown_executor()
        return delivered, statuses, metrics

    return asyncio.run(scenario())


class TestCoalescing:
    def test_identical_inflight_jobs_run_once(self):
        frontend = StubFrontend(delay_s=0.05)
        jobs = [_job("rep", seed=7), _job("twin", seed=7)]
        delivered, statuses, metrics = _run_pool(frontend, jobs, num_workers=1)
        assert statuses == {"rep": "queued", "twin": "coalesced"}
        assert len(frontend.calls) == 1  # one execution served both
        assert metrics.counter("jobs_coalesced") == 1
        assert metrics.counter("jobs_submitted") == 2
        assert metrics.counter("jobs_completed") == 2

    def test_follower_result_is_marked_from_cache(self):
        frontend = StubFrontend()
        jobs = [_job("rep", seed=7), _job("twin", seed=7)]
        delivered, _, _ = _run_pool(frontend, jobs, num_workers=1)
        rep = SolveResult.from_dict(delivered["rep"][0]["result"])
        twin = SolveResult.from_dict(delivered["twin"][0]["result"])
        assert not rep.from_cache
        assert twin.from_cache
        assert twin.job_id == "twin"  # identity echoes the twin, not the rep
        assert twin.best_cost == rep.best_cost

    def test_different_seeds_are_not_coalesced(self):
        frontend = StubFrontend()
        jobs = [_job("a", seed=1), _job("b", seed=2)]
        _, statuses, metrics = _run_pool(frontend, jobs, num_workers=1)
        assert statuses == {"a": "queued", "b": "queued"}
        assert len(frontend.calls) == 2
        assert metrics.counter("jobs_coalesced") == 0

    def test_coalescing_can_be_disabled(self):
        frontend = StubFrontend()
        jobs = [_job("a", seed=7), _job("b", seed=7)]
        _, statuses, _ = _run_pool(frontend, jobs, num_workers=1, coalesce=False)
        assert statuses == {"a": "queued", "b": "queued"}
        assert len(frontend.calls) == 2

    def test_followers_rejected_while_draining(self):
        async def scenario():
            queue = JobQueue(capacity=8)
            broker = StreamBroker()
            pool = WorkerPool(
                frontend=StubFrontend(),
                queue=queue,
                broker=broker,
                metrics=ServerMetrics(),
                num_workers=1,
            )
            rep = _job("rep", seed=7)
            broker.open(rep.job_id)
            pool.admit(rep)  # queued, never executed (pool not started)
            queue.drain()
            with pytest.raises(AdmissionError) as excinfo:
                pool.admit(_job("twin", seed=7))
            pool.shutdown_executor()
            return excinfo.value.code

        # A duplicate must not slip past the drain via the coalesce path.
        assert asyncio.run(scenario()) == "draining"

    def test_followers_per_representative_are_bounded(self):
        async def scenario():
            queue = JobQueue(capacity=2)
            broker = StreamBroker()
            pool = WorkerPool(
                frontend=StubFrontend(),
                queue=queue,
                broker=broker,
                metrics=ServerMetrics(),
                num_workers=1,
            )
            rep = _job("rep", seed=7)
            broker.open(rep.job_id)
            pool.admit(rep)
            assert pool.admit(_job("t1", seed=7)) == "coalesced"
            assert pool.admit(_job("t2", seed=7)) == "coalesced"
            with pytest.raises(AdmissionError) as excinfo:
                pool.admit(_job("t3", seed=7))  # beyond queue capacity
            pool.shutdown_executor()
            return excinfo.value.code

        assert asyncio.run(scenario()) == "queue_full"

    def test_urgent_follower_promotes_queued_representative(self):
        async def scenario():
            queue = JobQueue(capacity=8)
            broker = StreamBroker()
            pool = WorkerPool(
                frontend=StubFrontend(),
                queue=queue,
                broker=broker,
                metrics=ServerMetrics(),
                num_workers=1,
            )
            filler = _job("filler", seed=1)  # normal priority
            rep = _job("rep", seed=7)
            rep.priority = 2  # low
            for job in (filler, rep):
                broker.open(job.job_id)
                pool.admit(job)
            twin = _job("twin", seed=7)
            twin.priority = 0  # high — must not wait behind the backlog
            broker.open(twin.job_id)
            assert pool.admit(twin) == "coalesced"
            order = [(await queue.get()).job_id for _ in range(2)]
            pool.shutdown_executor()
            return rep.priority, order

        priority, order = asyncio.run(scenario())
        assert priority == 0  # representative inherited the urgency
        assert order == ["rep", "filler"]

    def test_key_is_freed_after_completion(self):
        frontend = StubFrontend()
        first, _, _ = _run_pool(frontend, [_job("a", seed=7)], num_workers=1)
        assert len(frontend.calls) == 1
        # A fresh pool run with the same request executes again — the
        # coalesce map tracks *in-flight* jobs, it is not a result cache.
        second, _, _ = _run_pool(frontend, [_job("b", seed=7)], num_workers=1)
        assert len(frontend.calls) == 2


class TestFailureHandling:
    def test_executor_failure_becomes_error_result(self):
        frontend = StubFrontend(fail=True)
        delivered, _, metrics = _run_pool(frontend, [_job("a")], num_workers=1)
        result = SolveResult.from_dict(delivered["a"][0]["result"])
        assert not result.ok
        assert "RuntimeError" in result.error
        assert metrics.counter("jobs_failed") == 1

    def test_follower_of_failed_job_gets_the_error(self):
        frontend = StubFrontend(fail=True)
        jobs = [_job("rep", seed=7), _job("twin", seed=7)]
        delivered, _, metrics = _run_pool(frontend, jobs, num_workers=1)
        twin = SolveResult.from_dict(delivered["twin"][0]["result"])
        assert not twin.ok
        assert "RuntimeError" in twin.error
        assert metrics.counter("jobs_failed") == 2


class TestProgressForwarding:
    def test_decomposition_progress_streams_as_progress_frames(self):
        class ProgressingFrontend(StubFrontend):
            """Double for a decomposed solve: reports cluster completions."""

            def submit(self, request: SolveRequest) -> SolveResult:
                for completed in range(1, 4):
                    for observer in current_progress_observers():
                        observer("decomposed_qa", completed, 3)
                return super().submit(request)

        async def scenario():
            queue = JobQueue(capacity=8)
            broker = StreamBroker()
            metrics = ServerMetrics()
            frontend = ProgressingFrontend()
            pool = WorkerPool(
                frontend=frontend, queue=queue, broker=broker, metrics=metrics, num_workers=1
            )
            job = _job("decomp")
            frames = []
            broker.open(job.job_id)
            broker.subscribe(job.job_id, frames.append, updates=True)
            pool.admit(job)
            pool.start()
            deadline = time.monotonic() + 5.0
            while not any(f["type"] == "result" for f in frames):
                if time.monotonic() > deadline:
                    raise AssertionError("job never completed")
                await asyncio.sleep(0.01)
            queue.drain()
            await pool.join()
            pool.shutdown_executor()
            return frames

        frames = asyncio.run(scenario())
        progress = [f for f in frames if f["type"] == "progress"]
        assert [(f["completed"], f["total"]) for f in progress] == [(1, 3), (2, 3), (3, 3)]
        assert all(f["solver"] == "decomposed_qa" for f in progress)
        assert frames[-1]["type"] == "result"


class TestLateFollowerAccounting:
    def test_follower_admitted_mid_run_has_non_negative_queue_wait(self):
        async def scenario():
            queue = JobQueue(capacity=8)
            broker = StreamBroker()
            metrics = ServerMetrics()
            frontend = StubFrontend(delay_s=0.15)
            pool = WorkerPool(
                frontend=frontend, queue=queue, broker=broker, metrics=metrics, num_workers=1
            )
            rep = _job("rep", seed=7)
            broker.open(rep.job_id)
            pool.admit(rep)
            pool.start()
            deadline = time.monotonic() + 5.0
            while not frontend.calls and time.monotonic() < deadline:
                await asyncio.sleep(0.005)
            assert frontend.calls  # the representative is now running
            twin = _job("twin", seed=7)
            broker.open(twin.job_id)
            assert pool.admit(twin) == "coalesced"
            queue.drain()
            await pool.join()
            pool.shutdown_executor()
            return twin, metrics

        twin, metrics = asyncio.run(scenario())
        # The twin joined mid-run; its queue wait is measured from its own
        # admission and must never go negative (it feeds the p50 stats).
        assert twin.queue_wait_ms() >= 0.0
        snapshot = metrics.snapshot()
        assert snapshot["queue_wait"]["p50_ms"] >= 0.0
        assert snapshot["queue_wait"]["count"] == 2


class TestMetricsAccounting:
    def test_queue_wait_and_run_time_observed(self):
        frontend = StubFrontend(delay_s=0.03)
        _, _, metrics = _run_pool(frontend, [_job("a")], num_workers=1)
        snapshot = metrics.snapshot(queue_depth=0, inflight=0)
        assert snapshot["counters"]["jobs_completed"] == 1
        assert snapshot["job_run"]["count"] == 1
        assert snapshot["job_run"]["max_ms"] >= 25.0  # the stub slept 30 ms
        assert snapshot["jobs_per_second"] > 0
