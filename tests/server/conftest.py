"""Shared fixtures of the server test suite.

The end-to-end tests need *deterministic* anytime behaviour, so instead
of racing real solvers they register scripted ones: a
:class:`SteppingSolver` that walks the full solution ranking of a tiny
instance with a configurable pause between improvements (guaranteeing a
known number of streamed updates), and a :class:`SleepySolver` that
holds a worker busy for a known duration (for coalescing, backpressure
and drain scenarios).
"""

from __future__ import annotations

import time
from itertools import product
from typing import List

import pytest

from repro.baselines.anytime import AnytimeSolver, TrajectoryRecorder
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.server.app import ServerConfig, run_server_in_thread
from repro.server.readiness import wait_for_server
from repro.service.frontend import ServiceFrontend
from repro.service.registry import SolverRegistry


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05):
    """Poll ``predicate`` until truthy; fail the test on timeout.

    Condition polling instead of fixed sleeps: returns on the first
    pass on a fast machine and cannot race a loaded CI runner.  Shared
    by the fault-injection and cluster-observability suites.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError(f"condition not reached within {timeout_s}s: {predicate}")


def tiny_problem(name: str = "server-test") -> MQOProblem:
    """The paper's worked example: 3 distinct solution costs (5, 3, 2)."""
    return MQOProblem(
        plans_per_query=[[2.0, 4.0], [3.0, 1.0]],
        savings={(1, 2): 5.0},
        name=name,
    )


def solution_ranking(problem: MQOProblem) -> List[MQOSolution]:
    """Valid selections ordered worst-to-best with strictly distinct costs."""
    combos = product(*[query.plan_indices for query in problem.queries])
    solutions = sorted(
        (MQOSolution(problem=problem, selected_plans=frozenset(c)) for c in combos),
        key=lambda solution: -solution.cost,
    )
    unique: List[MQOSolution] = []
    for solution in solutions:
        if not unique or solution.cost < unique[-1].cost - 1e-12:
            unique.append(solution)
    return unique


class SteppingSolver(AnytimeSolver):
    """Walks the solution ranking with a pause between improvements.

    On the tiny problem this records exactly three improvements (costs
    5 → 3 → 2), each ``step_ms`` apart, after an initial
    ``start_delay_ms`` — a deterministic anytime stream for the
    subscription tests.
    """

    name = "STEP"

    def __init__(self, step_ms: float = 40.0, start_delay_ms: float = 0.0) -> None:
        self.step_ms = step_ms
        self.start_delay_ms = start_delay_ms

    def solve(self, problem, time_budget_ms, seed=None):
        """Record every ranking step, sleeping between improvements."""
        recorder = TrajectoryRecorder(self.name)
        if self.start_delay_ms:
            time.sleep(self.start_delay_ms / 1000.0)
        for solution in solution_ranking(problem):
            recorder.record(solution)
            time.sleep(self.step_ms / 1000.0)
        return recorder.finish()


class SleepySolver(AnytimeSolver):
    """Holds a worker busy for a fixed duration, then answers."""

    name = "SLEEPY"

    def __init__(self, sleep_ms: float = 400.0) -> None:
        self.sleep_ms = sleep_ms

    def solve(self, problem, time_budget_ms, seed=None):
        """Sleep, then record the optimum."""
        recorder = TrajectoryRecorder(self.name)
        time.sleep(self.sleep_ms / 1000.0)
        recorder.record(solution_ranking(problem)[-1])
        return recorder.finish()


def scripted_registry() -> SolverRegistry:
    """STEP (fast stream), SLOW-STEP (late first update), SLEEPY (busy)."""
    registry = SolverRegistry()
    registry.register("STEP", lambda: SteppingSolver(step_ms=40.0))
    registry.register(
        "SLOW-STEP", lambda: SteppingSolver(step_ms=150.0, start_delay_ms=250.0)
    )
    registry.register("SLEEPY", lambda: SleepySolver(sleep_ms=400.0))
    return registry


def scripted_shard_frontend() -> ServiceFrontend:
    """Module-level shard frontend factory over the scripted registry.

    Shard processes rebuild their frontend from this factory; it must be
    a plain module-level function (not a fixture closure) to stay
    picklable under the forkserver/spawn start methods shards boot with.
    """
    return ServiceFrontend(registry=scripted_registry())


@pytest.fixture()
def scripted_frontend() -> ServiceFrontend:
    """A service frontend over the scripted solver registry (no cache)."""
    return ServiceFrontend(registry=scripted_registry())


@pytest.fixture()
def server_factory(scripted_frontend):
    """Start servers on background threads; stop them all at teardown.

    Sharded configs (``config.shards != 0``) automatically get the
    scripted shard-frontend factory, and readiness additionally waits
    for every shard process to report ready.
    """
    handles = []

    def start(config: ServerConfig | None = None, frontend: ServiceFrontend | None = None):
        config = config if config is not None else ServerConfig()
        sharded = config.shards != 0
        handle = run_server_in_thread(
            config,
            frontend if frontend is not None else scripted_frontend,
            frontend_factory=scripted_shard_frontend if sharded else None,
        )
        handles.append(handle)
        # Same readiness probe CI uses: a served ping, not a sleep.
        min_shards = config.shards if sharded and config.shards > 0 else None
        wait_for_server(port=handle.port, timeout_s=15.0, min_shards=min_shards)
        return handle

    yield start
    for handle in handles:
        handle.stop()
