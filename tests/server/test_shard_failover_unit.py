"""Deterministic unit tests of ShardPool fail-over ownership and dispatch.

No real shard processes here: fake process/pipe objects stand in for the
children so the tests can drive ``_on_shard_exit``, ``_sender``,
``_dispatch`` and ``admit`` directly on an event loop and pin behaviour
the process-killing stress lane cannot reach deterministically:

* **Single-owner fail-over.**  When a shard dies with jobs still parked
  in its outbox/overflow (dispatched but never sent), those jobs are in
  ``shard.assigned`` *and* sitting in the sender's queues — two paths
  see them.  Exactly one may fail them over: a job retried twice gets
  two executions, and a job "failed" while its retry runs delivers a
  spurious error to a client whose real result is then dropped.
* **Drain-time retry.**  A retry decided against a draining queue must
  fail the job cleanly instead of parking it behind the stop sentinel
  (where it would never execute and hang its client).
* **Non-blocking dispatch.**  A full outbox parks jobs in the overflow
  deque instead of blocking the (single, shared) dispatcher, and the
  sender preserves dispatch order across the outbox/overflow boundary.
* **Backlog admission bound.**  Because dispatch never blocks, jobs
  leave the capacity-checked central queue immediately; ``admit`` must
  re-impose the global bound by counting the dispatched backlog.
"""

from __future__ import annotations

import asyncio
from multiprocessing import Pipe

import pytest

from repro.exceptions import AdmissionError
from repro.mqo.problem import MQOProblem
from repro.server.metrics import ServerMetrics
from repro.server.queue import JobQueue, ServerJob
from repro.server.sharding import _OUTBOX_CAPACITY, ShardPool, _Shard, recv_message, shard_for
from repro.server.streaming import StreamBroker
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest

from tests.server.conftest import tiny_problem


class FakeProcess:
    """Stands in for a shard process handle (already dead)."""

    def __init__(self, pid: int = 4242) -> None:
        self.pid = pid

    def is_alive(self) -> bool:
        return False

    def terminate(self) -> None:
        pass

    def kill(self) -> None:
        pass

    def join(self, timeout=None) -> None:
        pass


class FakeConn:
    """A pipe end that only needs to be closable (dead-shard tests)."""

    def close(self) -> None:
        pass


def make_pool(queue_capacity: int = 16) -> ShardPool:
    """A ShardPool whose process-spawning side is never started."""
    return ShardPool(
        frontend_factory=ServiceFrontend,
        queue=JobQueue(capacity=queue_capacity),
        broker=StreamBroker(),
        metrics=ServerMetrics(),
        num_shards=2,
    )


def fake_shard(index: int, conn=None) -> _Shard:
    return _Shard(index=index, process=FakeProcess(1000 + index), conn=conn or FakeConn())


def make_job(job_id: str, seed: int, problem: MQOProblem | None = None) -> ServerJob:
    """One server job; distinct seeds keep dedupe/coalesce keys distinct."""
    request = SolveRequest(
        problem=problem if problem is not None else tiny_problem(),
        solver="greedy",
        time_budget_ms=100.0,
        seed=seed,
        job_id=job_id,
    )
    return ServerJob(job_id=job_id, client_id="unit", request=request)


def problem_routed_to(slot: int, num_shards: int = 2) -> MQOProblem:
    """A problem whose canonical hash routes to shard ``slot``."""
    for bump in range(64):
        problem = MQOProblem(
            plans_per_query=[[2.0, 4.0 + bump], [3.0, 1.0]],
            savings={(1, 2): 0.5},
            name=f"routed-{bump}",
        )
        if shard_for(problem.canonical_hash(), num_shards) == slot:
            return problem
    raise AssertionError(f"no candidate problem routed to shard {slot}")


def drain_handoff(shard: _Shard) -> list:
    """Every (job, message) item queued for a shard's sender, in order."""
    items = []
    while not shard.outbox.empty():
        items.append(shard.outbox.get_nowait())
    items.extend(shard.overflow)
    return [item for item in items if item is not None]


class TestSingleOwnerFailover:
    def test_parked_jobs_fail_over_exactly_once(self):
        """A dead shard's outbox/overflow backlog is retried once, not twice.

        Regression test: the sender's dead-shard branch used to call
        ``_reassign_or_fail`` on parked jobs that ``_on_shard_exit`` had
        already reassigned; the second call saw ``retries == 1`` and
        delivered a spurious 'shard died' failure while the retried copy
        was still executing elsewhere.
        """

        async def scenario():
            pool = make_pool()
            pool._loop = asyncio.get_running_loop()
            victim, live = fake_shard(0), fake_shard(1)
            pool.shards = [victim, live]
            respawns = []
            pool._respawn = lambda shard: respawns.append(shard.index)

            # One job already sent into the (now dead) shard...
            executing = make_job("sj-exec", seed=1)
            victim.assigned[executing.job_id] = executing
            # ...plus a full outbox and one overflow item, none of it sent.
            parked = [make_job(f"sj-parked-{i}", seed=10 + i) for i in range(_OUTBOX_CAPACITY + 1)]
            for job in parked:
                victim.assigned[job.job_id] = job
                pool._outbox_put(victim, (job, ("job", job.job_id, {}, False)))
            assert len(victim.overflow) == 1  # outbox full, last one parked

            sender = asyncio.get_running_loop().create_task(pool._sender(victim))
            pool._on_shard_exit(victim)  # what the reader thread runs at pipe EOF
            await asyncio.wait_for(sender, timeout=5.0)

            jobs = [executing, *parked]
            # Nobody was spuriously failed: every job was retried, once.
            assert all(job.result is None for job in jobs)
            assert all(job.retries == 1 for job in jobs)
            assert pool.metrics.counter("jobs_retried") == len(jobs)
            assert pool.metrics.counter("jobs_finished") == 0
            # Each retried copy is owned by the live shard exactly once.
            assert set(live.assigned) == {job.job_id for job in jobs}
            handoff_ids = [job.job_id for job, _ in drain_handoff(live)]
            assert sorted(handoff_ids) == sorted(job.job_id for job in jobs)
            assert len(set(handoff_ids)) == len(jobs)
            assert respawns == [0]

        asyncio.run(scenario())

    def test_second_shard_death_fails_jobs_cleanly(self):
        """After the single retry, a second death produces one clean error."""

        async def scenario():
            pool = make_pool()
            pool._loop = asyncio.get_running_loop()
            first, second = fake_shard(0), fake_shard(1)
            pool.shards = [first, second]
            pool._respawn = lambda shard: None

            job = make_job("sj-1", seed=1)
            first.assigned[job.job_id] = job
            pool._on_shard_exit(first)  # retried onto the second shard
            assert job.retries == 1 and job.result is None
            assert job.job_id in second.assigned

            pool._on_shard_exit(second)  # retry budget exhausted
            assert job.result is not None and not job.result.ok
            assert "shard 1" in job.result.error
            assert pool.metrics.counter("jobs_failed") == 1
            assert pool.metrics.counter("jobs_finished") == 1

        asyncio.run(scenario())


class TestDrainRetry:
    def test_retry_during_drain_fails_cleanly_instead_of_hanging(self):
        """A shard death while draining must not park a retry behind the
        stop sentinel — the job fails with a clean ServerError instead."""

        async def scenario():
            pool = make_pool()
            pool._loop = asyncio.get_running_loop()
            victim, live = fake_shard(0), fake_shard(1)
            pool.shards = [victim, live]
            respawns = []
            pool._respawn = lambda shard: respawns.append(shard.index)

            job = make_job("sj-1", seed=1)
            victim.assigned[job.job_id] = job
            pool.queue.drain()

            sender = asyncio.get_running_loop().create_task(pool._sender(victim))
            pool._on_shard_exit(victim)
            await asyncio.wait_for(sender, timeout=5.0)

            assert job.result is not None and not job.result.ok
            assert "ServerError" in job.result.error
            assert live.assigned == {}  # never re-dispatched
            assert respawns == []  # dead slots stay down during drain

        asyncio.run(scenario())


class TestNonBlockingDispatch:
    def test_full_outbox_parks_in_overflow_and_preserves_order(self):
        """Dispatch never blocks on a saturated shard, and the sender
        replays outbox-then-overflow in exact dispatch order."""

        async def scenario():
            pool = make_pool()
            pool._loop = asyncio.get_running_loop()
            conn_a, peer_a = Pipe()
            conn_b, peer_b = Pipe()
            pool.shards = [fake_shard(0, conn=conn_a), fake_shard(1, conn=conn_b)]

            hot = pool.shards[shard_for(tiny_problem().canonical_hash(), 2)]
            cold = pool.shards[1 - hot.index]
            hot_peer = peer_a if hot.index == 0 else peer_b

            jobs = [make_job(f"sj-{i}", seed=i) for i in range(_OUTBOX_CAPACITY + 3)]
            for job in jobs:
                pool._dispatch(job)  # synchronous: cannot block the loop
            assert hot.outbox.qsize() == _OUTBOX_CAPACITY
            assert len(hot.overflow) == 3

            # The saturated shard does not head-of-line block dispatch to
            # the other: a job for the cold shard still goes straight in.
            cold_job = make_job("sj-cold", seed=99, problem=problem_routed_to(cold.index))
            pool._dispatch(cold_job)
            assert cold.outbox.qsize() == 1
            assert cold_job.job_id in cold.assigned

            pool._outbox_put(hot, None)  # behind the whole backlog
            sender = asyncio.get_running_loop().create_task(pool._sender(hot))
            await asyncio.wait_for(sender, timeout=5.0)

            received = []
            while hot_peer.poll(0):
                received.append(recv_message(hot_peer))
            assert received[-1] == ("stop",)
            assert [message[1] for message in received[:-1]] == [job.job_id for job in jobs]

        asyncio.run(scenario())


class TestBacklogAdmission:
    def test_admit_rejects_once_dispatched_backlog_exceeds_bound(self):
        async def scenario():
            pool = make_pool(queue_capacity=4)
            pool._loop = asyncio.get_running_loop()
            shard_a, shard_b = fake_shard(0), fake_shard(1)
            pool.shards = [shard_a, shard_b]

            representative = make_job("sj-rep", seed=100)
            assert pool.admit(representative) == "queued"

            allowance = len(pool.shards) * (_OUTBOX_CAPACITY + 1)
            for i in range(pool.queue.capacity + allowance):
                filler = make_job(f"sj-fill-{i}", seed=200 + i)
                shard_a.assigned[filler.job_id] = filler

            with pytest.raises(AdmissionError) as excinfo:
                pool.admit(make_job("sj-over", seed=999))
            assert excinfo.value.code == "queue_full"

            # A coalescable duplicate adds no backlog and still folds
            # onto its in-flight representative.
            duplicate = make_job("sj-dup", seed=100)
            assert pool.admit(duplicate) == "coalesced"
            assert duplicate.coalesced_with == representative.job_id

        asyncio.run(scenario())
