"""End-to-end tests of the sharded (multi-process) worker tier.

Same acceptance bar as the threaded end-to-end suite, but with
``ServerConfig(shards=2)``: solving, anytime streaming, coalescing and
graceful drain must all work when execution happens in shard *processes*
and every update/result crosses a pipe before reaching the client.
Fault injection (killed shards) lives in ``test_shard_faults.py`` under
the ``stress`` marker; this file stays in the default lane.
"""

import pytest

from repro.server.app import ServerConfig
from repro.server.client import SolverClient
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend

from tests.server.conftest import scripted_registry, tiny_problem


@pytest.fixture()
def sharded_server(server_factory):
    """A running server with two shard processes (scripted solvers)."""
    return server_factory(ServerConfig(workers=2, shards=2))


class TestShardedBasics:
    def test_hello_reports_shards_and_solve_works(self, sharded_server):
        with SolverClient(port=sharded_server.port) as client:
            hello = client.hello()
            assert hello["limits"]["shards"] == 2
            result = client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
            assert result.ok
            assert result.winner == "STEP"
            assert result.best_cost == pytest.approx(2.0)

    def test_stats_expose_per_shard_block(self, sharded_server):
        with SolverClient(port=sharded_server.port) as client:
            client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
            shards = client.stats()["shards"]
        assert shards["count"] == 2
        assert shards["live"] == 2
        assert shards["ready"] == 2
        assert shards["restarts"] == 0
        assert set(shards["per_shard"]) == {"0", "1"}
        for state in shards["per_shard"].values():
            assert state["pid"] is not None
            assert state["dead"] is False
        # Exactly one shard executed the job (hash routing, one job).
        executed = [s for s in shards["per_shard"].values() if s["assigned"] == 0]
        assert len(executed) == 2  # finished: nothing left assigned

    def test_jobs_spread_across_shards_by_hash(self, sharded_server):
        # Distinct instances hash to (eventually) both shards; with 16
        # problems the chance of all landing on one shard is 2^-15.
        with SolverClient(port=sharded_server.port) as client:
            for index in range(16):
                spec = {"queries": 4, "plans": 2, "seed": index}
                assert client.solve(spec, solver="STEP", budget_ms=500.0).ok
            text = client.metrics_text()
        assert 'repro_server_shard_jobs_total{shard="0"}' in text
        assert 'repro_server_shard_jobs_total{shard="1"}' in text


class TestShardedStreaming:
    def test_streaming_updates_cross_the_process_boundary(self, sharded_server):
        updates = []
        with SolverClient(port=sharded_server.port) as client:
            result = client.solve(
                tiny_problem(), solver="STEP", budget_ms=500.0, on_update=updates.append
            )
        # Same contract as the threaded tier: >= 2 strictly-improving
        # updates with gap-free sequence numbers, all before the result.
        assert len(updates) >= 2
        costs = [frame["cost"] for frame in updates]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)
        assert [frame["seq"] for frame in updates] == list(range(1, len(updates) + 1))
        assert result.best_cost == pytest.approx(costs[-1])

    def test_second_connection_subscribes_to_sharded_job(self, sharded_server):
        with SolverClient(port=sharded_server.port) as submitter:
            with SolverClient(port=sharded_server.port) as watcher:
                job_id = submitter.submit(
                    tiny_problem(), solver="SLOW-STEP", budget_ms=2000.0
                )
                updates = []
                result = watcher.subscribe(job_id, on_update=updates.append)
                assert result.ok
                assert len(updates) >= 2
                assert submitter.wait(job_id).best_cost == result.best_cost


class TestShardedCoalescing:
    def test_duplicates_coalesce_before_crossing_a_pipe(self, sharded_server):
        with SolverClient(port=sharded_server.port) as client:
            job_a = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0, seed=5)
            job_b = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0, seed=5)
            result_a = client.wait(job_a)
            result_b = client.wait(job_b)
            stats = client.stats()
        assert result_a.ok and result_b.ok
        assert result_a.best_cost == result_b.best_cost
        assert result_b.from_cache  # echoed from the representative
        assert stats["counters"]["jobs_coalesced"] == 1
        # Nothing is left assigned: one execution crossed into a shard
        # and its twin was answered from the parent without a dispatch.
        per_shard = stats["shards"]["per_shard"]
        assert sum(state["assigned"] for state in per_shard.values()) == 0


class TestShardedCaching:
    def test_parent_cache_accumulates_shard_results(self, server_factory):
        """Fresh shard results are mirrored into the parent's cache.

        Shard caches are process-private; the parent's cache is the one
        ``--cache-file`` checkpoints to disk, so without the mirror a
        sharded server would persist an eternally-empty cache.
        """
        frontend = ServiceFrontend(registry=scripted_registry(), cache=ResultCache())
        handle = server_factory(ServerConfig(workers=2, shards=2), frontend=frontend)
        with SolverClient(port=handle.port) as client:
            result = client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
        assert result.ok and not result.from_cache
        assert len(frontend.cache) == 1
        mirrored = frontend.cache.get(result.cache_key)
        assert mirrored is not None
        assert mirrored["best_cost"] == pytest.approx(result.best_cost)


class TestShardedDrain:
    def test_graceful_drain_finishes_backlog_then_exits(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2))
        with SolverClient(port=handle.port) as client:
            job_id = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0)
            ack = client.shutdown(drain=True)
            assert ack["type"] == "draining"
            # The admitted job still completes inside its shard and the
            # result crosses back before the server exits.
            result = client.wait(job_id)
            assert result.ok
            assert result.winner == "SLEEPY"
        handle.thread.join(timeout=15.0)
        assert not handle.thread.is_alive()

    def test_idle_sharded_drain_exits_quickly(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2))
        with SolverClient(port=handle.port) as client:
            client.solve(tiny_problem(), solver="STEP", budget_ms=300.0)
            client.shutdown(drain=True)
        handle.thread.join(timeout=15.0)
        assert not handle.thread.is_alive()
