"""Unit tests of ServerMetrics: counting semantics, snapshots, Prometheus.

The counting-semantics pins matter: ``jobs_completed`` counts successes
only (a stream of failing jobs must not inflate ``jobs_per_second``),
``jobs_failed`` counts failures, and ``jobs_finished`` is their total.
"""

from repro.server.metrics import EndpointStats, LatencyStats, ServerMetrics


class TestJobCounting:
    def test_failed_jobs_do_not_count_as_completed(self):
        metrics = ServerMetrics()
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=False)
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=True)
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=True)
        assert metrics.counter("jobs_completed") == 1
        assert metrics.counter("jobs_failed") == 2
        assert metrics.counter("jobs_finished") == 3

    def test_snapshot_rates_split_successes_from_finished(self):
        metrics = ServerMetrics()
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=False)
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=True)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["jobs_completed"] == 1
        assert snapshot["counters"]["jobs_finished"] == 2
        # uptime_s rounds to 0.0 this early; the rates use the raw value.
        assert snapshot["uptime_s"] >= 0.0
        assert snapshot["jobs_per_second"] <= snapshot["jobs_finished_per_second"]
        assert snapshot["jobs_finished_per_second"] > 0

    def test_queue_wait_and_run_observed_for_failures_too(self):
        metrics = ServerMetrics()
        metrics.observe_job(queue_wait_ms=2.0, run_ms=8.0, failed=True)
        assert metrics.queue_wait.count == 1
        assert metrics.job_run.count == 1

    def test_unknown_counter_reads_zero_and_lazily_creates(self):
        metrics = ServerMetrics()
        assert metrics.counter("never_touched") == 0
        metrics.increment("custom_events", 3)
        assert metrics.counter("custom_events") == 3

    def test_instances_are_isolated(self):
        first = ServerMetrics()
        second = ServerMetrics()
        first.increment("jobs_submitted")
        assert second.counter("jobs_submitted") == 0


class TestLatencyStats:
    def test_snapshot_shape_and_values(self):
        stats = LatencyStats(window=8)
        for value in (10.0, 20.0, 30.0, 40.0):
            stats.observe(value)
        snapshot = stats.snapshot()
        assert snapshot == {
            "count": 4,
            "mean_ms": 25.0,
            "p50_ms": 20.0,
            "p99_ms": 40.0,
            "max_ms": 40.0,
        }

    def test_empty_snapshot_is_all_zero(self):
        assert LatencyStats().snapshot() == {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }

    def test_window_bounds_percentiles_but_not_lifetime_stats(self):
        stats = LatencyStats(window=2)
        for value in (100.0, 1.0, 2.0):
            stats.observe(value)
        assert stats.count == 3
        assert stats.max_ms == 100.0
        # The 100 ms outlier scrolled out of the percentile window.
        assert stats.percentile(1.0) == 2.0


class TestEndpointStats:
    def test_requests_errors_and_snapshot(self):
        endpoint = EndpointStats(op="solve")
        endpoint.observe(5.0, error=False)
        endpoint.observe(7.0, error=True)
        assert endpoint.requests == 2
        assert endpoint.errors == 1
        snapshot = endpoint.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        assert snapshot["count"] == 2


class TestPrometheusText:
    def test_exposition_carries_counters_gauges_and_histograms(self):
        metrics = ServerMetrics()
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=False)
        metrics.observe_job(queue_wait_ms=1.0, run_ms=5.0, failed=True)
        metrics.observe_request("solve", 3.0)
        text = metrics.prometheus_text(queue_depth=4, inflight=2)
        assert "# TYPE repro_server_jobs_completed_total counter" in text
        assert "repro_server_jobs_completed_total 1" in text
        assert "repro_server_jobs_finished_total 2" in text
        assert "repro_server_jobs_failed_total 1" in text
        assert "repro_server_queue_depth 4" in text
        assert "repro_server_inflight_jobs 2" in text
        assert "repro_server_uptime_seconds" in text
        assert 'repro_server_requests_total{op="solve"} 1' in text
        assert 'repro_server_queue_wait_ms_bucket{le="+Inf"} 2' in text
        assert "repro_server_job_run_ms_count 2" in text
