"""Tests of the ``health`` protocol op and its client/readiness wiring."""

import pytest

from repro.server import protocol
from repro.server.app import ServerConfig
from repro.server.client import SolverClient

from tests.server.conftest import tiny_problem


class TestProtocolSurface:
    def test_health_is_a_request_op(self):
        assert "health" in protocol.REQUEST_OPS

    def test_health_frame_shape(self):
        frame = protocol.health_frame("req-1", {"verdict": "ok", "alive": 2})
        assert frame == {
            "id": "req-1",
            "type": "health",
            "health": {"verdict": "ok", "alive": 2},
        }


class TestThreadTierHealth:
    def test_idle_server_reports_ok(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            health = client.health()
        assert health["verdict"] == "ok"
        assert health["tier"] == "threads"
        assert health["active"] == 0
        assert health["queue_depth"] == 0
        assert health["draining"] is False
        assert health["uptime_s"] >= 0.0
        assert isinstance(health["events"], list)

    def test_health_includes_recent_lifecycle_events(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            kinds = [event["kind"] for event in client.health()["events"]]
        assert "server_started" in kinds

    def test_draining_server_reports_draining(self, server_factory):
        handle = server_factory(ServerConfig(workers=1))
        with SolverClient(port=handle.port) as client:
            job_id = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0)
            ack = client.shutdown(drain=True)
            assert ack["type"] == "draining"
            health = client.health()
            assert health["verdict"] == "draining"
            assert health["draining"] is True
            assert client.wait(job_id).ok
        handle.thread.join(timeout=15.0)


class TestShardTierHealth:
    def test_sharded_server_reports_per_shard_state(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2))
        with SolverClient(port=handle.port) as client:
            client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
            health = client.health()
        assert health["verdict"] == "ok"
        assert health["tier"] == "shards"
        assert health["count"] == 2
        assert health["alive"] == 2
        assert health["restarts"] == 0
        assert set(health["shards"]) == {"0", "1"}
        for state in health["shards"].values():
            assert state["pid"] is not None
            assert state["ready"] is True
            assert state["dead"] is False
            assert state["stale"] is False
            assert state["heartbeat_age_s"] >= 0.0
            assert state["restarts"] == 0

    def test_heartbeats_keep_shards_fresh(self, server_factory):
        # With a fast heartbeat the reported age stays well under the
        # staleness threshold even right after an idle stretch.
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_heartbeat_s=0.1))
        with SolverClient(port=handle.port) as client:
            health = client.health()
        for state in health["shards"].values():
            assert state["heartbeat_age_s"] < 3.0
            assert state["stale"] is False


class TestReadinessUsesHealth:
    def test_wait_for_server_returns_once_shards_alive(self, server_factory):
        # server_factory already routes through wait_for_server with
        # min_shards; reaching this assertion means the probe accepted a
        # healthy sharded server.
        handle = server_factory(ServerConfig(workers=2, shards=2))
        with SolverClient(port=handle.port) as client:
            assert client.health()["alive"] == 2

    def test_probe_rejects_insufficient_min_shards(self, server_factory):
        from repro.exceptions import ServerError
        from repro.server.readiness import wait_for_server

        handle = server_factory(ServerConfig(workers=2, shards=2))
        with pytest.raises(ServerError, match="2/3 shards alive"):
            wait_for_server(port=handle.port, timeout_s=1.0, min_shards=3)
