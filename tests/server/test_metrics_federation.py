"""Unit tests of shard metric snapshot federation in ServerMetrics."""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.server.metrics import ServerMetrics

from tests.obs.test_prometheus_exposition import validate_exposition


def shard_registry(jobs: int = 3, depth: float = 5.0) -> MetricsRegistry:
    """A stand-in for one shard's process-global registry."""
    registry = MetricsRegistry()
    registry.counter("repro_fedtest_jobs_total", "jobs").inc(jobs)
    registry.gauge("repro_fedtest_depth", "depth").set(depth)
    histogram = registry.histogram("repro_fedtest_lat_ms", "lat", buckets=(10.0, 100.0))
    for _ in range(jobs):
        histogram.observe(50.0)
    return registry


class TestRecordShardSnapshot:
    def test_latest_snapshot_per_slot_wins(self):
        metrics = ServerMetrics()
        metrics.record_shard_snapshot(0, shard_registry(jobs=3).to_snapshot())
        metrics.record_shard_snapshot(0, shard_registry(jobs=7).to_snapshot())
        text = metrics.prometheus_text()
        # Cumulative snapshots replace, never add — otherwise every
        # heartbeat would double-count the shard's history.
        assert 'repro_fedtest_jobs_total{shard="0"} 7' in text

    def test_snapshots_returns_a_copy(self):
        metrics = ServerMetrics()
        metrics.record_shard_snapshot(1, shard_registry().to_snapshot())
        snapshots = metrics.shard_metric_snapshots()
        snapshots.clear()
        assert metrics.shard_metric_snapshots()


class TestFederatedExposition:
    def test_counters_get_shard_labels_plus_summed_rollup(self):
        metrics = ServerMetrics()
        metrics.record_shard_snapshot(0, shard_registry(jobs=3).to_snapshot())
        metrics.record_shard_snapshot(1, shard_registry(jobs=4).to_snapshot())
        families = validate_exposition(metrics.prometheus_text())
        samples = {
            labels.get("shard", ""): value
            for labels, value in families["repro_fedtest_jobs_total"]["samples"]
        }
        assert samples == {"0": 3.0, "1": 4.0, "": 7.0}

    def test_rollup_gauge_is_last_write_wins_in_shard_order(self):
        metrics = ServerMetrics()
        metrics.record_shard_snapshot(0, shard_registry(depth=5.0).to_snapshot())
        metrics.record_shard_snapshot(1, shard_registry(depth=9.0).to_snapshot())
        families = validate_exposition(metrics.prometheus_text())
        samples = {
            labels.get("shard", ""): value
            for labels, value in families["repro_fedtest_depth"]["samples"]
        }
        assert samples["0"] == 5.0
        assert samples["1"] == 9.0
        assert samples[""] == 9.0  # highest shard index merged last

    def test_histograms_merge_bucket_wise_into_the_rollup(self):
        metrics = ServerMetrics()
        metrics.record_shard_snapshot(0, shard_registry(jobs=2).to_snapshot())
        metrics.record_shard_snapshot(1, shard_registry(jobs=3).to_snapshot())
        registry = metrics.federated_registry()
        rollup = registry.histogram("repro_fedtest_lat_ms", buckets=(10.0, 100.0))
        assert rollup.count == 5
        assert rollup.total == 250.0
        per_shard = registry.histogram(
            "repro_fedtest_lat_ms", labels={"shard": "1"}, buckets=(10.0, 100.0)
        )
        assert per_shard.count == 3

    def test_parent_instance_metrics_still_render(self):
        metrics = ServerMetrics()
        metrics.increment("jobs_submitted")
        metrics.record_shard_snapshot(0, shard_registry().to_snapshot())
        text = metrics.prometheus_text(queue_depth=4, inflight=2)
        assert "repro_server_jobs_submitted_total 1" in text
        assert "repro_server_queue_depth 4" in text

    def test_exposition_stays_structurally_valid(self):
        metrics = ServerMetrics()
        metrics.observe_job(queue_wait_ms=1.0, run_ms=2.0, failed=False)
        metrics.observe_shard_job(0, failed=False)
        metrics.observe_shard_retry(0)
        metrics.set_shard_gauge("outbox_depth", 0, 3.0, "Outbox depth.")
        metrics.record_shard_snapshot(0, shard_registry().to_snapshot())
        validate_exposition(metrics.prometheus_text(queue_depth=0, inflight=0))

    def test_render_is_rebuilt_fresh_each_time(self):
        metrics = ServerMetrics()
        metrics.record_shard_snapshot(0, shard_registry(jobs=2).to_snapshot())
        first = metrics.prometheus_text()
        second = metrics.prometheus_text()
        # Rendering twice must not accumulate (fresh merge per render).
        assert 'repro_fedtest_jobs_total{shard="0"} 2' in first
        assert first == second or "repro_server_uptime_seconds" in first


class TestSnapshotMergeRace:
    """Regression: snapshot()/prometheus_text() vs heartbeat merges.

    Shard heartbeats land on the event-loop thread while the bench
    thread reads ``snapshot()`` mid-drain; both sides go through the
    registry/metrics locks, so hammering them concurrently must neither
    raise nor corrupt the exposition.
    """

    def test_concurrent_heartbeats_and_renders(self):
        metrics = ServerMetrics()
        errors = []
        stop = threading.Event()

        def heartbeats():
            jobs = 0
            try:
                while not stop.is_set():
                    jobs += 1
                    for shard in (0, 1):
                        metrics.record_shard_snapshot(
                            shard, shard_registry(jobs=jobs).to_snapshot()
                        )
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        writer = threading.Thread(target=heartbeats)
        writer.start()
        try:
            for _ in range(100):
                metrics.snapshot(queue_depth=1, inflight=1)
                validate_exposition(metrics.prometheus_text())
        finally:
            stop.set()
            writer.join(timeout=10.0)
        assert not errors
        assert not writer.is_alive()

    def test_concurrent_increments_and_snapshots(self):
        metrics = ServerMetrics()
        stop = threading.Event()
        errors = []

        def incrementer():
            try:
                while not stop.is_set():
                    metrics.increment("jobs_completed")
                    metrics.observe_job(queue_wait_ms=0.5, run_ms=1.0, failed=False)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        writer = threading.Thread(target=incrementer)
        writer.start()
        try:
            for _ in range(100):
                snapshot = metrics.snapshot()
                assert snapshot["counters"]["jobs_completed"] >= 0
        finally:
            stop.set()
            writer.join(timeout=10.0)
        assert not errors
