"""Stream broker and anytime-observer tests.

Covers the two halves of live streaming: the thread-local observer hook
in :mod:`repro.baselines.anytime` (including propagation into portfolio
member threads) and the :class:`StreamBroker` fan-out with its monotone
incumbent filter.
"""

import threading

from repro.baselines.anytime import (
    TrajectoryRecorder,
    current_improvement_observers,
    observe_improvements,
)
from repro.server.streaming import StreamBroker
from repro.service.portfolio import PortfolioScheduler
from repro.service.registry import SolverRegistry

from tests.server.conftest import SteppingSolver, solution_ranking, tiny_problem


class TestImprovementObservers:
    def test_record_notifies_installed_observer(self):
        events = []
        recorder = TrajectoryRecorder("T")
        ranking = solution_ranking(tiny_problem())
        with observe_improvements(lambda name, t, cost: events.append((name, cost))):
            for solution in ranking:
                recorder.record(solution)
            # Re-recording the final (non-improving) incumbent is silent.
            recorder.record(ranking[-1])
        assert [name for name, _ in events] == ["T"] * len(ranking)
        assert [cost for _, cost in events] == [s.cost for s in ranking]

    def test_observers_nest_and_restore(self):
        outer, inner = [], []
        recorder = TrajectoryRecorder("T")
        ranking = solution_ranking(tiny_problem())
        with observe_improvements(lambda *event: outer.append(event)):
            with observe_improvements(lambda *event: inner.append(event)):
                recorder.record(ranking[0])
            recorder.record(ranking[1])
        recorder.record(ranking[2])
        assert len(inner) == 1  # only while the inner context was active
        assert len(outer) == 2  # restored after the inner context exited
        assert current_improvement_observers() == ()

    def test_observers_are_thread_local(self):
        events = []
        ranking = solution_ranking(tiny_problem())

        def other_thread():
            TrajectoryRecorder("OTHER").record(ranking[0])

        with observe_improvements(lambda *event: events.append(event)):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert events == []  # the observer was installed on *this* thread

    def test_observer_exceptions_are_swallowed(self):
        def bad_observer(name, t, cost):
            raise RuntimeError("listener bug")

        recorder = TrajectoryRecorder("T")
        with observe_improvements(bad_observer):
            assert recorder.record(solution_ranking(tiny_problem())[0])

    def test_portfolio_propagates_observers_into_member_threads(self):
        registry = SolverRegistry()
        registry.register("STEP-A", lambda: SteppingSolver(step_ms=1.0))
        registry.register("STEP-B", lambda: SteppingSolver(step_ms=1.0))
        scheduler = PortfolioScheduler(registry=registry, mode="threads")
        events = []
        with observe_improvements(lambda name, t, cost: events.append(cost)):
            outcome = scheduler.solve(tiny_problem(), time_budget_ms=500.0, seed=1)
        assert outcome.winner
        # Both members ran on pool threads, yet their improvements were
        # forwarded to the caller's observer.
        assert len(events) == 2 * len(solution_ranking(tiny_problem()))


class TestStreamBroker:
    def test_publish_requires_open_channel(self):
        broker = StreamBroker()
        assert not broker.publish_improvement("nope", "S", 1.0, 10.0)

    def test_monotone_filter_and_sequence(self):
        broker = StreamBroker()
        broker.open("j")
        frames = []
        assert broker.subscribe("j", frames.append)
        assert broker.publish_improvement("j", "A", 1.0, 10.0)
        assert not broker.publish_improvement("j", "B", 2.0, 11.0)  # worse
        assert not broker.publish_improvement("j", "B", 3.0, 10.0)  # equal
        assert broker.publish_improvement("j", "B", 4.0, 5.0)
        assert [frame["seq"] for frame in frames] == [1, 2]
        assert [frame["cost"] for frame in frames] == [10.0, 5.0]
        assert [frame["solver"] for frame in frames] == ["A", "B"]

    def test_close_reaches_update_and_result_sinks(self):
        broker = StreamBroker()
        broker.open("j")
        update_frames, result_frames = [], []
        broker.subscribe("j", update_frames.append, updates=True)
        broker.subscribe("j", result_frames.append, updates=False)
        broker.publish_improvement("j", "A", 1.0, 10.0)
        delivered = broker.close("j", {"type": "result", "job_id": "j", "result": {}})
        assert delivered == 2
        assert [frame["type"] for frame in update_frames] == ["update", "result"]
        assert [frame["type"] for frame in result_frames] == ["result"]
        # Closed channels are gone: further publishes and subscribes fail.
        assert not broker.publish_improvement("j", "A", 2.0, 1.0)
        assert not broker.subscribe("j", update_frames.append)
        assert len(broker) == 0

    def test_subscribe_unknown_job_returns_false(self):
        assert not StreamBroker().subscribe("ghost", lambda frame: None)

    def test_discard_drops_without_delivery(self):
        broker = StreamBroker()
        broker.open("j")
        frames = []
        broker.subscribe("j", frames.append)
        broker.discard("j")
        assert broker.close("j", {"type": "result"}) == 0
        assert frames == []

    def test_streamed_metric_hook_counts_deliveries(self):
        counts = []
        broker = StreamBroker(on_update_streamed=counts.append)
        broker.open("j")
        broker.subscribe("j", lambda frame: None)
        broker.subscribe("j", lambda frame: None)
        broker.publish_improvement("j", "A", 1.0, 10.0)
        broker.open("lonely")  # no sinks: improvement filtered from metrics
        broker.publish_improvement("lonely", "A", 1.0, 10.0)
        assert counts == [2]

    def test_dead_sink_does_not_stop_fanout(self):
        broker = StreamBroker()
        broker.open("j")
        healthy = []

        def dead_sink(frame):
            raise ConnectionError("client went away")

        broker.subscribe("j", dead_sink)
        broker.subscribe("j", healthy.append)
        assert broker.publish_improvement("j", "A", 1.0, 10.0)
        assert len(healthy) == 1


class TestProgressFrames:
    def test_progress_requires_open_channel(self):
        assert not StreamBroker().publish_progress("nope", "D", 1, 3)

    def test_progress_frames_share_the_sequence_counter(self):
        broker = StreamBroker()
        broker.open("j")
        frames = []
        broker.subscribe("j", frames.append)
        assert broker.publish_progress("j", "decomposed_qa", 1, 3)
        assert broker.publish_improvement("j", "decomposed_qa", 1.0, 10.0)
        assert broker.publish_progress("j", "decomposed_qa", 2, 3)
        # Unlike improvements, every completion is news — no incumbent filter.
        assert broker.publish_progress("j", "decomposed_qa", 3, 3)
        assert [frame["seq"] for frame in frames] == [1, 2, 3, 4]
        assert [frame["type"] for frame in frames] == [
            "progress",
            "update",
            "progress",
            "progress",
        ]
        progress = [f for f in frames if f["type"] == "progress"]
        assert [(f["completed"], f["total"]) for f in progress] == [(1, 3), (2, 3), (3, 3)]
        assert all(f["solver"] == "decomposed_qa" for f in progress)

    def test_progress_counts_streamed_deliveries(self):
        counts = []
        broker = StreamBroker(on_update_streamed=counts.append)
        broker.open("j")
        broker.subscribe("j", lambda frame: None)
        broker.publish_progress("j", "D", 1, 2)
        assert counts == [1]
