"""End-to-end tests of the server's fusion window (FusionPool).

Covers the tentpole contract of cross-request anneal fusion from the
client's point of view: concurrent annealing jobs admitted within one
window are executed as one fused block-diagonal anneal, yet every
client sees exactly the solo behaviour — its own monotone anytime
stream, its own result, bit-identical costs to an unfused solve — plus
the fusion observability (counters, gauge, histogram, stats block) and
the drain guarantee that a staged window still executes on shutdown.
"""

from __future__ import annotations

import threading

import pytest

from repro.server.app import ServerConfig
from repro.server.client import SolverClient
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest
from repro.mqo.generator import generate_paper_testcase

from tests.server.conftest import wait_until


@pytest.fixture()
def qa_frontend():
    """A frontend over the real registry (QA must be solvable)."""
    return ServiceFrontend()


def _fusion_config(**overrides):
    defaults = dict(workers=2, fusion_window_ms=500.0, fusion_max_jobs=2)
    defaults.update(overrides)
    return ServerConfig(**defaults)


def _spec(seed, budget_ms=120.0):
    problem = generate_paper_testcase(4, 2, seed=seed)
    return problem, {"solver": "QA", "budget_ms": budget_ms, "seed": seed}


class TestFusedStreaming:
    def test_two_clients_in_one_window_each_get_their_own_stream(
        self, server_factory, qa_frontend
    ):
        """The satellite contract: concurrent clients sharing one fused
        window each receive their own monotone improvement stream and
        their own (solo-identical) result."""
        handle = server_factory(_fusion_config(), frontend=qa_frontend)
        results = [None, None]
        streams = [[], []]

        def run(index):
            problem, kwargs = _spec(seed=index + 1)
            with SolverClient(port=handle.port, client_name=f"fuse-{index}") as client:
                results[index] = client.solve(
                    problem,
                    on_update=lambda update, i=index: streams[i].append(update),
                    **kwargs,
                )

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        solo = ServiceFrontend()
        for index in range(2):
            result = results[index]
            assert result.ok, result.error
            # Bit-identity with an unfused solve at the same seed.
            problem, _ = _spec(seed=index + 1)
            reference = solo.submit(
                SolveRequest(
                    problem=problem, solver="QA", time_budget_ms=120.0, seed=index + 1
                )
            )
            assert result.best_cost == reference.best_cost
            assert result.selected_plans == reference.selected_plans
            # The stream is this job's own monotone trajectory.
            costs = [update["cost"] for update in streams[index]]
            assert costs, "a fused streaming job must publish its improvements"
            assert all(b < a for a, b in zip(costs, costs[1:]))
            assert costs[-1] == result.best_cost
            job_ids = {update["job_id"] for update in streams[index]}
            assert len(job_ids) == 1  # nobody receives a window peer's updates

        with SolverClient(port=handle.port) as observer:
            stats = observer.stats()
        assert stats["counters"]["fusion_windows"] >= 1
        assert stats["counters"]["fusion_jobs"] >= 2
        assert stats["fusion"]["max_jobs"] == 2
        assert stats["fusion_window"]["count"] >= 1

    def test_fusion_metrics_exported_to_prometheus(self, server_factory, qa_frontend):
        handle = server_factory(_fusion_config(), frontend=qa_frontend)
        problem, kwargs = _spec(seed=9)
        with SolverClient(port=handle.port) as client:
            client.solve(problem, **kwargs)
            client.solve(problem, **{**kwargs, "seed": 10})
            text = client.metrics_text()
        assert "repro_server_fusion_jobs_total" in text
        assert "repro_server_fusion_batch_size" in text
        assert "repro_server_fusion_window_ms_bucket" in text


class TestFusionPoolBehaviour:
    def test_non_fusable_solver_runs_solo(self, server_factory):
        """Scripted (non-annealing) solvers bypass the window entirely."""
        handle = server_factory(_fusion_config(fusion_window_ms=5000.0))
        updates = []
        with SolverClient(port=handle.port) as client:
            result = client.solve(
                {"queries": 2, "plans": 2},
                solver="STEP",
                budget_ms=400.0,
                on_update=updates.append,
            )
            stats = client.stats()
        assert result.ok
        assert len(updates) >= 2  # STEP streams live improvements
        assert stats["counters"]["fusion_windows"] == 0

    def test_drain_flushes_a_staged_window(self, server_factory, qa_frontend):
        """A job staged in a not-yet-expired window completes on shutdown."""
        handle = server_factory(
            _fusion_config(fusion_window_ms=30_000.0, fusion_max_jobs=8),
            frontend=qa_frontend,
        )
        result_box = {}

        def run():
            problem, kwargs = _spec(seed=3)
            with SolverClient(port=handle.port, timeout_s=30.0) as client:
                result_box["result"] = client.solve(problem, **kwargs)

        thread = threading.Thread(target=run)
        thread.start()

        def staged():
            with SolverClient(port=handle.port) as observer:
                return observer.stats()["fusion"]["staged"] >= 1

        wait_until(staged)
        handle.stop()  # graceful drain must flush the open window
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert result_box["result"].ok

    def test_window_fills_to_max_jobs_under_load(self, server_factory, qa_frontend):
        """A burst larger than one window splits into full windows."""
        handle = server_factory(
            _fusion_config(workers=4, fusion_window_ms=2000.0, fusion_max_jobs=3),
            frontend=qa_frontend,
        )
        results = [None] * 6

        def run(index):
            problem, kwargs = _spec(seed=20 + index, budget_ms=80.0)
            with SolverClient(port=handle.port, client_name=f"burst-{index}") as client:
                results[index] = client.solve(problem, **kwargs)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result.ok for result in results)
        with SolverClient(port=handle.port) as observer:
            stats = observer.stats()
        assert stats["counters"]["fusion_jobs"] == 6
        assert stats["counters"]["fusion_windows"] >= 2
