"""Live end-to-end tests: a real server on localhost, real sockets.

Each test boots a :class:`SolverServer` on a background thread (port 0,
scripted solver registry from ``conftest``) and talks to it through
:class:`SolverClient`.  The acceptance-critical behaviours live here:

* a client subscribed to a running job receives **at least two**
  incremental anytime updates before the final result,
* duplicate in-flight requests are coalesced into one execution,
* admission control rejects jobs under backpressure,
* a graceful drain finishes admitted jobs and delivers their results
  before the server exits.
"""

import pytest

from repro.exceptions import AdmissionError, ProtocolError, ServerError
from repro.server.app import ServerConfig
from repro.server.client import SolverClient

from tests.server.conftest import tiny_problem


class TestBasics:
    def test_hello_ping_and_solve(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            hello = client.hello()
            assert hello["server"] == "repro-mqo"
            assert set(hello["solvers"]) == {"STEP", "SLOW-STEP", "SLEEPY"}
            assert client.ping()
            result = client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
            assert result.ok
            assert result.winner == "STEP"
            assert result.best_cost == pytest.approx(2.0)

    def test_generator_spec_and_registered_solver(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            result = client.solve(
                {"queries": 4, "plans": 2, "seed": 3}, solver="STEP", budget_ms=500.0
            )
            assert result.ok and result.is_valid

    def test_unknown_job_wait_is_a_protocol_error(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            with pytest.raises(ProtocolError):
                client.wait("sj-does-not-exist")

    def test_bad_spec_reports_bad_request(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            with pytest.raises(ServerError):
                client.solve({"nonsense": True})
            assert client.ping()  # the connection survives the bad request


class TestStreaming:
    def test_streaming_solve_gets_incremental_updates(self, server_factory):
        handle = server_factory()
        updates = []
        with SolverClient(port=handle.port) as client:
            result = client.solve(
                tiny_problem(), solver="STEP", budget_ms=500.0, on_update=updates.append
            )
        # Acceptance: >= 2 incremental updates arrive before the result
        # (the callback fires during solve(); the list is full before it
        # returns), strictly improving, gap-free sequence numbers.
        assert len(updates) >= 2
        costs = [frame["cost"] for frame in updates]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)
        assert [frame["seq"] for frame in updates] == list(range(1, len(updates) + 1))
        assert result.best_cost == pytest.approx(costs[-1])
        assert all(frame["solver"] == "STEP" for frame in updates)

    def test_subscriber_on_second_connection_sees_updates(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as submitter:
            with SolverClient(port=handle.port) as watcher:
                # SLOW-STEP waits 250 ms before its first improvement, so
                # the subscription is in place well before updates flow.
                job_id = submitter.submit(
                    tiny_problem(), solver="SLOW-STEP", budget_ms=2000.0
                )
                updates = []
                result = watcher.subscribe(job_id, on_update=updates.append)
                assert result.ok
                assert len(updates) >= 2
                assert [frame["job_id"] for frame in updates] == [job_id] * len(updates)
                # The submitter still collects the same final result.
                assert submitter.wait(job_id).best_cost == result.best_cost

    def test_recently_finished_jobs_survive_the_soft_prune_bound(
        self, server_factory
    ):
        # completed_jobs_kept=1 with the default 300 s retention: results
        # of jobs a pipelined client has not collected yet must survive.
        handle = server_factory(ServerConfig(workers=1, completed_jobs_kept=1))
        with SolverClient(port=handle.port) as client:
            job_ids = [
                client.submit(tiny_problem(f"prune-{i}"), solver="STEP", budget_ms=300.0)
                for i in range(3)
            ]
            # Collect in submit order after all three finished.
            results = [client.wait(job_id) for job_id in job_ids]
            assert all(result.ok for result in results)

    def test_subscribe_to_finished_job_returns_result_without_updates(
        self, server_factory
    ):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            job_id = client.submit(tiny_problem(), solver="STEP", budget_ms=500.0)
            first = client.wait(job_id)
            updates = []
            again = client.subscribe(job_id, on_update=updates.append)
            assert updates == []
            assert again.best_cost == first.best_cost


class TestCoalescing:
    def test_duplicate_inflight_requests_coalesce(self, server_factory):
        handle = server_factory(ServerConfig(workers=1))
        with SolverClient(port=handle.port) as client:
            job_a = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0, seed=5)
            job_b = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0, seed=5)
            assert job_a != job_b
            result_a = client.wait(job_a)
            result_b = client.wait(job_b)
            stats = client.stats()
        assert result_a.ok and result_b.ok
        assert result_a.best_cost == result_b.best_cost
        assert not result_a.from_cache
        assert result_b.from_cache  # echoed, no second execution
        assert stats["counters"]["jobs_coalesced"] == 1
        assert stats["counters"]["jobs_submitted"] == 2

    def test_different_budgets_do_not_coalesce(self, server_factory):
        handle = server_factory(ServerConfig(workers=2))
        with SolverClient(port=handle.port) as client:
            job_a = client.submit(tiny_problem(), solver="STEP", budget_ms=400.0, seed=5)
            job_b = client.submit(tiny_problem(), solver="STEP", budget_ms=500.0, seed=5)
            client.wait(job_a)
            client.wait(job_b)
            assert client.stats()["counters"]["jobs_coalesced"] == 0


class TestAdmissionControl:
    def test_backpressure_rejects_beyond_capacity(self, server_factory):
        handle = server_factory(ServerConfig(workers=1, queue_capacity=1))
        rejected = []
        accepted = []
        with SolverClient(port=handle.port) as client:
            for index in range(4):
                try:
                    accepted.append(
                        client.submit(
                            tiny_problem(f"bp-{index}"),
                            solver="SLEEPY",
                            budget_ms=2000.0,
                            seed=index,
                        )
                    )
                except AdmissionError as exc:
                    rejected.append(exc)
            assert rejected, "queue_capacity=1 with a busy worker must reject"
            assert all(exc.code == "queue_full" for exc in rejected)
            for job_id in accepted:
                assert client.wait(job_id).ok  # admitted jobs still finish
            assert client.stats()["counters"]["jobs_rejected"] == len(rejected)

    def test_client_quota_enforced(self, server_factory):
        handle = server_factory(
            ServerConfig(workers=1, queue_capacity=16, max_jobs_per_client=1)
        )
        with SolverClient(port=handle.port, client_name="greedy") as client:
            rejections = []
            for index in range(3):
                try:
                    client.submit(
                        tiny_problem(f"q-{index}"),
                        solver="SLEEPY",
                        budget_ms=2000.0,
                        seed=index,
                    )
                except AdmissionError as exc:
                    rejections.append(exc)
            # One job runs, one fills the quota of a single queued job;
            # at least the third submission must bounce off the quota.
            assert rejections
            assert all(exc.code == "client_quota" for exc in rejections)

    def test_budget_cap_enforced(self, server_factory):
        handle = server_factory(ServerConfig(max_budget_ms=100.0))
        with SolverClient(port=handle.port) as client:
            with pytest.raises(AdmissionError) as excinfo:
                client.submit(tiny_problem(), solver="STEP", budget_ms=5000.0)
            assert excinfo.value.code == "budget"


class TestClientFraming:
    def test_oversized_server_frame_fails_cleanly(self, server_factory):
        handle = server_factory()
        # A client limit smaller than the hello frame: the client must
        # close the connection with one clear error instead of parsing
        # the remainder of the line as garbage frames forever.
        client = SolverClient(port=handle.port, max_frame_bytes=64)
        try:
            with pytest.raises(ProtocolError, match="exceeds the client's"):
                client.hello()
            with pytest.raises(ServerError):
                client.ping()  # the connection was closed, not desynced
        finally:
            client.close()


class TestStatsEndpoint:
    def test_snapshot_reports_endpoints_and_gauges(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            client.ping()
            client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
            stats = client.stats()
        # The server_factory readiness probe polls with a raw TCP
        # connect plus a pinging client of its own before the test
        # client connects, so ping/connection counters carry an
        # unknown (>= 1) probe contribution on top of this test's.
        assert stats["endpoints"]["ping"]["requests"] >= 2
        assert stats["endpoints"]["solve"]["requests"] == 1
        assert stats["endpoints"]["solve"]["p50_ms"] >= 0.0
        assert stats["counters"]["jobs_completed"] == 1
        assert stats["counters"]["connections_opened"] >= 2
        assert stats["queue_depth"] == 0
        assert stats["inflight"] == 0
        assert stats["jobs_per_second"] > 0
        assert stats["draining"] is False


class TestGracefulDrain:
    def test_drain_finishes_admitted_jobs_then_exits(self, server_factory):
        handle = server_factory(ServerConfig(workers=1))
        with SolverClient(port=handle.port) as client:
            job_id = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=2000.0)
            ack = client.shutdown(drain=True)
            assert ack["type"] == "draining"
            assert ack["pending_jobs"] >= 1
            # New work is refused while draining...
            with pytest.raises((AdmissionError, ServerError)):
                client.submit(tiny_problem("late"), solver="STEP", budget_ms=100.0)
            # ...but the admitted job still completes and delivers.
            result = client.wait(job_id)
            assert result.ok
            assert result.winner == "SLEEPY"
        handle.thread.join(timeout=10.0)
        assert not handle.thread.is_alive()

    def test_idle_drain_exits_quickly(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            client.solve(tiny_problem(), solver="STEP", budget_ms=300.0)
            client.shutdown(drain=True)
        handle.thread.join(timeout=10.0)
        assert not handle.thread.is_alive()
