"""End-to-end cluster observability: a sharded server's ``metrics`` op
serves shard-side series with ``shard`` labels plus a cluster rollup,
and ``health`` reports every shard alive.

Shard-side counters (e.g. solver improvements, recorded inside the
shard *processes*) can only reach the parent through snapshot
federation over the control pipe — these tests are the proof that the
heartbeat path works over a real socket, not just in unit tests.
"""

import re

import pytest

from repro.server.app import ServerConfig
from repro.server.client import SolverClient

from tests.server.conftest import wait_until

#: A shard-side counter: incremented by TrajectoryRecorder inside the
#: shard processes, never by the parent while it merely routes jobs.
_IMPROVEMENTS = "repro_solver_improvements_total"


def _series_value(text: str, name: str, labels: str = "") -> float:
    """The value of one exposition series, or -1.0 when absent."""
    pattern = re.compile(rf"^{re.escape(name + labels)} (\S+)$", re.MULTILINE)
    match = pattern.search(text)
    return float(match.group(1)) if match else -1.0


@pytest.fixture()
def cluster(server_factory):
    """A two-shard server with a fast federation heartbeat."""
    return server_factory(ServerConfig(workers=2, shards=2, shard_heartbeat_s=0.2))


class TestShardMetricsFederation:
    def test_shard_side_counters_reach_the_parent_with_labels_and_rollup(self, cluster):
        with SolverClient(port=cluster.port) as client:
            # Distinct instances hash-route to (with 2^-15 failure odds)
            # both shards, so both report non-zero solver improvements.
            for seed in range(16):
                spec = {"queries": 4, "plans": 2, "seed": seed}
                assert client.solve(spec, solver="STEP", budget_ms=500.0).ok

            def federated():
                text = client.metrics_text()
                zero = _series_value(text, _IMPROVEMENTS, '{shard="0"}')
                one = _series_value(text, _IMPROVEMENTS, '{shard="1"}')
                return text if zero > 0 and one > 0 else None

            # Heartbeats tick every 0.2 s; the labelled series appear as
            # soon as each shard's next snapshot lands.
            text = wait_until(federated)
        zero = _series_value(text, _IMPROVEMENTS, '{shard="0"}')
        one = _series_value(text, _IMPROVEMENTS, '{shard="1"}')
        rollup = _series_value(text, _IMPROVEMENTS)
        # The unlabelled rollup sums the shards (plus any improvements
        # recorded in this parent process by other tests' solvers).
        assert rollup >= zero + one

    def test_cli_visible_exposition_includes_parent_and_shard_series(self, cluster):
        with SolverClient(port=cluster.port) as client:
            assert client.solve(
                {"queries": 4, "plans": 2, "seed": 1}, solver="STEP", budget_ms=500.0
            ).ok

            def has_both():
                text = client.metrics_text()
                return (
                    text
                    if "repro_server_jobs_finished_total 1" in text
                    and f'{_IMPROVEMENTS}{{shard=' in text
                    else None
                )

            text = wait_until(has_both)
        # Parent-side bookkeeping and shard-side counters share one
        # document — what `repro-mqo metrics` prints for scraping.
        assert "repro_server_queue_depth" in text
        assert 'repro_server_shard_up{shard="0"} 1' in text
        assert 'repro_server_shard_up{shard="1"} 1' in text

    def test_federation_survives_drain_without_racing(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_heartbeat_s=0.1))
        with SolverClient(port=handle.port) as client:
            job_id = client.submit(
                {"queries": 4, "plans": 2, "seed": 3}, solver="SLEEPY", budget_ms=2000.0
            )
            ack = client.shutdown(drain=True)
            assert ack["type"] == "draining"
            # Metrics render mid-drain while shards flush their final
            # snapshots; must answer cleanly (lock regression coverage).
            text = client.metrics_text()
            assert "repro_server_uptime_seconds" in text
            assert client.wait(job_id).ok
        handle.thread.join(timeout=20.0)
        assert not handle.thread.is_alive()


class TestClusterHealth:
    def test_health_reports_both_shards_alive_with_spawn_events(self, cluster):
        with SolverClient(port=cluster.port) as client:
            health = client.health()
        assert health["verdict"] == "ok"
        assert health["alive"] == 2
        assert health["count"] == 2
        spawns = [
            event
            for event in health["events"]
            if event["kind"] == "shard_spawn" and event.get("pid")
        ]
        assert len(spawns) >= 2

    def test_stats_and_health_agree_on_shard_population(self, cluster):
        with SolverClient(port=cluster.port) as client:
            stats = client.stats()
            health = client.health()
        per_shard = stats["shards"]["per_shard"]
        assert set(per_shard) == set(health["shards"])
        for index, state in health["shards"].items():
            assert state["pid"] == per_shard[index]["pid"]
