"""Live tests of the ``metrics`` protocol op: Prometheus over the wire."""

from repro.cli import main as cli_main
from repro.server.client import SolverClient
from repro.server.protocol import REQUEST_OPS, metrics_frame

from tests.server.conftest import tiny_problem


class TestMetricsFrame:
    def test_metrics_is_a_known_op(self):
        assert "metrics" in REQUEST_OPS

    def test_frame_shape(self):
        frame = metrics_frame("req-1", "repro_server_uptime_seconds 1\n")
        assert frame["id"] == "req-1"
        assert frame["type"] == "metrics"
        assert frame["content_type"] == "text/plain; version=0.0.4"
        assert frame["text"].startswith("repro_server_uptime_seconds")


class TestMetricsEndpoint:
    def test_server_answers_with_valid_prometheus_text(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
            text = client.metrics_text()
        assert "# TYPE repro_server_jobs_completed_total counter" in text
        assert "repro_server_jobs_completed_total 1" in text
        assert "repro_server_jobs_finished_total 1" in text
        assert "repro_server_queue_depth 0" in text
        assert "repro_server_inflight_jobs 0" in text
        assert 'repro_server_requests_total{op="solve"} 1' in text
        # Every sample line must be structurally valid exposition text.
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                _, _, value = line.rpartition(" ")
                float(value)

    def test_failed_jobs_surface_in_the_exposition(self, server_factory):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            result = client.solve(tiny_problem(), solver="NOPE", budget_ms=100.0)
            assert not result.ok
            text = client.metrics_text()
        assert "repro_server_jobs_failed_total 1" in text
        assert "repro_server_jobs_completed_total 0" in text
        assert "repro_server_jobs_finished_total 1" in text

    def test_cli_metrics_verb_prints_the_exposition(self, server_factory, capsys):
        handle = server_factory()
        with SolverClient(port=handle.port) as client:
            client.solve(tiny_problem(), solver="STEP", budget_ms=500.0)
        exit_code = cli_main(["metrics", "--port", str(handle.port)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "repro_server_jobs_completed_total 1" in captured.out
        assert captured.out.endswith("\n")
