"""Round-trip tests of the zero-copy ProblemArrays pipe transport.

The sharded tier moves problems between processes as pickled
:class:`~repro.mqo.arrays.ProblemArrays` with protocol-5 out-of-band
buffers.  Three things must hold, and each gets a test here:

* the columns survive the trip **bit-identically** (in-process pickle
  round-trip, and across a real ``multiprocessing`` pipe + process),
* the hot columns are genuinely **not copied** into the pickle stream —
  every NumPy column travels as an out-of-band buffer, and where the
  transport allows (in-process ``PickleBuffer`` round-trip) the rebuilt
  arrays share memory with the originals,
* the rebuilt problem is **semantically the same problem**: identical
  canonical hash and exact-problem token, so coalescing and caches keyed
  on them keep working across the process boundary.
"""

from __future__ import annotations

import pickle
from dataclasses import fields
from multiprocessing import get_context

import numpy as np
import pytest

from repro.mqo.arrays import ProblemArrays, build_problem_arrays, problem_from_arrays
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import exact_problem_token
from repro.server.sharding import (
    decode_shard_request,
    encode_shard_request,
    recv_message,
    send_message,
)
from repro.service.jobs import SolveRequest

from tests.server.conftest import tiny_problem


def array_fields(arrays: ProblemArrays):
    """The (name, ndarray) column pairs of one ProblemArrays."""
    return [
        (f.name, getattr(arrays, f.name))
        for f in fields(arrays)
        if isinstance(getattr(arrays, f.name), np.ndarray)
    ]


def assert_bit_identical(original: ProblemArrays, rebuilt: ProblemArrays) -> None:
    """Every scalar equal and every column byte-for-byte identical."""
    assert rebuilt.num_queries == original.num_queries
    assert rebuilt.num_plans == original.num_plans
    assert rebuilt.num_savings == original.num_savings
    for name, column in array_fields(original):
        twin = getattr(rebuilt, name)
        assert twin.dtype == column.dtype, name
        assert twin.shape == column.shape, name
        assert twin.tobytes() == column.tobytes(), name


@pytest.fixture()
def arrays() -> ProblemArrays:
    """Columnar form of a non-trivial generated instance."""
    return build_problem_arrays(
        generate_paper_testcase(num_queries=6, plans_per_query=3, seed=11)
    )


def test_pickle5_roundtrip_bit_identical(arrays: ProblemArrays) -> None:
    """Out-of-band pickling reproduces every column exactly."""
    buffers = []
    payload = pickle.dumps(arrays, protocol=5, buffer_callback=buffers.append)
    rebuilt = pickle.loads(payload, buffers=buffers)
    assert_bit_identical(arrays, rebuilt)


def test_pickle5_columns_travel_out_of_band(arrays: ProblemArrays) -> None:
    """No column's payload is staged inside the pickle stream itself.

    Protocol 5 must emit one out-of-band buffer per NumPy column; the
    remaining in-band stream is then just structure (field names, dtypes,
    scalars) and stays far smaller than the column data.
    """
    buffers = []
    payload = pickle.dumps(arrays, protocol=5, buffer_callback=buffers.append)
    columns = array_fields(arrays)
    assert len(buffers) >= len(columns)
    out_of_band = sum(len(memoryview(buffer.raw())) for buffer in buffers)
    assert out_of_band >= arrays.nbytes()
    # The in-band stream must not secretly contain a copy of the big
    # columns: it is bounded by structure overhead, not column bytes.
    assert len(payload) < 4096 + arrays.nbytes() // 10


def test_pickle5_inprocess_shares_memory(arrays: ProblemArrays) -> None:
    """Where the transport permits, rebuilt columns alias the originals.

    An in-process round-trip keeps the ``PickleBuffer`` objects alive,
    so ``pickle.loads`` can wrap the *same* memory instead of copying —
    the strongest observable form of "zero-copy".
    """
    buffers = []
    payload = pickle.dumps(arrays, protocol=5, buffer_callback=buffers.append)
    rebuilt = pickle.loads(payload, buffers=buffers)
    shared = sum(
        1
        for name, column in array_fields(arrays)
        if column.size and np.shares_memory(column, getattr(rebuilt, name))
    )
    nonempty = sum(1 for _, column in array_fields(arrays) if column.size)
    assert shared == nonempty


def test_send_recv_roundtrip_over_real_pipe(arrays: ProblemArrays) -> None:
    """send_message/recv_message over a real multiprocessing pipe."""
    parent, child = get_context().Pipe()
    try:
        send_message(child, ("job", "sj-1", arrays))
        kind, job_id, rebuilt = recv_message(parent)
    finally:
        parent.close()
        child.close()
    assert (kind, job_id) == ("job", "sj-1")
    assert_bit_identical(arrays, rebuilt)


def _echo_child(conn) -> None:
    """Child body: receive one message, send its payload straight back."""
    message = recv_message(conn)
    send_message(conn, message)
    conn.close()


def test_roundtrip_through_child_process(arrays: ProblemArrays) -> None:
    """A full parent → child process → parent trip is bit-identical."""
    ctx = get_context()
    parent, child = ctx.Pipe()
    process = ctx.Process(target=_echo_child, args=(child,), daemon=True)
    process.start()
    child.close()
    try:
        send_message(parent, arrays)
        rebuilt = recv_message(parent)
    finally:
        process.join(timeout=10.0)
        parent.close()
    assert_bit_identical(arrays, rebuilt)


def test_shard_request_roundtrip_preserves_identity() -> None:
    """encode/decode preserves the problem's cache and coalescing keys.

    The rebuilt problem must report the same canonical hash (routing,
    result cache) and the same exact-problem token (coalescing) as the
    original, and the request scalars must ride along unchanged.
    """
    problem = generate_paper_testcase(num_queries=5, plans_per_query=2, seed=23)
    request = SolveRequest(
        problem=problem,
        solver="CLIMB",
        time_budget_ms=125.0,
        seed=7,
        job_id="client-42",
        metadata={"origin": "test"},
    )
    rebuilt = decode_shard_request(encode_shard_request(request))
    assert rebuilt.problem.canonical_hash() == problem.canonical_hash()
    assert exact_problem_token(rebuilt.problem) == exact_problem_token(problem)
    assert rebuilt.problem.name == problem.name
    assert rebuilt.solver == request.solver
    assert rebuilt.time_budget_ms == request.time_budget_ms
    assert rebuilt.seed == request.seed
    assert rebuilt.job_id == request.job_id
    assert rebuilt.metadata == request.metadata
    assert rebuilt.cache_key() == request.cache_key()


def test_problem_from_arrays_reuses_columns() -> None:
    """The rebuilt problem memoises the transferred arrays — no rebuild.

    ``problem_from_arrays`` must seed the problem's ``_arrays`` memo with
    the transferred columns, so the first solver touch does not pay for
    re-deriving the columnar form the parent already shipped.
    """
    original = tiny_problem()
    arrays = build_problem_arrays(original)
    rebuilt = problem_from_arrays(arrays, name=original.name)
    assert rebuilt.arrays() is arrays
    assert rebuilt.canonical_hash() == original.canonical_hash()
