"""Fault-injection tests: SIGKILLed shard processes, mid-job.

The sharded tier's failure contract, each clause pinned by a test here:

* a shard killed **mid-job** fails that job with a clean
  ``ServerError`` result naming the dead shard (retry disabled), or
  transparently retries it once on a live shard (retry enabled),
* the surviving shards keep serving throughout,
* the dead slot is respawned and counted in metrics,
* graceful drain still completes after a kill.

These run under the ``stress`` marker (deselected by default, CI runs
them as a dedicated ``pytest -m stress`` lane): they kill real OS
processes and depend on respawn timing, so they are kept out of the
fast default lane.
"""

import os
import signal

import pytest

from repro.server.app import ServerConfig
from repro.server.client import SolverClient

from tests.server.conftest import tiny_problem, wait_until

pytestmark = pytest.mark.stress


def executing_shard(client: SolverClient):
    """The ``(index, state)`` of the shard currently running a job."""
    per_shard = client.stats()["shards"]["per_shard"]
    busy = [(index, state) for index, state in per_shard.items() if state["assigned"] > 0]
    return busy[0] if len(busy) == 1 else None


def submit_sleepy_and_kill_its_shard(client: SolverClient) -> tuple:
    """Submit a long job, SIGKILL the shard executing it.

    Returns ``(job_id, killed_index, killed_pid)``.  SLEEPY holds the
    shard for 400 ms — plenty to observe it via ``stats`` and deliver
    the signal while the job is genuinely in flight.
    """
    job_id = client.submit(tiny_problem(), solver="SLEEPY", budget_ms=5000.0)
    index, state = wait_until(lambda: executing_shard(client))
    os.kill(state["pid"], signal.SIGKILL)
    return job_id, index, state["pid"]


class TestShardKilledMidJob:
    def test_fails_with_clean_server_error_when_retry_disabled(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_retry=False))
        with SolverClient(port=handle.port) as client:
            job_id, index, pid = submit_sleepy_and_kill_its_shard(client)
            result = client.wait(job_id)
            # A clean failure result — not a hung client, not a torn
            # connection — naming exactly which shard died under the job.
            assert not result.ok
            assert "ServerError" in result.error
            assert f"shard {index}" in result.error
            assert str(pid) in result.error
            # The remaining shard keeps serving.
            survivor = client.solve(tiny_problem("after"), solver="STEP", budget_ms=500.0)
            assert survivor.ok

    def test_retried_once_on_a_live_shard_when_enabled(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_retry=True))
        with SolverClient(port=handle.port) as client:
            job_id, index, pid = submit_sleepy_and_kill_its_shard(client)
            result = client.wait(job_id)
            # The client never sees the fault: the job re-ran elsewhere.
            assert result.ok
            assert result.winner == "SLEEPY"
            stats = client.stats()
            assert stats["counters"].get("jobs_retried", 0) >= 1
            assert stats["shards"]["restarts"] >= 1

    def test_dead_slot_is_respawned_with_a_new_pid(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_retry=True))
        with SolverClient(port=handle.port) as client:
            job_id, index, pid = submit_sleepy_and_kill_its_shard(client)
            client.wait(job_id)

            def respawned():
                state = client.stats()["shards"]["per_shard"][index]
                return state if state["ready"] and state["pid"] != pid else None

            state = wait_until(respawned)
            assert state["dead"] is False
            assert state["restarts"] == 1
            # Both shards answer work again; the restart shows up in the
            # Prometheus exposition with the shard label.
            for seed in range(8):
                spec = {"queries": 4, "plans": 2, "seed": seed}
                assert client.solve(spec, solver="STEP", budget_ms=500.0).ok
            text = client.metrics_text()
            assert f'repro_server_shard_restarts_total{{shard="{index}"}} 1' in text


class TestShardKilledWithBacklog:
    def test_every_in_flight_job_retried_exactly_once(self, server_factory):
        """Killing a shard with a *backlog* retries each job once.

        Three SLEEPY jobs on the same instance with distinct seeds all
        route to one shard (routing ignores the seed) without coalescing
        (the dedupe key includes it); the shard executes one at a time,
        so the kill catches one job mid-execution and two parked behind
        it.  Single-owner fail-over must hand every one of them over —
        exactly once each: no job may be spuriously failed because two
        code paths both tried to rescue it.
        """
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_retry=True))
        with SolverClient(port=handle.port) as client:
            job_ids = [
                client.submit(tiny_problem(), solver="SLEEPY", budget_ms=5000.0, seed=seed)
                for seed in range(3)
            ]

            def shard_with_full_backlog():
                per_shard = client.stats()["shards"]["per_shard"]
                busy = [(i, s) for i, s in per_shard.items() if s["assigned"] == 3]
                return busy[0] if busy else None

            index, state = wait_until(shard_with_full_backlog)
            os.kill(state["pid"], signal.SIGKILL)

            results = [client.wait(job_id) for job_id in job_ids]
            assert all(result.ok for result in results)
            assert all(result.winner == "SLEEPY" for result in results)
            stats = client.stats()
            assert stats["counters"].get("jobs_retried", 0) == 3
            assert stats["counters"].get("jobs_failed", 0) == 0
            assert stats["counters"]["jobs_finished"] == 3
            assert stats["shards"]["restarts"] >= 1


class TestIdleKill:
    def test_idle_shard_kill_heals_without_failing_anything(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2))
        with SolverClient(port=handle.port) as client:
            pid = client.stats()["shards"]["per_shard"]["0"]["pid"]
            os.kill(pid, signal.SIGKILL)
            wait_until(
                lambda: (
                    client.stats()["shards"]["ready"] == 2
                    and client.stats()["shards"]["restarts"] >= 1
                )
            )
            for seed in range(4):
                spec = {"queries": 4, "plans": 2, "seed": seed}
                assert client.solve(spec, solver="STEP", budget_ms=500.0).ok
            assert client.stats()["counters"].get("jobs_failed", 0) == 0


class TestHealthDuringFault:
    def test_health_degrades_on_kill_and_recovers_after_respawn(self, server_factory):
        """The ``health`` op tracks a kill through degraded back to ok.

        Between the parent noticing the SIGKILL and the replacement
        shard reporting ready, the slot is dead or booting — the op
        must report ``degraded`` in that window (polled tightly; the
        respawn takes a process boot, so the window is wide enough to
        observe), then return to ``ok`` with the restart counted in
        both the health payload and the Prometheus exposition.
        """
        handle = server_factory(ServerConfig(workers=2, shards=2))
        with SolverClient(port=handle.port) as client:
            before = client.health()
            assert before["verdict"] == "ok"
            assert before["alive"] == 2
            pid = before["shards"]["0"]["pid"]
            os.kill(pid, signal.SIGKILL)

            def degraded():
                health = client.health()
                return health if health["verdict"] == "degraded" else None

            health = wait_until(degraded, interval_s=0.005)
            assert health["alive"] < 2

            def recovered():
                health = client.health()
                return health if health["verdict"] == "ok" else None

            health = wait_until(recovered)
            assert health["alive"] == 2
            assert health["restarts"] >= 1
            assert health["shards"]["0"]["restarts"] >= 1
            assert health["shards"]["0"]["pid"] != pid
            text = client.metrics_text()
            assert 'repro_server_shard_restarts_total{shard="0"} 1' in text
            # The lifecycle left an audit trail on the event log.
            kinds = [event["kind"] for event in health["events"]]
            assert "shard_exit" in kinds
            assert "shard_respawn" in kinds


class TestDrainAfterFault:
    def test_graceful_drain_completes_after_a_kill(self, server_factory):
        handle = server_factory(ServerConfig(workers=2, shards=2, shard_retry=True))
        with SolverClient(port=handle.port) as client:
            job_id, index, pid = submit_sleepy_and_kill_its_shard(client)
            ack = client.shutdown(drain=True)
            assert ack["type"] == "draining"
            # The in-flight job resolves (retried or cleanly failed —
            # draining servers do not retry) and the process tree exits.
            result = client.wait(job_id)
            assert result.ok or "ServerError" in (result.error or "")
        handle.thread.join(timeout=20.0)
        assert not handle.thread.is_alive()
