"""Protocol round-trip fuzz (hypothesis) plus deterministic edge cases."""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.exceptions import ProtocolError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PRIORITIES,
    REQUEST_OPS,
    decode_frame,
    encode_frame,
    error_frame,
    parse_priority,
    parse_request,
    queued_frame,
    result_frame,
    update_frame,
)

# Arbitrary JSON documents: scalars plus nested lists/objects.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=25,
)
frames = st.dictionaries(st.text(max_size=15), json_values, max_size=8)


class TestRoundTripFuzz:
    @given(frame=frames)
    @settings(max_examples=150, deadline=None)
    def test_encode_decode_roundtrip(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    @given(frame=frames)
    @settings(max_examples=100, deadline=None)
    def test_wire_form_is_one_line(self, frame):
        data = encode_frame(frame)
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1  # NDJSON framing: exactly one line

    @given(data=st.binary(max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_decode_arbitrary_bytes_never_crashes_unexpectedly(self, data):
        try:
            frame = decode_frame(data)
        except ProtocolError:
            return
        assert isinstance(frame, dict)

    @given(frame=frames)
    @settings(max_examples=100, deadline=None)
    def test_parse_request_accepts_or_rejects_cleanly(self, frame):
        try:
            request = parse_request(frame)
        except ProtocolError:
            return
        assert request.op in REQUEST_OPS
        assert isinstance(request.id, str)
        assert "op" not in request.payload and "id" not in request.payload


class TestFrameValidation:
    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * 64}, max_bytes=32)

    def test_oversized_frame_rejected_on_decode(self):
        line = json.dumps({"blob": "x" * 64}).encode() + b"\n"
        with pytest.raises(ProtocolError):
            decode_frame(line, max_bytes=32)

    def test_default_limit_is_generous(self):
        assert MAX_FRAME_BYTES >= 1024 * 1024

    def test_non_object_payloads_rejected(self):
        for bad in (b"[1,2,3]\n", b"42\n", b'"text"\n', b"null\n"):
            with pytest.raises(ProtocolError):
                decode_frame(bad)

    def test_empty_and_invalid_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"{not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe{}\n")  # not UTF-8

    def test_nan_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"cost": float("nan")})

    def test_unserialisable_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"payload": object()})


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "make-coffee", "id": "1"})

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"id": "1"})

    def test_integer_id_normalised(self):
        assert parse_request({"op": "ping", "id": 7}).id == "7"

    def test_bool_id_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "ping", "id": True})

    def test_payload_excludes_envelope_fields(self):
        request = parse_request({"op": "wait", "id": "9", "job_id": "sj-1"})
        assert request.payload == {"job_id": "sj-1"}


class TestPriorities:
    def test_names_and_levels(self):
        for name, level in PRIORITIES.items():
            assert parse_priority(name) == level
            assert parse_priority(level) == level

    def test_default(self):
        assert parse_priority(None) == PRIORITIES["normal"]

    def test_rejects_unknowns(self):
        for bad in ("urgent", 7, -1, 1.5, True):
            with pytest.raises(ProtocolError):
                parse_priority(bad)


class TestResponseBuilders:
    def test_builders_produce_encodable_frames(self):
        for frame in (
            error_frame("1", "protocol", "nope"),
            queued_frame("2", "sj-1", 3, coalesced_with="sj-0"),
            update_frame("3", "sj-1", 1, 12.5, 42.0, "CLIMB"),
            result_frame("4", "sj-1", {"winner": "CLIMB", "best_cost": 1.0}),
        ):
            assert decode_frame(encode_frame(frame)) == frame
            assert frame["id"] and frame["type"]
