"""Queue tests: priority order, round-robin fairness, backpressure, drain."""

import asyncio

import pytest

from repro.exceptions import AdmissionError
from repro.server.queue import FairScheduler, JobQueue, ServerJob
from repro.service.jobs import SolveRequest

from tests.server.conftest import tiny_problem


async def _until_waiting(queue: JobQueue, count: int = 1) -> None:
    """Yield until ``count`` ``get()`` calls are parked on the queue.

    Condition polling on :attr:`JobQueue.waiting` instead of a fixed
    sleep: resolves on the first scheduler pass on a fast machine and
    cannot race a slow one.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + 1.0
    while queue.waiting < count:
        assert loop.time() < deadline, "get() never started waiting"
        await asyncio.sleep(0)


def _job(job_id: str, client: str = "c1", priority: int = 1) -> ServerJob:
    return ServerJob(
        job_id=job_id,
        client_id=client,
        request=SolveRequest(problem=tiny_problem(job_id), solver="STEP"),
        priority=priority,
    )


class TestPriorityOrder:
    def test_high_before_normal_before_low(self):
        scheduler = FairScheduler(capacity=8)
        scheduler.push(_job("n", priority=1))
        scheduler.push(_job("l", priority=2))
        scheduler.push(_job("h", priority=0))
        assert [scheduler.pop().job_id for _ in range(3)] == ["h", "n", "l"]
        assert scheduler.pop() is None

    def test_fifo_within_one_client_and_level(self):
        scheduler = FairScheduler(capacity=8)
        for name in ("a", "b", "c"):
            scheduler.push(_job(name))
        assert [scheduler.pop().job_id for _ in range(3)] == ["a", "b", "c"]


class TestFairness:
    def test_round_robin_across_clients(self):
        scheduler = FairScheduler(capacity=16)
        # Client A floods the queue before B and C submit anything.
        for index in range(4):
            scheduler.push(_job(f"a{index}", client="A"))
        scheduler.push(_job("b0", client="B"))
        scheduler.push(_job("c0", client="C"))
        order = [scheduler.pop().job_id for _ in range(6)]
        # A is served first (it arrived first) but B and C interleave
        # instead of waiting behind A's whole backlog.
        assert order == ["a0", "b0", "c0", "a1", "a2", "a3"]

    def test_fairness_is_per_priority_level(self):
        scheduler = FairScheduler(capacity=16)
        scheduler.push(_job("a-low", client="A", priority=2))
        scheduler.push(_job("b-high", client="B", priority=0))
        scheduler.push(_job("a-high", client="A", priority=0))
        order = [scheduler.pop().job_id for _ in range(3)]
        assert order == ["b-high", "a-high", "a-low"]

    def test_depth_bookkeeping(self):
        scheduler = FairScheduler(capacity=8)
        scheduler.push(_job("a", client="A"))
        scheduler.push(_job("b", client="B"))
        assert scheduler.depth == 2
        assert scheduler.depth_for("A") == 1
        scheduler.pop()
        scheduler.pop()
        assert scheduler.depth == 0
        assert scheduler.depth_for("A") == 0


class TestPromotion:
    def test_promote_moves_job_ahead_of_its_old_level(self):
        scheduler = FairScheduler(capacity=8)
        normal = _job("n", priority=1)
        low = _job("l", priority=2)
        scheduler.push(normal)
        scheduler.push(low)
        assert scheduler.promote(low, 0)
        assert low.priority == 0
        assert [scheduler.pop().job_id for _ in range(2)] == ["l", "n"]
        assert scheduler.depth == 0  # accounting unchanged by the move

    def test_promote_rejects_demotions_and_popped_jobs(self):
        scheduler = FairScheduler(capacity=8)
        job = _job("a", priority=1)
        scheduler.push(job)
        assert not scheduler.promote(job, 1)  # not more urgent
        assert not scheduler.promote(job, 2)  # demotion
        popped = scheduler.pop()
        assert not scheduler.promote(popped, 0)  # no longer queued


class TestAdmissionControl:
    def test_capacity_rejection(self):
        scheduler = FairScheduler(capacity=2)
        scheduler.push(_job("a"))
        scheduler.push(_job("b"))
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.push(_job("c"))
        assert excinfo.value.code == "queue_full"
        assert scheduler.depth == 2  # the rejected job was not admitted

    def test_client_quota_rejection(self):
        scheduler = FairScheduler(capacity=8, max_per_client=1)
        scheduler.push(_job("a1", client="A"))
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.push(_job("a2", client="A"))
        assert excinfo.value.code == "client_quota"
        # Another client is unaffected by A's quota.
        scheduler.push(_job("b1", client="B"))

    def test_quota_frees_up_after_pop(self):
        scheduler = FairScheduler(capacity=8, max_per_client=1)
        scheduler.push(_job("a1", client="A"))
        scheduler.pop()
        scheduler.push(_job("a2", client="A"))  # no longer over quota

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(capacity=0)
        with pytest.raises(ValueError):
            FairScheduler(capacity=4, max_per_client=0)


class TestAsyncJobQueue:
    def test_get_returns_pushed_job(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            queue.push(_job("a"))
            job = await asyncio.wait_for(queue.get(), timeout=1.0)
            return job.job_id

        assert asyncio.run(scenario()) == "a"

    def test_get_blocks_until_push(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            getter = asyncio.create_task(queue.get())
            await _until_waiting(queue)
            assert not getter.done()  # genuinely waiting
            queue.push(_job("late"))
            job = await asyncio.wait_for(getter, timeout=1.0)
            return job.job_id

        assert asyncio.run(scenario()) == "late"

    def test_drain_releases_waiters_with_none(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            getter = asyncio.create_task(queue.get())
            await _until_waiting(queue)
            queue.drain()
            return await asyncio.wait_for(getter, timeout=1.0)

        assert asyncio.run(scenario()) is None

    def test_drain_serves_backlog_before_none(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            queue.push(_job("backlog"))
            queue.drain()
            first = await queue.get()
            second = await queue.get()
            return first.job_id, second

        assert asyncio.run(scenario()) == ("backlog", None)

    def test_push_while_draining_rejected(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            queue.drain()
            with pytest.raises(AdmissionError) as excinfo:
                queue.push(_job("nope"))
            return excinfo.value.code

        assert asyncio.run(scenario()) == "draining"
