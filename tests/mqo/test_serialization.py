"""Tests for MQO problem / solution (de)serialization."""

import json

import pytest

from repro.exceptions import InvalidProblemError
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import (
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
    solution_from_dict,
    solution_to_dict,
)


class TestProblemRoundtrip:
    def test_roundtrip_preserves_structure(self, small_problem):
        data = problem_to_dict(small_problem)
        restored = problem_from_dict(data)
        assert restored.num_queries == small_problem.num_queries
        assert restored.num_plans == small_problem.num_plans
        assert restored.savings == small_problem.savings
        assert [p.cost for p in restored.plans] == [p.cost for p in small_problem.plans]

    def test_roundtrip_of_generated_instance(self):
        problem = generate_paper_testcase(10, 3, seed=2)
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.savings == problem.savings

    def test_dict_is_json_serialisable(self, small_problem):
        json.dumps(problem_to_dict(small_problem))

    def test_missing_field_raises(self):
        with pytest.raises(InvalidProblemError):
            problem_from_dict({"format_version": 1})

    def test_unsupported_version_raises(self, small_problem):
        data = problem_to_dict(small_problem)
        data["format_version"] = 999
        with pytest.raises(InvalidProblemError):
            problem_from_dict(data)

    def test_file_roundtrip(self, small_problem, tmp_path):
        path = save_problem(small_problem, tmp_path / "instance.json")
        restored = load_problem(path)
        assert restored.savings == small_problem.savings


class TestSolutionRoundtrip:
    def test_roundtrip(self, paper_example_problem):
        solution = paper_example_problem.solution_from_selection({1, 2})
        data = solution_to_dict(solution)
        restored = solution_from_dict(paper_example_problem, data)
        assert restored.selected_plans == solution.selected_plans
        assert restored.cost == pytest.approx(solution.cost)

    def test_dict_contains_cost_and_validity(self, paper_example_problem):
        solution = paper_example_problem.solution_from_selection({1, 2})
        data = solution_to_dict(solution)
        assert data["is_valid"] is True
        assert data["cost"] == pytest.approx(2.0)

    def test_missing_field_raises(self, paper_example_problem):
        with pytest.raises(InvalidProblemError):
            solution_from_dict(paper_example_problem, {})
