"""Equivalence of the columnar ProblemArrays core with the legacy paths.

Hypothesis property tests asserting that the array-backed objective,
swap deltas and QUBO coefficients are *exactly* equal (``==``, not
approx) to the legacy dict-based implementations on random instances,
including the savings-free and fully-dense edge cases.

Exactness is well-defined here because the strategies draw dyadic
rational costs/savings (integer multiples of 1/64 with bounded
magnitude): every value and every partial sum is exactly representable
in float64, so any bit difference between the array and dict paths
would be a real divergence, not summation-order noise.  The adjacency
is additionally laid out in savings insertion order precisely so the
segmented sums visit values in the same order as the legacy dicts.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.mqo.arrays import ProblemArrays
from repro.mqo.problem import MQOProblem

# Dyadic rationals: k / 64 with bounded k — closed under the sums the
# objective computes, so float64 arithmetic is exact in any order.
_dyadic = st.integers(min_value=0, max_value=1 << 12).map(lambda k: k / 64.0)
_dyadic_positive = st.integers(min_value=1, max_value=1 << 12).map(lambda k: k / 64.0)


@st.composite
def array_problems(draw, max_queries=6, max_plans=4):
    """Random dyadic-cost MQO problems spanning sparse to fully dense sharing."""
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    plans_per_query = [
        draw(st.lists(_dyadic, min_size=1, max_size=max_plans)) for _ in range(num_queries)
    ]
    problem = MQOProblem(plans_per_query)
    cross_pairs = [
        (p1.index, p2.index)
        for p1 in problem.plans
        for p2 in problem.plans
        if p1.index < p2.index and p1.query_index != p2.query_index
    ]
    # density 0.0 => savings-free, 1.0 => fully dense; both must be common.
    density = draw(st.sampled_from([0.0, 0.3, 0.7, 1.0]))
    savings = {}
    for pair in cross_pairs:
        if density == 1.0 or (density > 0.0 and draw(st.booleans())):
            savings[pair] = draw(_dyadic_positive)
    return MQOProblem(plans_per_query, savings)


@st.composite
def problems_with_choices(draw):
    """A problem plus a batch of valid per-query choice rows."""
    problem = draw(array_problems())
    rows = draw(st.integers(min_value=1, max_value=4))
    choices = [
        [
            draw(st.integers(min_value=0, max_value=query.num_plans - 1))
            for query in problem.queries
        ]
        for _ in range(rows)
    ]
    return problem, np.asarray(choices, dtype=np.int64)


def legacy_selection_cost(problem, chosen):
    """The pre-refactor selection cost loop, verbatim."""
    chosen = set(int(p) for p in chosen)
    total = 0.0
    for p in chosen:
        total += problem.plan(p).cost
    for (p1, p2), value in problem.savings.items():
        if p1 in chosen and p2 in chosen:
            total -= value
    return total


def legacy_swap_delta(problem, selected_set, selected_plan, query_index, new_choice):
    """The pre-refactor SelectionState.swap_delta logic, verbatim."""

    def realized(plan, excluding_query):
        total = 0.0
        for partner, saving in problem.sharing_partners(plan).items():
            if partner in selected_set:
                if problem.query_of_plan(partner) == excluding_query:
                    continue
                total += saving
        return total

    query = problem.query(query_index)
    old_plan = selected_plan[query_index]
    new_plan = query.plan_indices[new_choice]
    if new_plan == old_plan:
        return 0.0
    delta = problem.plan_cost(new_plan) - problem.plan_cost(old_plan)
    delta -= realized(new_plan, excluding_query=query_index)
    delta += realized(old_plan, excluding_query=query_index)
    return delta


def legacy_qubo_terms(problem, w_l, w_m):
    """The pre-refactor per-term QUBO coefficient construction, verbatim."""
    linear = {}
    quadratic = {}
    for plan in problem.plans:
        linear[plan.index] = plan.cost - w_l
    for query in problem.queries:
        indices = query.plan_indices
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                quadratic[(indices[i], indices[j])] = w_m
    for (p1, p2), saving in problem.savings.items():
        quadratic[(p1, p2)] = quadratic.get((p1, p2), 0.0) - saving
    return linear, quadratic


class TestLayout:
    @given(array_problems())
    @settings(max_examples=40, deadline=None)
    def test_columns_mirror_object_model(self, problem):
        arrays = problem.arrays()
        assert isinstance(arrays, ProblemArrays)
        assert arrays.num_plans == problem.num_plans
        assert arrays.num_queries == problem.num_queries
        assert arrays.num_savings == problem.num_savings
        for plan in problem.plans:
            assert arrays.plan_cost[plan.index] == plan.cost
            assert arrays.plan_query[plan.index] == plan.query_index
        for query in problem.queries:
            lo, hi = arrays.query_offsets[query.index], arrays.query_offsets[query.index + 1]
            assert tuple(range(lo, hi)) == query.plan_indices

    @given(array_problems())
    @settings(max_examples=40, deadline=None)
    def test_adjacency_matches_partner_dicts_in_order(self, problem):
        arrays = problem.arrays()
        for plan in problem.plans:
            lo, hi = arrays.adj_indptr[plan.index], arrays.adj_indptr[plan.index + 1]
            partners = problem.sharing_partners(plan.index)
            assert arrays.adj_indices[lo:hi].tolist() == list(partners.keys())
            assert arrays.adj_values[lo:hi].tolist() == list(partners.values())

    def test_memoised_and_read_only(self, small_problem):
        arrays = small_problem.arrays()
        assert small_problem.arrays() is arrays
        with pytest.raises(ValueError):
            arrays.plan_cost[0] = 99.0


class TestObjectiveEquivalence:
    @given(problems_with_choices())
    @settings(max_examples=60, deadline=None)
    def test_selection_cost_batch_exactly_matches_legacy(self, problem_and_choices):
        problem, choices = problem_and_choices
        arrays = problem.arrays()
        batch = arrays.selection_cost_batch(choices)
        for row, cost in zip(choices, batch):
            selected = arrays.choices_to_plans(row)
            assert cost == legacy_selection_cost(problem, selected.tolist())
            assert cost == problem.selection_cost(selected.tolist())

    @given(array_problems(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_indicator_cost_and_validity_match_legacy(self, problem, data):
        arrays = problem.arrays()
        # Arbitrary subsets: empty, overfull and valid selections alike.
        indicator = np.asarray(
            [
                [data.draw(st.integers(min_value=0, max_value=1)) for _ in problem.plans]
                for _ in range(3)
            ],
            dtype=np.int8,
        )
        costs = arrays.indicator_cost_batch(indicator)
        valid = arrays.indicator_valid_batch(indicator)
        for row, cost, is_valid in zip(indicator, costs, valid):
            selected = frozenset(np.flatnonzero(row).tolist())
            assert cost == legacy_selection_cost(problem, selected)
            assert cost == problem.selection_cost(selected)
            assert bool(is_valid) == problem.is_valid_selection(selected)

    @given(array_problems())
    @settings(max_examples=40, deadline=None)
    def test_aggregates_exactly_match_problem_methods(self, problem):
        arrays = problem.arrays()
        assert arrays.max_plan_cost() == problem.max_plan_cost()
        assert arrays.max_total_savings_per_plan() == problem.max_total_savings_per_plan()


class TestSwapDeltaEquivalence:
    @given(problems_with_choices())
    @settings(max_examples=60, deadline=None)
    def test_swap_deltas_exactly_match_legacy(self, problem_and_choices):
        problem, choices = problem_and_choices
        arrays = problem.arrays()
        row = choices[0]
        selected = arrays.choices_to_plans(row)
        selected_set = set(selected.tolist())
        mask = np.zeros(arrays.num_plans, dtype=bool)
        mask[selected] = True
        all_deltas = arrays.all_swap_deltas(selected, mask)
        for query in problem.queries:
            deltas = arrays.swap_deltas(selected, mask, query.index)
            for choice in range(query.num_plans):
                expected = legacy_swap_delta(
                    problem, selected_set, selected, query.index, choice
                )
                assert deltas[choice] == expected
                assert all_deltas[query.plan_indices[choice]] == expected


class TestQUBOCoefficientEquivalence:
    @given(array_problems())
    @settings(max_examples=60, deadline=None)
    def test_coefficients_exactly_match_legacy_construction(self, problem):
        from repro.core.logical import LogicalMapping

        mapping = LogicalMapping(problem)
        linear, quadratic = legacy_qubo_terms(
            problem, mapping.weight_at_least_one, mapping.weight_at_most_one
        )
        qubo = mapping.qubo
        assert qubo.num_variables == problem.num_plans
        assert qubo.linear == linear
        assert qubo.quadratic == quadratic

    @given(array_problems())
    @settings(max_examples=40, deadline=None)
    def test_penalty_weights_exactly_match_legacy_derivation(self, problem):
        from repro.core.logical import LogicalMapping

        mapping = LogicalMapping(problem)
        epsilon = mapping.config.epsilon
        assert mapping.weight_at_least_one == problem.max_plan_cost() + epsilon
        assert mapping.weight_at_most_one == (
            mapping.weight_at_least_one + problem.max_total_savings_per_plan() + epsilon
        )
