"""Tests for the MQO workload generators."""

import pytest

from repro.exceptions import InvalidProblemError
from repro.mqo.generator import (
    MQOGeneratorConfig,
    generate_chimera_native_problem,
    generate_clustered_problem,
    generate_paper_testcase,
    generate_random_problem,
)


class TestGeneratorConfig:
    def test_defaults_match_paper(self):
        config = MQOGeneratorConfig()
        assert config.saving_choices == (1.0, 2.0)
        assert config.scale == 1.0

    def test_invalid_cost_range(self):
        with pytest.raises(InvalidProblemError):
            MQOGeneratorConfig(cost_low=5, cost_high=2)

    def test_invalid_saving_choices(self):
        with pytest.raises(InvalidProblemError):
            MQOGeneratorConfig(saving_choices=())
        with pytest.raises(InvalidProblemError):
            MQOGeneratorConfig(saving_choices=(0.0,))

    def test_invalid_scale(self):
        with pytest.raises(InvalidProblemError):
            MQOGeneratorConfig(scale=0.0)

    def test_invalid_cost_source(self):
        with pytest.raises(InvalidProblemError):
            MQOGeneratorConfig(cost_source="magic")


class TestRandomProblem:
    def test_dimensions(self):
        problem = generate_random_problem(6, 3, seed=0)
        assert problem.num_queries == 6
        assert problem.num_plans == 18

    def test_determinism(self):
        a = generate_random_problem(5, 2, seed=11)
        b = generate_random_problem(5, 2, seed=11)
        assert a.savings == b.savings
        assert [p.cost for p in a.plans] == [p.cost for p in b.plans]

    def test_density_zero_means_no_savings(self):
        problem = generate_random_problem(5, 2, sharing_density=0.0, seed=1)
        assert problem.num_savings == 0

    def test_density_one_means_all_cross_pairs(self):
        problem = generate_random_problem(3, 2, sharing_density=1.0, seed=1)
        # 6 plans, cross-query pairs = C(6,2) - 3 intra pairs = 12.
        assert problem.num_savings == 12

    def test_savings_values_from_choices(self):
        config = MQOGeneratorConfig(saving_choices=(3.0,), scale=2.0)
        problem = generate_random_problem(4, 2, sharing_density=1.0, config=config, seed=3)
        assert all(value == 6.0 for value in problem.savings.values())

    def test_invalid_dimensions(self):
        with pytest.raises(InvalidProblemError):
            generate_random_problem(0, 2)
        with pytest.raises(InvalidProblemError):
            generate_random_problem(2, 0)
        with pytest.raises(InvalidProblemError):
            generate_random_problem(2, 2, sharing_density=1.5)

    def test_relational_cost_source(self):
        config = MQOGeneratorConfig(cost_source="relational")
        problem = generate_random_problem(4, 2, config=config, seed=5)
        costs = [p.cost for p in problem.plans]
        assert all(config.cost_low <= c <= config.cost_high for c in costs)


class TestClusteredProblem:
    def test_dimensions(self):
        problem = generate_clustered_problem(3, 2, 2, seed=0)
        assert problem.num_queries == 6
        assert problem.num_plans == 12

    def test_no_inter_cluster_savings_by_default(self):
        problem = generate_clustered_problem(
            2, 2, 2, intra_cluster_density=1.0, inter_cluster_density=0.0, seed=0
        )
        plans_per_cluster = 4
        for (p1, p2) in problem.savings:
            assert p1 // plans_per_cluster == p2 // plans_per_cluster

    def test_inter_cluster_savings_when_requested(self):
        problem = generate_clustered_problem(
            2, 2, 2, intra_cluster_density=0.0, inter_cluster_density=1.0, seed=0
        )
        plans_per_cluster = 4
        assert problem.num_savings > 0
        for (p1, p2) in problem.savings:
            assert p1 // plans_per_cluster != p2 // plans_per_cluster

    def test_invalid_density(self):
        with pytest.raises(InvalidProblemError):
            generate_clustered_problem(2, 2, 2, intra_cluster_density=-0.1)


class TestChimeraNativeProblem:
    def test_savings_respect_neighbor_window(self):
        problem = generate_chimera_native_problem(
            10, 2, neighbor_window=1, cross_pair_density=1.0, seed=0
        )
        for (p1, p2) in problem.savings:
            q1, q2 = p1 // 2, p2 // 2
            assert abs(q1 - q2) <= 1

    def test_window_zero_means_no_savings(self):
        problem = generate_chimera_native_problem(
            6, 2, neighbor_window=0, cross_pair_density=1.0, seed=0
        )
        assert problem.num_savings == 0

    def test_paper_testcase_wrapper(self):
        problem = generate_paper_testcase(12, 3, seed=4)
        assert problem.num_queries == 12
        assert problem.num_plans == 36
        assert problem.num_savings > 0
        # Savings values follow the paper's {1, 2} distribution.
        assert set(problem.savings.values()) <= {1.0, 2.0}

    def test_paper_testcase_deterministic(self):
        a = generate_paper_testcase(6, 2, seed=9)
        b = generate_paper_testcase(6, 2, seed=9)
        assert a.savings == b.savings
