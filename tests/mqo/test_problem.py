"""Tests for the MQO problem model (repro.mqo.problem)."""

import pytest

from repro.exceptions import InvalidProblemError, InvalidSolutionError
from repro.mqo.problem import MQOProblem, Plan, Query


class TestPlanAndQuery:
    def test_plan_rejects_negative_cost(self):
        with pytest.raises(InvalidProblemError):
            Plan(index=0, query_index=0, cost=-1.0)

    def test_plan_rejects_nan_cost(self):
        with pytest.raises(InvalidProblemError):
            Plan(index=0, query_index=0, cost=float("nan"))

    def test_plan_rejects_negative_index(self):
        with pytest.raises(InvalidProblemError):
            Plan(index=-1, query_index=0, cost=1.0)

    def test_query_rejects_empty_plan_list(self):
        with pytest.raises(InvalidProblemError):
            Query(index=0, plan_indices=())

    def test_query_rejects_duplicate_plans(self):
        with pytest.raises(InvalidProblemError):
            Query(index=0, plan_indices=(1, 1))

    def test_query_num_plans(self):
        assert Query(index=0, plan_indices=(0, 1, 2)).num_plans == 3


class TestMQOProblemConstruction:
    def test_basic_structure(self, small_problem):
        assert small_problem.num_queries == 4
        assert small_problem.num_plans == 8
        assert small_problem.num_savings == 4

    def test_plan_indices_are_dense_and_ordered(self, small_problem):
        assert [p.index for p in small_problem.plans] == list(range(8))
        assert small_problem.query_of_plan(0) == 0
        assert small_problem.query_of_plan(7) == 3

    def test_empty_problem_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([])

    def test_query_without_plans_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0], []])

    def test_saving_between_same_query_plans_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0, 2.0]], savings={(0, 1): 1.0})

    def test_saving_referencing_unknown_plan_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0], [2.0]], savings={(0, 5): 1.0})

    def test_negative_saving_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0], [2.0]], savings={(0, 1): -1.0})

    def test_zero_saving_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0], [2.0]], savings={(0, 1): 0.0})

    def test_self_saving_rejected(self):
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0], [2.0]], savings={(0, 0): 1.0})

    def test_duplicate_saving_pair_rejected(self):
        # (1, 0) normalises to (0, 1): listing both is a duplicate entry.
        with pytest.raises(InvalidProblemError):
            MQOProblem([[1.0], [2.0]], savings={(0, 1): 1.0, (1, 0): 2.0})

    def test_savings_pairs_normalised(self):
        problem = MQOProblem([[1.0], [2.0]], savings={(1, 0): 2.5})
        assert problem.saving(0, 1) == 2.5
        assert problem.saving(1, 0) == 2.5
        assert (0, 1) in problem.savings

    def test_unknown_plan_lookup_raises(self, small_problem):
        with pytest.raises(InvalidProblemError):
            small_problem.plan(100)
        with pytest.raises(InvalidProblemError):
            small_problem.query(100)
        with pytest.raises(InvalidProblemError):
            small_problem.query_of_plan(100)


class TestCostAccounting:
    def test_max_plan_cost(self, small_problem):
        assert small_problem.max_plan_cost() == 6.0

    def test_max_total_savings_per_plan(self, small_problem):
        # Plan 2 participates in savings (0,2)=2.0 and (2,7)=1.5 -> 3.5.
        assert small_problem.max_total_savings_per_plan() == pytest.approx(3.5)

    def test_max_total_savings_zero_without_savings(self):
        problem = MQOProblem([[1.0], [2.0]])
        assert problem.max_total_savings_per_plan() == 0.0

    def test_sharing_partners(self, small_problem):
        partners = small_problem.sharing_partners(2)
        assert partners == {0: 2.0, 7: 1.5}

    def test_sharing_partners_is_cached_read_only_view(self, small_problem):
        """Hot-path accessor: no per-call copies and no mutation leaks."""
        partners = small_problem.sharing_partners(2)
        assert small_problem.sharing_partners(2) is partners
        with pytest.raises(TypeError):
            partners[0] = 99.0
        with pytest.raises(AttributeError):
            partners.pop(0)  # read-only views expose no mutators at all
        # The failed mutations left the problem untouched.
        assert small_problem.sharing_partners(2) == {0: 2.0, 7: 1.5}
        assert small_problem.saving(0, 2) == 2.0

    def test_savings_is_cached_read_only_view(self, small_problem):
        savings = small_problem.savings
        assert small_problem.savings is savings
        with pytest.raises(TypeError):
            savings[(0, 2)] = 99.0
        with pytest.raises(TypeError):
            del savings[(0, 2)]
        assert small_problem.savings[(0, 2)] == 2.0
        assert dict(savings) == {(0, 2): 2.0, (1, 4): 1.0, (5, 6): 3.0, (2, 7): 1.5}

    def test_selection_cost_with_savings(self, paper_example_problem):
        # Executing plans 1 and 2 costs 4 + 3 - 5 = 2.
        assert paper_example_problem.selection_cost({1, 2}) == pytest.approx(2.0)

    def test_selection_cost_without_savings(self, paper_example_problem):
        assert paper_example_problem.selection_cost({0, 3}) == pytest.approx(3.0)

    def test_selection_cost_of_invalid_selection(self, paper_example_problem):
        # Selecting both plans of query 0 simply sums both costs.
        assert paper_example_problem.selection_cost({0, 1}) == pytest.approx(6.0)


class TestSolutions:
    def test_valid_solution(self, paper_example_problem):
        solution = paper_example_problem.solution_from_selection({1, 2})
        assert solution.is_valid
        assert solution.cost == pytest.approx(2.0)

    def test_invalid_solution_flagged_not_rejected(self, paper_example_problem):
        solution = paper_example_problem.solution_from_selection({0, 1, 2})
        assert not solution.is_valid
        with pytest.raises(InvalidSolutionError):
            solution.require_valid()

    def test_solution_from_choices(self, paper_example_problem):
        solution = paper_example_problem.solution_from_choices([1, 0])
        assert solution.selected_plans == frozenset({1, 2})

    def test_solution_from_choices_wrong_length(self, paper_example_problem):
        with pytest.raises(InvalidSolutionError):
            paper_example_problem.solution_from_choices([0])

    def test_solution_from_choices_out_of_range(self, paper_example_problem):
        with pytest.raises(InvalidSolutionError):
            paper_example_problem.solution_from_choices([2, 0])

    def test_choices_roundtrip(self, small_problem):
        solution = small_problem.solution_from_choices([1, 0, 1, 0])
        assert solution.choices() == [1, 0, 1, 0]

    def test_choices_requires_valid(self, small_problem):
        invalid = small_problem.solution_from_selection({0})
        with pytest.raises(InvalidSolutionError):
            invalid.choices()

    def test_plan_indicator(self, paper_example_problem):
        solution = paper_example_problem.solution_from_selection({1, 2})
        assert solution.plan_indicator() == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_unknown_plan_in_selection_rejected(self, paper_example_problem):
        with pytest.raises(InvalidProblemError):
            paper_example_problem.solution_from_selection({99})

    def test_describe_mentions_dimensions(self, small_problem):
        text = small_problem.describe()
        assert "4" in text and "8" in text
