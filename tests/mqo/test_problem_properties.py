"""Property-based tests for the MQO problem model (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mqo.problem import MQOProblem


@st.composite
def mqo_problems(draw, max_queries=5, max_plans=4):
    """Strategy generating small random MQO problems."""
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    plans_per_query = [
        [
            draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
            for _ in range(draw(st.integers(min_value=1, max_value=max_plans)))
        ]
        for _ in range(num_queries)
    ]
    problem = MQOProblem(plans_per_query)
    plan_query = {p.index: p.query_index for p in problem.plans}
    candidate_pairs = [
        (p1, p2)
        for p1 in plan_query
        for p2 in plan_query
        if p1 < p2 and plan_query[p1] != plan_query[p2]
    ]
    savings = {}
    for pair in candidate_pairs:
        if draw(st.booleans()):
            savings[pair] = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    return MQOProblem(plans_per_query, savings)


@st.composite
def problems_with_selection(draw):
    """A problem together with a valid one-plan-per-query selection."""
    problem = draw(mqo_problems())
    choices = [
        draw(st.integers(min_value=0, max_value=query.num_plans - 1))
        for query in problem.queries
    ]
    return problem, choices


class TestProblemInvariants:
    @given(mqo_problems())
    @settings(max_examples=40, deadline=None)
    def test_plan_indices_are_dense(self, problem):
        assert [p.index for p in problem.plans] == list(range(problem.num_plans))

    @given(mqo_problems())
    @settings(max_examples=40, deadline=None)
    def test_savings_symmetric_lookup(self, problem):
        for (p1, p2), value in problem.savings.items():
            assert problem.saving(p1, p2) == value
            assert problem.saving(p2, p1) == value

    @given(mqo_problems())
    @settings(max_examples=40, deadline=None)
    def test_max_total_savings_bounds_each_plan(self, problem):
        bound = problem.max_total_savings_per_plan()
        for plan in problem.plans:
            assert sum(problem.sharing_partners(plan.index).values()) <= bound + 1e-9


class TestSolutionInvariants:
    @given(problems_with_selection())
    @settings(max_examples=40, deadline=None)
    def test_valid_selection_is_valid(self, problem_and_choices):
        problem, choices = problem_and_choices
        solution = problem.solution_from_choices(choices)
        assert solution.is_valid
        assert len(solution.selected_plans) == problem.num_queries

    @given(problems_with_selection())
    @settings(max_examples=40, deadline=None)
    def test_cost_decomposition(self, problem_and_choices):
        """C(Pe) = sum of costs minus sum of realised savings."""
        problem, choices = problem_and_choices
        solution = problem.solution_from_choices(choices)
        selected = solution.selected_plans
        expected = sum(problem.plan_cost(p) for p in selected)
        for (p1, p2), saving in problem.savings.items():
            if p1 in selected and p2 in selected:
                expected -= saving
        assert solution.cost == expected

    @given(problems_with_selection())
    @settings(max_examples=40, deadline=None)
    def test_choices_roundtrip(self, problem_and_choices):
        problem, choices = problem_and_choices
        solution = problem.solution_from_choices(choices)
        assert solution.choices() == choices

    @given(problems_with_selection())
    @settings(max_examples=40, deadline=None)
    def test_cost_never_exceeds_sum_of_costs(self, problem_and_choices):
        problem, choices = problem_and_choices
        solution = problem.solution_from_choices(choices)
        upper = sum(problem.plan_cost(p) for p in solution.selected_plans)
        assert solution.cost <= upper + 1e-9
