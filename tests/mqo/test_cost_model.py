"""Tests for the synthetic relational cost model."""

import pytest

from repro.exceptions import InvalidProblemError
from repro.mqo.cost_model import (
    CatalogStatistics,
    RelationalCostModel,
    TableStats,
    synthesize_plan_costs,
)


class TestTableStats:
    def test_pages_rounds_up(self):
        stats = TableStats(name="t", num_rows=100, row_bytes=100)
        assert stats.pages >= 2  # 10 000 bytes over 8 KiB pages

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(InvalidProblemError):
            TableStats(name="t", num_rows=0)

    def test_rejects_nonpositive_row_bytes(self):
        with pytest.raises(InvalidProblemError):
            TableStats(name="t", num_rows=10, row_bytes=0)


class TestCatalogStatistics:
    def test_add_and_lookup(self):
        catalog = CatalogStatistics()
        catalog.add_table(TableStats("a", 1000))
        catalog.add_table(TableStats("b", 2000))
        catalog.set_join_selectivity("a", "b", 0.01)
        assert catalog.get_join_selectivity("b", "a") == 0.01

    def test_duplicate_table_rejected(self):
        catalog = CatalogStatistics()
        catalog.add_table(TableStats("a", 1000))
        with pytest.raises(InvalidProblemError):
            catalog.add_table(TableStats("a", 5))

    def test_default_selectivity_heuristic(self):
        catalog = CatalogStatistics()
        catalog.add_table(TableStats("a", 1000, num_distinct=100))
        catalog.add_table(TableStats("b", 50, num_distinct=50))
        assert catalog.get_join_selectivity("a", "b") == pytest.approx(1.0 / 100)

    def test_invalid_selectivity(self):
        catalog = CatalogStatistics()
        catalog.add_table(TableStats("a", 10))
        catalog.add_table(TableStats("b", 10))
        with pytest.raises(InvalidProblemError):
            catalog.set_join_selectivity("a", "b", 0.0)

    def test_unknown_table_in_selectivity(self):
        catalog = CatalogStatistics()
        catalog.add_table(TableStats("a", 10))
        with pytest.raises(InvalidProblemError):
            catalog.set_join_selectivity("a", "zzz", 0.5)

    def test_synthetic_catalog(self):
        catalog = CatalogStatistics.synthetic(num_tables=5, seed=0)
        assert len(catalog.tables) == 5
        assert all(stats.num_rows >= 10_000 for stats in catalog.tables.values())

    def test_synthetic_catalog_invalid_arguments(self):
        with pytest.raises(InvalidProblemError):
            CatalogStatistics.synthetic(0)
        with pytest.raises(InvalidProblemError):
            CatalogStatistics.synthetic(3, min_rows=100, max_rows=10)


class TestRelationalCostModel:
    @pytest.fixture()
    def model(self):
        catalog = CatalogStatistics()
        catalog.add_table(TableStats("small", 10_000, row_bytes=100))
        catalog.add_table(TableStats("large", 1_000_000, row_bytes=100))
        catalog.set_join_selectivity("small", "large", 1e-4)
        return RelationalCostModel(catalog)

    def test_scan_cost_grows_with_size(self, model):
        assert model.scan_cost("large") > model.scan_cost("small")

    def test_unknown_table_raises(self, model):
        with pytest.raises(InvalidProblemError):
            model.scan_cost("missing")

    def test_join_order_affects_cost(self, model):
        cost_a = model.plan_cost_for_join_order(["small", "large"])
        cost_b = model.plan_cost_for_join_order(["large", "small"])
        assert cost_a > 0 and cost_b > 0

    def test_plan_cost_requires_tables(self, model):
        with pytest.raises(InvalidProblemError):
            model.plan_cost_for_join_order([])

    def test_alternative_plan_costs_count(self, model):
        costs = model.alternative_plan_costs(["small", "large"], num_plans=3, seed=1)
        assert len(costs) == 3
        assert all(c > 0 for c in costs)

    def test_invalid_constants_rejected(self, model):
        with pytest.raises(InvalidProblemError):
            RelationalCostModel(model.catalog, page_cost=0.0)


class TestSynthesizePlanCosts:
    def test_shape(self):
        costs = synthesize_plan_costs(5, 3, seed=0)
        assert len(costs) == 5
        assert all(len(row) == 3 for row in costs)

    def test_positive(self):
        costs = synthesize_plan_costs(4, 2, seed=1)
        assert all(c > 0 for row in costs for c in row)

    def test_invalid_dimensions(self):
        with pytest.raises(InvalidProblemError):
            synthesize_plan_costs(0, 2)
        with pytest.raises(InvalidProblemError):
            synthesize_plan_costs(2, 2, tables_per_query=(3, 1))
