"""Tests for query clustering (work-sharing communities)."""

import pytest

from repro.exceptions import InvalidProblemError
from repro.mqo.clustering import (
    cluster_queries,
    cross_cluster_savings,
    query_sharing_graph,
    split_oversized_clusters,
)
from repro.mqo.generator import generate_clustered_problem, generate_paper_testcase
from repro.mqo.problem import MQOProblem


class TestQuerySharingGraph:
    def test_nodes_are_queries(self, small_problem):
        graph = query_sharing_graph(small_problem)
        assert set(graph.nodes) == {0, 1, 2, 3}

    def test_edge_weights_accumulate_savings(self):
        problem = MQOProblem(
            plans_per_query=[[1.0, 1.0], [1.0, 1.0]],
            savings={(0, 2): 2.0, (1, 3): 3.0},
        )
        graph = query_sharing_graph(problem)
        assert graph[0][1]["weight"] == pytest.approx(5.0)

    def test_no_savings_means_no_edges(self):
        problem = MQOProblem([[1.0], [2.0], [3.0]])
        assert query_sharing_graph(problem).number_of_edges() == 0


class TestSplitOversizedClusters:
    def test_split(self):
        assert split_oversized_clusters([[0, 1, 2, 3, 4]], 2) == [[0, 1], [2, 3], [4]]

    def test_no_split_needed(self):
        assert split_oversized_clusters([[0, 1], [2]], 5) == [[0, 1], [2]]

    def test_invalid_size(self):
        with pytest.raises(InvalidProblemError):
            split_oversized_clusters([[0]], 0)


class TestClusterQueries:
    def test_covers_every_query_once(self):
        problem = generate_paper_testcase(20, 2, seed=1)
        clusters = cluster_queries(problem)
        covered = sorted(q for cluster in clusters for q in cluster)
        assert covered == list(range(20))

    def test_singletons_without_savings(self):
        problem = MQOProblem([[1.0], [2.0], [3.0]])
        assert cluster_queries(problem) == [[0], [1], [2]]

    def test_respects_max_cluster_size(self):
        problem = generate_paper_testcase(30, 2, seed=2)
        clusters = cluster_queries(problem, max_cluster_size=5)
        assert all(len(cluster) <= 5 for cluster in clusters)

    def test_recovers_planted_clusters(self):
        """Dense intra-cluster sharing with no inter-cluster sharing is recovered."""
        problem = generate_clustered_problem(
            3, 4, 2, intra_cluster_density=1.0, inter_cluster_density=0.0, seed=3
        )
        clusters = cluster_queries(problem)
        planted = [set(range(c * 4, (c + 1) * 4)) for c in range(3)]
        recovered = [set(cluster) for cluster in clusters]
        for block in planted:
            assert block in recovered

    def test_deterministic(self):
        problem = generate_paper_testcase(15, 3, seed=4)
        assert cluster_queries(problem) == cluster_queries(problem)


class TestCrossClusterSavings:
    def test_planted_clusters_have_no_inter_savings(self):
        problem = generate_clustered_problem(
            2, 3, 2, intra_cluster_density=1.0, inter_cluster_density=0.0, seed=5
        )
        clusters = [[0, 1, 2], [3, 4, 5]]
        intra, inter = cross_cluster_savings(problem, clusters)
        assert inter == 0.0
        assert intra == pytest.approx(sum(problem.savings.values()))

    def test_totals_sum_to_all_savings(self):
        problem = generate_paper_testcase(12, 2, seed=6)
        clusters = cluster_queries(problem, max_cluster_size=4)
        intra, inter = cross_cluster_savings(problem, clusters)
        assert intra + inter == pytest.approx(sum(problem.savings.values()))

    def test_clustering_beats_arbitrary_split_on_intra_share(self):
        """Modularity clustering keeps at least as much savings inside clusters
        as an arbitrary contiguous split with the same size cap."""
        problem = generate_paper_testcase(24, 2, seed=7)
        smart = cluster_queries(problem, max_cluster_size=6)
        naive = [list(range(start, min(start + 6, 24))) for start in range(0, 24, 6)]
        smart_intra, _ = cross_cluster_savings(problem, smart)
        naive_intra, _ = cross_cluster_savings(problem, naive)
        assert smart_intra >= naive_intra * 0.5
