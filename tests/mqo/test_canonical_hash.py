"""Canonical hash stability and its interplay with serialization.

The service-layer cache keys problems by
:meth:`~repro.mqo.problem.MQOProblem.canonical_hash`, so the hash must be

* stable across processes and reconstructions (pure function of the
  problem structure),
* invariant to the order in which plans are enumerated within a query,
* sensitive to every structural ingredient (costs, savings, topology).
"""


from repro.mqo.generator import generate_paper_testcase, generate_random_problem
from repro.mqo.problem import MQOProblem
from repro.mqo.serialization import (
    canonical_problem_dict,
    canonical_problem_hash,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)


def _permuted_copy(problem: MQOProblem, order_per_query) -> MQOProblem:
    """Rebuild ``problem`` with plans re-enumerated per ``order_per_query``.

    ``order_per_query[q]`` lists the old per-query plan offsets in their
    new order; savings indices are remapped accordingly.
    """
    index_map = {}
    plans_per_query = []
    next_index = 0
    for query, order in zip(problem.queries, order_per_query):
        costs = []
        for new_offset, old_offset in enumerate(order):
            old_index = query.plan_indices[old_offset]
            index_map[old_index] = next_index + new_offset
            costs.append(problem.plan_cost(old_index))
        plans_per_query.append(costs)
        next_index += len(order)
    savings = {
        (index_map[p1], index_map[p2]): value
        for (p1, p2), value in problem.savings.items()
    }
    return MQOProblem(plans_per_query, savings, name="permuted")


class TestHashStability:
    def test_same_generation_same_hash(self):
        first = generate_paper_testcase(7, 3, seed=5)
        second = generate_paper_testcase(7, 3, seed=5)
        assert first.canonical_hash() == second.canonical_hash()

    def test_hash_is_memoised_and_hex(self):
        problem = generate_paper_testcase(4, 2, seed=1)
        digest = problem.canonical_hash()
        assert digest == problem.canonical_hash()
        assert len(digest) == 64
        int(digest, 16)  # valid hex

    def test_name_and_labels_ignored(self):
        base = MQOProblem([[1.0, 2.0], [3.0, 4.0]], {(0, 2): 1.0}, name="a")
        renamed = MQOProblem(
            [[1.0, 2.0], [3.0, 4.0]],
            {(0, 2): 1.0},
            name="b",
            query_labels=["x", "y"],
            plan_labels=["p0", "p1", "p2", "p3"],
        )
        assert base.canonical_hash() == renamed.canonical_hash()

    def test_plan_order_within_query_ignored(self):
        problem = generate_paper_testcase(6, 3, seed=9)
        reversed_orders = [
            list(range(query.num_plans))[::-1] for query in problem.queries
        ]
        permuted = _permuted_copy(problem, reversed_orders)
        assert problem.canonical_hash() == permuted.canonical_hash()

    def test_plan_order_invariance_on_random_instances(self):
        problem = generate_random_problem(5, 4, sharing_density=0.3, seed=13)
        rotated = [
            [(offset + 1) % query.num_plans for offset in range(query.num_plans)]
            for query in problem.queries
        ]
        permuted = _permuted_copy(problem, rotated)
        assert problem.canonical_hash() == permuted.canonical_hash()

    def test_correlated_ties_are_order_invariant(self):
        # Plans 1/2 of query 0 and 3/5 of query 1 are tied in cost and
        # only interchangeable *together* ({1<->2, 3<->5} is the
        # automorphism); naive tie-breaking by input order canonicalises
        # the two enumerations differently.  The individualization-
        # refinement search must not.
        savings = {
            (0, 3): 0.5, (0, 5): 0.5, (0, 6): 0.5,
            (1, 4): 0.25, (1, 5): 0.5,
            (2, 3): 0.5, (2, 4): 0.25,
            (3, 7): 0.25, (4, 6): 0.5, (4, 7): 0.5, (5, 7): 0.25,
        }
        problem = MQOProblem([[1, 2, 2], [2, 2, 2], [2, 1, 1]], savings)
        swap = {0: 0, 1: 2, 2: 1, 3: 3, 4: 4, 5: 5, 6: 6, 7: 7}
        swapped = MQOProblem(
            [[1, 2, 2], [2, 2, 2], [2, 1, 1]],
            {tuple(sorted((swap[a], swap[b]))): v for (a, b), v in savings.items()},
        )
        assert problem.canonical_hash() == swapped.canonical_hash()

    def test_identical_interchangeable_plans(self):
        base = MQOProblem([[2.0, 2.0, 2.0, 2.0], [1.0, 3.0]], {(0, 5): 1.0})
        moved = MQOProblem([[2.0, 2.0, 2.0, 2.0], [1.0, 3.0]], {(3, 5): 1.0})
        assert base.canonical_hash() == moved.canonical_hash()

    def test_structural_changes_change_hash(self):
        base = MQOProblem([[1.0, 2.0], [3.0, 4.0]], {(0, 2): 1.0})
        other_cost = MQOProblem([[1.0, 2.5], [3.0, 4.0]], {(0, 2): 1.0})
        other_saving = MQOProblem([[1.0, 2.0], [3.0, 4.0]], {(0, 2): 2.0})
        other_pair = MQOProblem([[1.0, 2.0], [3.0, 4.0]], {(1, 2): 1.0})
        no_saving = MQOProblem([[1.0, 2.0], [3.0, 4.0]])
        digests = {
            p.canonical_hash()
            for p in (base, other_cost, other_saving, other_pair, no_saving)
        }
        assert len(digests) == 5

    def test_function_and_method_agree(self):
        problem = generate_paper_testcase(4, 2, seed=2)
        assert canonical_problem_hash(problem) == problem.canonical_hash()


class TestSerializationInterplay:
    def test_roundtrip_preserves_hash(self):
        problem = generate_paper_testcase(6, 3, seed=4)
        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert rebuilt.canonical_hash() == problem.canonical_hash()

    def test_file_roundtrip_preserves_hash(self, tmp_path):
        problem = generate_random_problem(4, 3, sharing_density=0.4, seed=8)
        path = save_problem(problem, tmp_path / "problem.json")
        assert load_problem(path).canonical_hash() == problem.canonical_hash()

    def test_canonical_dict_shape(self):
        problem = MQOProblem([[2.0, 1.0], [3.0]], {(0, 2): 1.5})
        canonical = canonical_problem_dict(problem)
        assert set(canonical) == {"format_version", "plans_per_query", "savings"}
        # Plans are re-enumerated canonically: costs sorted by signature.
        assert canonical["plans_per_query"] == [[1.0, 2.0], [3.0]]
        # Plan 0 (cost 2.0) moves to canonical index 1; its partner stays 2.
        assert canonical["savings"] == [[1, 2, 1.5]]

    def test_canonical_dict_has_no_name(self):
        problem = MQOProblem([[1.0]], name="secret")
        assert "name" not in canonical_problem_dict(problem)
