"""Unit tests of the registry snapshot/merge federation wire format."""

import json
import pickle

import pytest

from repro.exceptions import ReproError
from repro.obs.metrics import Histogram, MetricsRegistry


def build_registry() -> MetricsRegistry:
    """A registry exercising all three kinds plus labelled series."""
    registry = MetricsRegistry()
    registry.counter("repro_test_jobs_total", "jobs").inc(5)
    registry.counter("repro_test_jobs_total", "jobs", {"op": "solve"}).inc(2)
    registry.gauge("repro_test_depth", "depth").set(7.0)
    histogram = registry.histogram("repro_test_latency_ms", "lat", buckets=(10.0, 100.0))
    for value in (5.0, 50.0, 500.0):
        histogram.observe(value)
    return registry


class TestToSnapshot:
    def test_snapshot_is_plain_data(self):
        snapshot = build_registry().to_snapshot()
        # The federation payload crosses a process pipe (pickle) and may
        # be logged (JSON); both must survive without custom types.
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_counter_and_gauge_children_carry_values(self):
        snapshot = build_registry().to_snapshot()
        families = {family["name"]: family for family in snapshot["families"]}
        jobs = families["repro_test_jobs_total"]
        assert jobs["kind"] == "counter"
        values = {tuple(sorted(child["labels"].items())): child["value"]
                  for child in jobs["children"]}
        assert values == {(): 5, (("op", "solve"),): 2}
        depth = families["repro_test_depth"]
        assert depth["children"][0]["value"] == 7.0

    def test_histogram_children_carry_mergeable_state_not_samples(self):
        snapshot = build_registry().to_snapshot()
        families = {family["name"]: family for family in snapshot["families"]}
        child = families["repro_test_latency_ms"]["children"][0]
        assert child["buckets"] == [10.0, 100.0]
        assert child["bucket_counts"] == [1, 1, 1]  # 5.0, 50.0, overflow 500.0
        assert child["count"] == 3
        assert child["total"] == 555.0
        assert child["max"] == 500.0
        assert "window" not in child  # percentile samples never travel


class TestMergeSnapshot:
    def test_counters_sum_and_gauges_last_write_wins(self):
        target = MetricsRegistry()
        target.counter("repro_test_jobs_total").inc(10)
        target.gauge("repro_test_depth").set(1.0)
        target.merge_snapshot(build_registry().to_snapshot())
        assert target.counter("repro_test_jobs_total").value == 15
        assert target.gauge("repro_test_depth").value == 7.0

    def test_histograms_merge_bucket_wise(self):
        target = MetricsRegistry()
        own = target.histogram("repro_test_latency_ms", buckets=(10.0, 100.0))
        own.observe(3.0)
        target.merge_snapshot(build_registry().to_snapshot())
        assert own.count == 4
        assert own.total == 558.0
        assert own.max_value == 500.0
        assert [count for _, count in own.cumulative_buckets()] == [2, 3, 4]

    def test_extra_labels_keep_shard_series_distinct(self):
        target = MetricsRegistry()
        target.merge_snapshot(build_registry().to_snapshot(), extra_labels={"shard": "0"})
        target.merge_snapshot(build_registry().to_snapshot(), extra_labels={"shard": "1"})
        assert target.counter("repro_test_jobs_total", labels={"shard": "0"}).value == 5
        assert target.counter("repro_test_jobs_total", labels={"shard": "1"}).value == 5
        # Labelled children keep their own labels plus the shard label.
        labelled = target.counter(
            "repro_test_jobs_total", labels={"op": "solve", "shard": "1"}
        )
        assert labelled.value == 2

    def test_rollup_merge_without_labels_sums_across_shards(self):
        target = MetricsRegistry()
        snapshot = build_registry().to_snapshot()
        for shard in ("0", "1"):
            target.merge_snapshot(snapshot, extra_labels={"shard": shard})
            target.merge_snapshot(snapshot)
        assert target.counter("repro_test_jobs_total").value == 10

    def test_merge_is_idempotent_on_a_fresh_registry_per_render(self):
        # The server never merges twice into one registry for the same
        # shard; it rebuilds from the latest snapshots.  Two rebuilds of
        # the same snapshot must agree exactly.
        snapshot = build_registry().to_snapshot()
        first, second = MetricsRegistry(), MetricsRegistry()
        first.merge_snapshot(snapshot)
        second.merge_snapshot(snapshot)
        assert first.to_snapshot() == second.to_snapshot()

    def test_mismatched_histogram_buckets_are_rejected(self):
        target = MetricsRegistry()
        target.histogram("repro_test_latency_ms", buckets=(1.0, 2.0))
        source = MetricsRegistry()
        source.histogram("repro_test_latency_ms", buckets=(10.0, 100.0)).observe(1.0)
        with pytest.raises(ReproError):
            target.merge_snapshot(source.to_snapshot())

    def test_unknown_kind_is_rejected(self):
        snapshot = {
            "families": [
                {"name": "x", "kind": "summary", "help": "", "children": [{"labels": {}}]}
            ]
        }
        with pytest.raises(ReproError):
            MetricsRegistry().merge_snapshot(snapshot)

    def test_kind_conflict_with_existing_registration_is_rejected(self):
        target = MetricsRegistry()
        target.gauge("repro_test_jobs_total")
        with pytest.raises(ReproError):
            target.merge_snapshot(build_registry().to_snapshot())


class TestHistogramMergeState:
    def test_merge_state_validates_bucket_count_length(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ReproError):
            histogram.merge_state(
                {"buckets": [1.0, 2.0], "bucket_counts": [1], "count": 1, "total": 1.0}
            )

    def test_round_trip_through_state_snapshot(self):
        source = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            source.observe(value)
        target = Histogram("h", buckets=(1.0, 10.0))
        target.merge_state(source.state_snapshot())
        assert target.state_snapshot() == source.state_snapshot()
