"""Unit tests of the bounded structured event log."""

import json

import pytest

from repro.exceptions import AdmissionError
from repro.obs.events import DEFAULT_CAPACITY, EventLog, get_event_log, record_event
from repro.server.queue import FairScheduler, ServerJob
from repro.service.jobs import SolveRequest
from tests.server.conftest import tiny_problem


class TestEventLog:
    def test_record_stamps_time_and_kind(self):
        log = EventLog()
        event = log.record("shard_spawn", shard=3, pid=42)
        assert event["kind"] == "shard_spawn"
        assert event["shard"] == 3
        assert event["pid"] == 42
        assert event["ts"] > 0

    def test_ring_is_bounded_and_counts_drops(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.record("tick", index=index)
        assert len(log) == 3
        assert log.dropped == 2
        assert [event["index"] for event in log.tail()] == [2, 3, 4]

    def test_tail_limit_returns_newest_oldest_first(self):
        log = EventLog()
        for index in range(10):
            log.record("tick", index=index)
        assert [event["index"] for event in log.tail(3)] == [7, 8, 9]
        assert log.tail(0) == []

    def test_tail_returns_copies(self):
        log = EventLog()
        log.record("tick")
        log.tail()[0]["kind"] = "mutated"
        assert log.tail()[0]["kind"] == "tick"

    def test_clear_resets_ring_and_drop_count(self):
        log = EventLog(capacity=1)
        log.record("a")
        log.record("b")
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_write_ndjson_one_json_object_per_line(self, tmp_path):
        log = EventLog()
        log.record("shard_spawn", shard=0)
        log.record("shard_exit", shard=0, unexpected=True)
        path = log.write_ndjson(tmp_path / "events.ndjson")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["shard_spawn", "shard_exit"]
        assert lines[1]["unexpected"] is True

    def test_default_capacity_is_generous_but_bounded(self):
        assert EventLog().capacity == DEFAULT_CAPACITY


class TestGlobalLog:
    def test_record_event_lands_on_the_shared_log(self):
        event = record_event("test_marker", nonce="global-log-check")
        tail = get_event_log().tail()
        assert any(entry.get("nonce") == "global-log-check" for entry in tail)
        assert event["kind"] == "test_marker"


class TestAdmissionEvents:
    """Queue rejections leave an audit trail on the global log."""

    def _job(self, client: str) -> ServerJob:
        request = SolveRequest(problem=tiny_problem("evt"), solver="STEP")
        return ServerJob(job_id="sj-test", client_id=client, request=request)

    def test_queue_full_rejection_is_recorded(self):
        scheduler = FairScheduler(capacity=1)
        scheduler.push(self._job("a"))
        with pytest.raises(AdmissionError):
            scheduler.push(self._job("b"))
        tail = get_event_log().tail()
        rejects = [e for e in tail if e["kind"] == "admission_reject"]
        assert any(e["code"] == "queue_full" and e["client"] == "b" for e in rejects)

    def test_client_quota_rejection_is_recorded(self):
        scheduler = FairScheduler(capacity=10, max_per_client=1)
        scheduler.push(self._job("c"))
        with pytest.raises(AdmissionError):
            scheduler.push(self._job("c"))
        tail = get_event_log().tail()
        rejects = [e for e in tail if e["kind"] == "admission_reject"]
        assert any(e["code"] == "client_quota" and e["client"] == "c" for e in rejects)
