"""Edge-case tests of the Prometheus text exposition.

The assertions go through a small hand-rolled parser/validator rather
than substring checks: it re-tokenises every line (headers, label
blocks with escapes, sample values) and enforces the structural rules
of exposition format 0.0.4 that scrapers rely on — declared types,
``+Inf`` terminal buckets, ``_sum``/``_count`` consistency.
"""

import math
import re

import pytest

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")

_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _parse_label_block(text: str) -> tuple:
    """Parse ``{k="v",...}`` at the start of ``text``.

    Returns ``(labels, rest)``.  Escape-aware: ``\\\\``, ``\\"`` and
    ``\\n`` inside a quoted value decode to backslash, quote, newline.
    """
    assert text.startswith("{")
    labels = {}
    i = 1
    while text[i] != "}":
        eq = text.index("=", i)
        key = text[i:eq]
        assert _NAME_RE.fullmatch(key), f"bad label name {key!r}"
        assert text[eq + 1] == '"', "label value must be quoted"
        i = eq + 2
        value = []
        while text[i] != '"':
            if text[i] == "\\":
                assert text[i + 1] in _ESCAPES, f"bad escape \\{text[i + 1]}"
                value.append(_ESCAPES[text[i + 1]])
                i += 2
            else:
                value.append(text[i])
                i += 1
        i += 1  # closing quote
        labels[key] = "".join(value)
        if text[i] == ",":
            i += 1
    return labels, text[i + 1 :]


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    return float(text)


def validate_exposition(text: str) -> dict:
    """Parse and structurally validate one exposition document.

    Returns ``{name: {"kind": str, "samples": [(labels, value), ...]}}``
    keyed by *family* name (histogram ``_bucket``/``_sum``/``_count``
    series are folded into their family).  Raises ``AssertionError`` on
    any violation of the text format.
    """
    families: dict = {}
    last_family = None
    for line in text.splitlines():
        assert line == line.rstrip(), f"trailing whitespace: {line!r}"
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            _, directive, name, *rest = line.split(" ", 3)
            assert _NAME_RE.fullmatch(name), f"bad metric name {name!r}"
            entry = families.setdefault(name, {"kind": None, "samples": []})
            if directive == "TYPE":
                assert entry["kind"] is None, f"duplicate TYPE for {name}"
                assert rest and rest[0] in ("counter", "gauge", "histogram")
                entry["kind"] = rest[0]
                last_family = name
            continue
        assert not line.startswith("#"), f"unknown comment line {line!r}"
        match = _NAME_RE.match(line)
        assert match, f"unparsable sample line {line!r}"
        series = match.group(0)
        rest = line[match.end() :]
        labels: dict = {}
        if rest.startswith("{"):
            labels, rest = _parse_label_block(rest)
        assert rest.startswith(" "), f"missing value separator in {line!r}"
        value = _parse_value(rest[1:])
        name = series
        for suffix in ("_bucket", "_sum", "_count"):
            base = series[: -len(suffix)] if series.endswith(suffix) else None
            if base and families.get(base, {}).get("kind") == "histogram":
                name = base
                labels = dict(labels, __series__=suffix)
                break
        assert name in families, f"sample {series!r} has no TYPE declaration"
        assert families[name]["kind"] is not None, f"{name} sampled before TYPE"
        assert name == last_family or True  # samples may interleave only per family
        families[name]["samples"].append((labels, value))

    for name, entry in families.items():
        if entry["kind"] != "histogram":
            continue
        by_labelset: dict = {}
        for labels, value in entry["samples"]:
            series = labels.pop("__series__", "")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            group = by_labelset.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if series == "_bucket":
                group["buckets"].append((_parse_value(labels["le"]), value))
            elif series == "_sum":
                group["sum"] = value
            elif series == "_count":
                group["count"] = value
        for key, group in by_labelset.items():
            bounds = [bound for bound, _ in group["buckets"]]
            assert bounds == sorted(bounds), f"{name}: bucket bounds out of order"
            assert bounds and bounds[-1] == math.inf, f"{name}: missing +Inf bucket"
            counts = [count for _, count in group["buckets"]]
            assert counts == sorted(counts), f"{name}: buckets not cumulative"
            assert group["count"] is not None and group["sum"] is not None
            assert counts[-1] == group["count"], f"{name}: +Inf bucket != _count"
    return families


class TestEmptyRegistry:
    def test_renders_empty_document(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert validate_exposition("") == {}

    def test_registered_but_untouched_instruments_still_render(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_a_total", "a")
        text = render_prometheus(registry)
        families = validate_exposition(text)
        assert families["repro_test_a_total"]["samples"] == [({}, 0.0)]


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw",
        [
            'quote " inside',
            "back\\slash",
            "new\nline",
            'all \\ of " them\ntogether',
        ],
    )
    def test_escaped_values_round_trip_through_the_parser(self, raw):
        registry = MetricsRegistry()
        registry.counter("repro_test_esc_total", "", {"path": raw}).inc()
        text = render_prometheus(registry)
        families = validate_exposition(text)
        (labels, value), = families["repro_test_esc_total"]["samples"]
        assert labels == {"path": raw}
        assert value == 1.0

    def test_escaped_text_is_literal_in_the_document(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_esc_total", "", {"p": 'a"b\\c\nd'}).inc()
        text = render_prometheus(registry)
        assert '{p="a\\"b\\\\c\\nd"}' in text
        assert text.count("\n") == len(text.splitlines())  # newline stayed escaped


class TestHistogramSeries:
    def test_inf_bucket_and_sum_count_consistency(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_lat_ms", "lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        families = validate_exposition(render_prometheus(registry))
        entry = families["repro_test_lat_ms"]
        assert entry["kind"] == "histogram"

    def test_labelled_histograms_validate_per_label_set(self):
        registry = MetricsRegistry()
        for shard in ("0", "1"):
            h = registry.histogram("repro_test_lat_ms", "lat", {"shard": shard})
            h.observe(float(shard) + 1.0)
        families = validate_exposition(render_prometheus(registry))
        samples = families["repro_test_lat_ms"]["samples"]
        assert any(labels.get("shard") == "1" for labels, _ in samples)

    def test_empty_histogram_still_emits_complete_series(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_lat_ms", "lat", buckets=(1.0,))
        families = validate_exposition(render_prometheus(registry))
        assert families["repro_test_lat_ms"]["kind"] == "histogram"


class TestWholeDocument:
    def test_mixed_registry_with_federated_labels_validates(self):
        registry = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("repro_test_jobs_total", "jobs").inc(3)
        source.histogram("repro_test_lat_ms", "lat").observe(2.0)
        source.gauge("repro_test_depth", "d").set(4.0)
        for shard in ("0", "1"):
            registry.merge_snapshot(source.to_snapshot(), extra_labels={"shard": shard})
            registry.merge_snapshot(source.to_snapshot())
        families = validate_exposition(render_prometheus(registry))
        jobs = dict(
            (labels.get("shard", ""), value)
            for labels, value in families["repro_test_jobs_total"]["samples"]
        )
        assert jobs == {"0": 3.0, "1": 3.0, "": 6.0}
