"""Tests of the tracer's self-telemetry (drop counter, occupancy gauge).

The instruments live on the process-global registry and are shared by
every :class:`Tracer` instance, so the assertions are delta-based — the
suite runs other tracer tests in the same process.
"""

from repro.obs.metrics import get_registry
from repro.obs.trace import Tracer


def _dropped_total() -> int:
    return get_registry().counter("repro_obs_spans_dropped_total").value


def _occupancy() -> float:
    return get_registry().gauge("repro_obs_span_buffer_spans").value


def _finish_span(tracer: Tracer, name: str = "stage") -> None:
    with tracer.span(name):
        pass


class TestDropCounter:
    def test_ring_overflow_increments_the_global_counter(self):
        tracer = Tracer(enabled=True, buffer_size=2)
        before = _dropped_total()
        for _ in range(5):
            _finish_span(tracer)
        assert tracer.dropped == 3
        assert _dropped_total() - before == 3

    def test_adopted_records_count_drops_too(self):
        tracer = Tracer(enabled=True, buffer_size=1)
        before = _dropped_total()
        records = [
            {"name": f"s{i}", "trace_id": "t", "span_id": str(i), "duration_ms": 1.0}
            for i in range(3)
        ]
        tracer.adopt(records)
        assert _dropped_total() - before == tracer.dropped
        assert tracer.dropped == 2

    def test_no_drops_while_the_ring_has_room(self):
        tracer = Tracer(enabled=True, buffer_size=16)
        before = _dropped_total()
        for _ in range(4):
            _finish_span(tracer)
        assert tracer.dropped == 0
        assert _dropped_total() == before


class TestOccupancyGauge:
    def test_gauge_tracks_buffered_spans(self):
        tracer = Tracer(enabled=True, buffer_size=8)
        for _ in range(3):
            _finish_span(tracer)
        assert _occupancy() == 3.0

    def test_drain_zeroes_the_gauge(self):
        tracer = Tracer(enabled=True, buffer_size=8)
        _finish_span(tracer)
        assert _occupancy() >= 1.0
        tracer.drain()
        assert _occupancy() == 0.0

    def test_adopt_updates_the_gauge(self):
        tracer = Tracer(enabled=True, buffer_size=8)
        tracer.adopt(
            [{"name": "s", "trace_id": "t", "span_id": "1", "duration_ms": 1.0}]
        )
        assert _occupancy() == 1.0
        tracer.drain()
