"""Span-context propagation across the two execution boundaries.

``contextvars`` do not cross ``ThreadPoolExecutor`` or
``ProcessPoolExecutor`` boundaries on their own, so the portfolio
scheduler re-installs the captured parent context in every racing thread
and the batch executor ships a serialised :class:`SpanContext` to its
pool workers and adopts the spans they send back.  These tests pin both
hops: child spans produced on the far side must join the parent's trace.
"""

import pytest

from repro.mqo.generator import generate_paper_testcase
from repro.obs.trace import configure_tracer, get_tracer
from repro.service.batch import BatchExecutor
from repro.service.jobs import SolveRequest
from repro.service.portfolio import PortfolioScheduler


@pytest.fixture()
def tracing():
    """Enable the global tracer for one test; restore and drain after."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    configure_tracer(True)
    tracer.drain()
    yield tracer
    tracer.drain()
    configure_tracer(was_enabled)


def _requests(count: int):
    return [
        SolveRequest(
            problem=generate_paper_testcase(4, 2, seed=index),
            solver="LIN-MQO",
            time_budget_ms=500.0,
        )
        for index in range(count)
    ]


class TestThreadPropagation:
    def test_portfolio_members_join_the_ambient_trace(self, tracing):
        problem = generate_paper_testcase(5, 2, seed=3)
        scheduler = PortfolioScheduler(solvers=("LIN-MQO", "CLIMB"))
        with tracing.span("request") as parent:
            scheduler.solve(problem, time_budget_ms=200.0, seed=1)
        members = [s for s in tracing.drain() if s.name == "portfolio.member"]
        assert {s.attributes["solver"] for s in members} == {"LIN-MQO", "CLIMB"}
        for member in members:
            # Racing threads re-install the captured parent context.
            assert member.context.trace_id == parent.context.trace_id
            assert member.parent_id == parent.context.span_id

    def test_without_ambient_span_members_start_fresh_traces(self, tracing):
        problem = generate_paper_testcase(5, 2, seed=3)
        PortfolioScheduler(solvers=("LIN-MQO",)).solve(problem, time_budget_ms=200.0, seed=1)
        members = [s for s in tracing.drain() if s.name == "portfolio.member"]
        assert members and all(s.parent_id is None for s in members)


class TestProcessPropagation:
    def test_pool_worker_spans_are_adopted_into_the_parent_trace(self, tracing):
        requests = _requests(2)
        with tracing.span("batch") as parent:
            results = BatchExecutor(workers=2).run(requests, base_seed=9)
        assert all(result.ok for result in results)
        executes = [s for s in tracing.drain() if s.name == "service.execute"]
        # One span per job, produced in the worker processes and shipped
        # back with the results.
        assert len(executes) == len(requests)
        for span in executes:
            assert span.context.trace_id == parent.context.trace_id
            assert span.parent_id == parent.context.span_id
            assert span.duration_ms is not None

    def test_inline_execution_traces_identically(self, tracing):
        requests = _requests(2)
        with tracing.span("batch") as parent:
            results = BatchExecutor(workers=0).run(requests, base_seed=9)
        assert all(result.ok for result in results)
        executes = [s for s in tracing.drain() if s.name == "service.execute"]
        assert len(executes) == len(requests)
        assert all(s.context.trace_id == parent.context.trace_id for s in executes)

    def test_disabled_tracer_ships_no_spans_from_workers(self):
        tracer = get_tracer()
        assert not tracer.enabled  # the suite default
        results = BatchExecutor(workers=2).run(_requests(1), base_seed=9)
        assert results[0].ok
        assert len(tracer) == 0
