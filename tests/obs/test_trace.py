"""Unit tests of the tracer: spans, nesting, the no-op path, buffering."""

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanContext,
    Tracer,
    configure_tracer,
    get_tracer,
)


class TestSpanBasics:
    def test_span_records_duration_and_status(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", {"k": 1}) as span:
            span.set_attribute("extra", "v")
        (finished,) = tracer.drain()
        assert finished is span
        assert finished.name == "work"
        assert finished.status == "ok"
        assert finished.duration_ms is not None and finished.duration_ms >= 0.0
        assert finished.attributes == {"k": 1, "extra": "v"}

    def test_nested_spans_share_trace_and_link_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.context.trace_id == outer.context.trace_id
        assert inner.parent_id == outer.context.span_id
        assert outer.parent_id is None
        # Finished innermost-first.
        assert [s.name for s in tracer.drain()] == ["inner", "outer"]

    def test_sibling_spans_get_distinct_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.context.span_id != b.context.span_id
        assert a.parent_id == b.parent_id

    def test_exception_marks_span_as_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (finished,) = tracer.drain()
        assert finished.status == "error"
        assert finished.attributes["error"] == "ValueError"

    def test_span_dict_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("stage", {"n": 3}):
            pass
        (finished,) = tracer.drain()
        rebuilt = Span.from_dict(finished.to_dict())
        assert rebuilt.to_dict() == finished.to_dict()


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.span("else", {"a": 1}) is NOOP_SPAN

    def test_noop_span_supports_the_full_span_surface(self):
        with Tracer(enabled=False).span("x") as span:
            span.set_attribute("k", "v")
        assert span is NOOP_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        assert len(tracer) == 0
        assert tracer.current_context() is None


class TestBufferAndAdopt:
    def test_buffer_is_bounded_and_counts_drops(self):
        tracer = Tracer(enabled=True, buffer_size=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 2
        assert [s.name for s in tracer.drain()] == ["s2", "s3"]
        assert len(tracer) == 0

    def test_adopt_ingests_foreign_records(self):
        tracer = Tracer(enabled=True)
        source = Tracer(enabled=True)
        with source.span("remote"):
            pass
        records = [s.to_dict() for s in source.drain()]
        assert tracer.adopt(records) == 1
        (adopted,) = tracer.drain()
        assert adopted.name == "remote"
        assert adopted.duration_ms is not None

    def test_invalid_buffer_size_rejected(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)
        with pytest.raises(ValueError):
            configure_tracer(True, buffer_size=-1)
        configure_tracer(False)


class TestContextPlumbing:
    def test_activate_installs_a_foreign_parent(self):
        tracer = Tracer(enabled=True)
        context = SpanContext("feedbeeffeedbeef", "abc-00000001")
        with tracer.activate(context):
            with tracer.span("child") as child:
                pass
        assert child.context.trace_id == "feedbeeffeedbeef"
        assert child.parent_id == "abc-00000001"

    def test_activate_none_is_a_no_op(self):
        tracer = Tracer(enabled=True)
        with tracer.activate(None):
            with tracer.span("root") as root:
                pass
        assert root.parent_id is None

    def test_span_context_round_trip_and_equality(self):
        context = SpanContext("t1", "s1")
        assert SpanContext.from_dict(context.to_dict()) == context
        assert hash(SpanContext("t1", "s1")) == hash(context)
        assert context != SpanContext("t1", "s2")


class TestGlobalTracer:
    def test_configure_mutates_the_singleton_in_place(self):
        reference = get_tracer()
        was_enabled = reference.enabled
        try:
            assert configure_tracer(True) is reference
            assert reference.enabled
            configure_tracer(False)
            assert not reference.enabled
        finally:
            configure_tracer(was_enabled)
