"""Unit tests of the metrics registry and the canonical percentile."""

import math

import pytest

from repro.bench.stats import percentile as bench_percentile
from repro.exceptions import ReproError
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    percentile,
    percentiles,
    sorted_percentiles,
)
from repro.server.metrics import LatencyStats


class TestPercentile:
    def test_nearest_rank_on_known_fixtures(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.00) == 100.0
        assert percentile(samples, 0.01) == 1.0

    def test_small_window_fixtures(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0

    def test_multi_percentile_matches_single_calls(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        qs = (0.25, 0.5, 0.9, 0.99)
        assert percentiles(samples, qs) == [percentile(samples, q) for q in qs]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)
        with pytest.raises(ReproError):
            percentile([1.0], 0.0)
        with pytest.raises(ReproError):
            percentile([1.0], 1.5)

    def test_sorted_percentiles_requires_presorted_semantics(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert sorted_percentiles(ordered, (0.5, 1.0)) == [2.0, 4.0]


class TestPercentileUnification:
    """One definition everywhere: bench and server must agree exactly."""

    FIXTURES = [
        [7.0],
        [1.0, 2.0],
        [3.0, 1.0, 2.0],
        [float(v) for v in range(1, 11)],
        [float(v) for v in range(1, 101)],
        [0.5, 0.5, 0.5, 99.0],
    ]

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99, 1.0])
    def test_bench_and_server_agree_on_every_fixture(self, q):
        for samples in self.FIXTURES:
            expected = percentile(samples, q)
            assert bench_percentile(samples, q) == expected
            stats = LatencyStats(window=len(samples))
            for sample in samples:
                stats.observe(sample)
            assert stats.percentile(q) == expected


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.5)
        gauge.add(-1.5)
        assert gauge.value == 2.0

    def test_histogram_lifetime_stats_and_window(self):
        histogram = Histogram("h", window=3, buckets=(10.0, 100.0))
        for value in (5.0, 50.0, 500.0, 7.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 562.0
        assert histogram.max_value == 500.0
        # Window holds the 3 most recent samples only.
        assert histogram.window_percentiles((1.0,)) == [500.0]
        assert histogram.cumulative_buckets() == [(10.0, 2), (100.0, 3), (math.inf, 4)]

    def test_histogram_empty_percentiles_are_zero(self):
        assert Histogram("h").window_percentiles((0.5, 0.99)) == [0.0, 0.0]

    def test_histogram_validates_window_and_buckets(self):
        with pytest.raises(ReproError):
            Histogram("h", window=0)
        with pytest.raises(ReproError):
            Histogram("h", buckets=(10.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", labels={"a": "1"}) is not registry.counter("x")

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_counters_snapshot_lists_unlabelled_counters(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("b", labels={"k": "v"}).inc()
        registry.gauge("g").set(9)
        assert registry.counters_snapshot() == {"a": 2}

    def test_collect_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zzz")
        registry.counter("aaa")
        assert [family.name for family in registry.collect()] == ["aaa", "zzz"]

    def test_histogram_factory_registers_subclasses(self):
        registry = MetricsRegistry()
        stats = registry.histogram("lat", factory=lambda: LatencyStats(name="lat"))
        assert isinstance(stats, LatencyStats)
        assert registry.histogram("lat") is stats
