"""NDJSON export round-trips and Prometheus text-format rendering."""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs.export import render_prometheus, span_from_json, spans_to_ndjson, write_ndjson
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

attribute_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
    st.booleans(),
    st.none(),
)


@st.composite
def span_records(draw):
    """Strategy producing finished spans with arbitrary JSON attributes."""
    span = Span(name=draw(st.text(min_size=1, max_size=40)))
    span.parent_id = draw(st.one_of(st.none(), st.text(min_size=1, max_size=20)))
    span.start_s = draw(st.floats(min_value=0.0, max_value=2e9, allow_nan=False))
    span.duration_ms = draw(
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    )
    span.status = draw(st.sampled_from(["ok", "error"]))
    span.attributes = draw(
        st.dictionaries(st.text(min_size=1, max_size=15), attribute_values, max_size=5)
    )
    return span


class TestNDJSON:
    def test_one_compact_object_per_line(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        text = spans_to_ndjson(tracer.drain())
        lines = text.splitlines()
        assert len(lines) == 2
        assert text.endswith("\n")
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_empty_input_renders_empty_text(self):
        assert spans_to_ndjson([]) == ""

    def test_accepts_plain_dicts(self):
        record = Span("x").to_dict()
        assert json.loads(spans_to_ndjson([record]).strip()) == json.loads(
            json.dumps(record, sort_keys=True)
        )

    def test_write_and_append(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        path = tmp_path / "traces" / "out.ndjson"
        write_ndjson(tracer.drain(), path)
        with tracer.span("second"):
            pass
        write_ndjson(tracer.drain(), path, append=True)
        names = [span_from_json(line).name for line in path.read_text().splitlines()]
        assert names == ["first", "second"]

    @given(span_records())
    @settings(max_examples=50, deadline=None)
    def test_span_survives_the_ndjson_round_trip(self, span):
        line = spans_to_ndjson([span]).strip()
        rebuilt = span_from_json(line)
        assert rebuilt.to_dict() == span.to_dict()


class TestPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "A counter.").inc(3)
        registry.gauge("repro_test_depth", "A gauge.").set(2.5)
        histogram = registry.histogram(
            "repro_test_latency_ms", "A histogram.", buckets=(10.0, 100.0)
        )
        histogram.observe(5.0)
        histogram.observe(50.0)
        histogram.observe(5000.0)
        return registry

    def test_headers_values_and_histogram_series(self):
        text = render_prometheus(self._registry())
        lines = text.splitlines()
        assert "# HELP repro_test_total A counter." in lines
        assert "# TYPE repro_test_total counter" in lines
        assert "repro_test_total 3" in lines
        assert "repro_test_depth 2.5" in lines
        assert 'repro_test_latency_ms_bucket{le="10"} 1' in lines
        assert 'repro_test_latency_ms_bucket{le="100"} 2' in lines
        assert 'repro_test_latency_ms_bucket{le="+Inf"} 3' in lines
        assert "repro_test_latency_ms_sum 5055" in lines
        assert "repro_test_latency_ms_count 3" in lines
        assert text.endswith("\n")

    def test_labels_are_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labels={"b": 'say "hi"\n', "a": "x\\y"}).inc()
        text = render_prometheus(registry)
        assert 'repro_test_total{a="x\\\\y",b="say \\"hi\\"\\n"} 1' in text

    def test_type_header_appears_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labels={"op": "a"}).inc()
        registry.counter("repro_test_total", labels={"op": "b"}).inc()
        text = render_prometheus(registry)
        assert text.count("# TYPE repro_test_total counter") == 1
        assert 'repro_test_total{op="a"} 1' in text
        assert 'repro_test_total{op="b"} 1' in text

    def test_every_sample_line_is_well_formed(self):
        # A light-weight structural check standing in for promtool.
        for line in render_prometheus(self._registry()).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value)  # must parse (ints, floats; +Inf never appears as a value)
