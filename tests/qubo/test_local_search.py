"""Tests for QUBO local-search utilities."""

import pytest

from repro.exceptions import QUBOError
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.local_search import flip_gain, greedy_descent, tabu_search
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_qubo


class TestFlipGain:
    def test_gain_matches_energy_difference(self):
        qubo = QUBOModel(linear={0: 1.0, 1: -2.0}, quadratic={(0, 1): 3.0})
        state = {0: 1, 1: 0}
        for var in (0, 1):
            flipped = dict(state)
            flipped[var] = 1 - flipped[var]
            expected = qubo.energy(flipped) - qubo.energy(state)
            assert flip_gain(qubo, state, var) == pytest.approx(expected)

    def test_unknown_variable_raises(self):
        qubo = QUBOModel(linear={0: 1.0})
        with pytest.raises(QUBOError):
            flip_gain(qubo, {0: 0}, 99)


class TestGreedyDescent:
    def test_descent_never_increases_energy(self):
        qubo = random_qubo(12, density=0.4, seed=5)
        start = {var: 0 for var in qubo.variables}
        state, energy = greedy_descent(qubo, start, seed=1)
        assert energy <= qubo.energy(start) + 1e-9
        assert energy == pytest.approx(qubo.energy(state))

    def test_descent_reaches_local_optimum(self):
        qubo = random_qubo(10, density=0.5, seed=2)
        state, _energy = greedy_descent(qubo, seed=3)
        # No single flip improves a local optimum.
        assert all(flip_gain(qubo, state, var) >= -1e-9 for var in qubo.variables)

    def test_descent_on_trivial_model(self):
        qubo = QUBOModel(linear={0: -1.0})
        state, energy = greedy_descent(qubo)
        assert state == {0: 1}
        assert energy == -1.0


class TestTabuSearch:
    def test_finds_optimum_of_small_problems(self):
        for seed in range(3):
            qubo = random_qubo(8, density=0.6, seed=seed)
            _opt_assignment, opt_energy = solve_bruteforce(qubo)
            _state, energy = tabu_search(qubo, max_iterations=400, seed=seed)
            assert energy == pytest.approx(opt_energy, abs=1e-9)

    def test_empty_model(self):
        state, energy = tabu_search(QUBOModel(offset=1.0))
        assert state == {}
        assert energy == 1.0

    def test_invalid_parameters(self):
        qubo = random_qubo(4, seed=0)
        with pytest.raises(QUBOError):
            tabu_search(qubo, max_iterations=0)
        with pytest.raises(QUBOError):
            tabu_search(qubo, tabu_tenure=-1)

    def test_returned_energy_matches_state(self):
        qubo = random_qubo(6, seed=4)
        state, energy = tabu_search(qubo, max_iterations=100, seed=1)
        assert energy == pytest.approx(qubo.energy(state))
