"""Tests for the brute-force QUBO solver."""

import numpy as np
import pytest

from repro.exceptions import QUBOError
from repro.qubo.bruteforce import enumerate_energies, solve_bruteforce
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_qubo


class TestSolveBruteforce:
    def test_empty_model(self):
        assignment, energy = solve_bruteforce(QUBOModel(offset=2.0))
        assert assignment == {}
        assert energy == 2.0

    def test_single_variable_negative_weight(self):
        qubo = QUBOModel(linear={"x": -1.0})
        assignment, energy = solve_bruteforce(qubo)
        assert assignment == {"x": 1}
        assert energy == -1.0

    def test_single_variable_positive_weight(self):
        qubo = QUBOModel(linear={"x": 1.0})
        assignment, energy = solve_bruteforce(qubo)
        assert assignment == {"x": 0}
        assert energy == 0.0

    def test_quadratic_coupling(self):
        # Minimum of x0 + x1 - 3 x0 x1 is both on (energy -1).
        qubo = QUBOModel(linear={0: 1.0, 1: 1.0}, quadratic={(0, 1): -3.0})
        assignment, energy = solve_bruteforce(qubo)
        assert assignment == {0: 1, 1: 1}
        assert energy == -1.0

    def test_matches_exhaustive_numpy_search(self):
        qubo = random_qubo(8, density=0.5, seed=3)
        _assignment, energy = solve_bruteforce(qubo)
        samples, order, energies = enumerate_energies(qubo)
        assert energy == pytest.approx(float(np.min(energies)))

    def test_optimum_energy_is_minimal_over_random_samples(self, rng):
        qubo = random_qubo(10, density=0.4, seed=7)
        _assignment, energy = solve_bruteforce(qubo)
        order = qubo.variables
        samples = rng.integers(0, 2, size=(200, len(order)))
        assert energy <= float(np.min(qubo.energies(samples, order))) + 1e-9

    def test_variable_limit_enforced(self):
        qubo = QUBOModel(linear={i: 1.0 for i in range(30)})
        with pytest.raises(QUBOError):
            solve_bruteforce(qubo)


class TestEnumerateEnergies:
    def test_counts(self):
        qubo = random_qubo(4, seed=0)
        samples, order, energies = enumerate_energies(qubo)
        assert samples.shape == (16, 4)
        assert len(order) == 4
        assert energies.shape == (16,)

    def test_energies_match_scalar_evaluation(self):
        qubo = random_qubo(5, seed=1)
        samples, order, energies = enumerate_energies(qubo)
        for i in (0, 7, 31):
            assignment = {var: int(samples[i, j]) for j, var in enumerate(order)}
            assert energies[i] == pytest.approx(qubo.energy(assignment))
