"""Property-based tests for the QUBO substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.ising import binary_to_spins, qubo_to_ising
from repro.qubo.model import QUBOModel

finite_weights = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)


@st.composite
def qubos(draw, max_variables=6):
    """Strategy generating small random QUBO models over integer labels."""
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    qubo = QUBOModel(offset=draw(finite_weights))
    for var in range(num_variables):
        qubo.add_linear(var, draw(finite_weights))
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if draw(st.booleans()):
                qubo.add_quadratic(i, j, draw(finite_weights))
    return qubo


@st.composite
def qubos_with_assignment(draw):
    qubo = draw(qubos())
    assignment = {var: draw(st.integers(min_value=0, max_value=1)) for var in qubo.variables}
    return qubo, assignment


class TestQUBOProperties:
    @given(qubos_with_assignment())
    @settings(max_examples=50, deadline=None)
    def test_ising_conversion_preserves_energy(self, qubo_and_assignment):
        qubo, assignment = qubo_and_assignment
        ising = qubo_to_ising(qubo)
        assert abs(ising.energy(binary_to_spins(assignment)) - qubo.energy(assignment)) < 1e-7

    @given(qubos_with_assignment())
    @settings(max_examples=50, deadline=None)
    def test_scaling_scales_energy(self, qubo_and_assignment):
        qubo, assignment = qubo_and_assignment
        scaled = qubo.scaled(3.0)
        assert abs(scaled.energy(assignment) - 3.0 * qubo.energy(assignment)) < 1e-7

    @given(qubos_with_assignment())
    @settings(max_examples=50, deadline=None)
    def test_bruteforce_optimum_lower_bounds_any_assignment(self, qubo_and_assignment):
        qubo, assignment = qubo_and_assignment
        _best, best_energy = solve_bruteforce(qubo)
        assert best_energy <= qubo.energy(assignment) + 1e-9

    @given(qubos())
    @settings(max_examples=50, deadline=None)
    def test_energy_bounds_contain_optimum(self, qubo):
        low, high = qubo.energy_range_bounds()
        _best, best_energy = solve_bruteforce(qubo)
        assert low - 1e-7 <= best_energy <= high + 1e-7

    @given(qubos_with_assignment())
    @settings(max_examples=50, deadline=None)
    def test_relabeling_preserves_energy(self, qubo_and_assignment):
        qubo, assignment = qubo_and_assignment
        mapping = {var: f"v{var}" for var in qubo.variables}
        relabeled = qubo.relabeled(mapping)
        renamed_assignment = {mapping[var]: value for var, value in assignment.items()}
        assert abs(relabeled.energy(renamed_assignment) - qubo.energy(assignment)) < 1e-9
