"""Tests for the random QUBO generators."""

import pytest

from repro.chimera.topology import ChimeraGraph
from repro.exceptions import QUBOError
from repro.qubo.random_qubo import random_chimera_qubo, random_qubo


class TestRandomQubo:
    def test_dimensions(self):
        qubo = random_qubo(10, density=0.5, seed=0)
        assert qubo.num_variables == 10

    def test_determinism(self):
        a = random_qubo(6, seed=3)
        b = random_qubo(6, seed=3)
        assert a.linear == b.linear
        assert a.quadratic == b.quadratic

    def test_density_bounds(self):
        empty = random_qubo(6, density=0.0, seed=0)
        full = random_qubo(6, density=1.0, seed=0)
        assert empty.num_interactions == 0
        assert full.num_interactions == 15

    def test_weight_range_respected(self):
        qubo = random_qubo(8, density=1.0, weight_range=(0.5, 1.0), seed=1)
        assert all(0.5 <= w <= 1.0 for w in qubo.linear.values())
        assert all(0.5 <= w <= 1.0 for w in qubo.quadratic.values())

    def test_invalid_arguments(self):
        with pytest.raises(QUBOError):
            random_qubo(0)
        with pytest.raises(QUBOError):
            random_qubo(3, density=2.0)
        with pytest.raises(QUBOError):
            random_qubo(3, weight_range=(1.0, -1.0))


class TestRandomChimeraQubo:
    def test_interactions_respect_topology(self):
        topo = ChimeraGraph(2, 2)
        qubo = random_chimera_qubo(topo.edges(), topo.qubits, seed=0)
        for (u, v) in qubo.quadratic:
            assert topo.has_coupler(u, v)

    def test_all_nodes_present(self):
        topo = ChimeraGraph(1, 1)
        qubo = random_chimera_qubo(topo.edges(), topo.qubits, seed=1)
        assert set(qubo.variables) == set(topo.qubits)

    def test_edge_probability_zero(self):
        topo = ChimeraGraph(1, 1)
        qubo = random_chimera_qubo(topo.edges(), topo.qubits, edge_probability=0.0, seed=1)
        assert qubo.num_interactions == 0

    def test_invalid_arguments(self):
        topo = ChimeraGraph(1, 1)
        with pytest.raises(QUBOError):
            random_chimera_qubo(topo.edges(), topo.qubits, weight_range=(2, 1))
        with pytest.raises(QUBOError):
            random_chimera_qubo(topo.edges(), topo.qubits, edge_probability=1.5)
