"""Tests for QUBO <-> Ising conversions."""

import itertools

import pytest

from repro.exceptions import QUBOError
from repro.qubo.ising import (
    IsingModel,
    binary_to_spins,
    ising_to_qubo,
    qubo_to_ising,
    spins_to_binary,
)
from repro.qubo.model import QUBOModel
from repro.qubo.random_qubo import random_qubo


def _all_assignments(variables):
    for bits in itertools.product((0, 1), repeat=len(variables)):
        yield dict(zip(variables, bits))


class TestConversionEquivalence:
    def test_qubo_to_ising_preserves_energies(self):
        qubo = QUBOModel(
            linear={0: 1.5, 1: -2.0, 2: 0.0},
            quadratic={(0, 1): 3.0, (1, 2): -1.0},
            offset=0.5,
        )
        ising = qubo_to_ising(qubo)
        for assignment in _all_assignments(qubo.variables):
            spins = binary_to_spins(assignment)
            assert ising.energy(spins) == pytest.approx(qubo.energy(assignment))

    def test_ising_to_qubo_preserves_energies(self):
        ising = IsingModel(h={0: 0.5, 1: -1.0}, j={(0, 1): 2.0}, offset=1.0)
        qubo = ising_to_qubo(ising)
        for assignment in _all_assignments([0, 1]):
            spins = binary_to_spins(assignment)
            assert qubo.energy(assignment) == pytest.approx(ising.energy(spins))

    def test_roundtrip_random_qubos(self):
        for seed in range(3):
            qubo = random_qubo(5, density=0.6, seed=seed)
            back = ising_to_qubo(qubo_to_ising(qubo))
            for assignment in _all_assignments(qubo.variables):
                assert back.energy(assignment) == pytest.approx(qubo.energy(assignment))


class TestIsingModel:
    def test_variables_include_coupling_endpoints(self):
        ising = IsingModel(h={0: 1.0}, j={(1, 2): 0.5})
        assert set(ising.variables) == {0, 1, 2}

    def test_energy_rejects_non_spin_values(self):
        ising = IsingModel(h={0: 1.0})
        with pytest.raises(QUBOError):
            ising.energy({0: 0})

    def test_max_abs_weight(self):
        ising = IsingModel(h={0: -3.0}, j={(0, 1): 2.0})
        assert ising.max_abs_weight() == 3.0
        assert IsingModel().max_abs_weight() == 0.0


class TestSpinBinaryHelpers:
    def test_spins_to_binary(self):
        assert spins_to_binary({0: -1, 1: 1}) == {0: 0, 1: 1}

    def test_binary_to_spins(self):
        assert binary_to_spins({0: 0, 1: 1}) == {0: -1, 1: 1}

    def test_invalid_values_rejected(self):
        with pytest.raises(QUBOError):
            spins_to_binary({0: 2})
        with pytest.raises(QUBOError):
            binary_to_spins({0: -1})

    def test_roundtrip(self):
        values = {0: 1, 1: 0, 2: 1}
        assert spins_to_binary(binary_to_spins(values)) == values
