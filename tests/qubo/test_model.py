"""Tests for the sparse QUBO container."""

import numpy as np
import pytest

from repro.exceptions import QUBOError
from repro.qubo.model import QUBOModel


class TestConstruction:
    def test_empty_model(self):
        qubo = QUBOModel()
        assert qubo.num_variables == 0
        assert qubo.num_interactions == 0
        assert qubo.energy({}) == 0.0

    def test_from_mappings(self):
        qubo = QUBOModel(linear={"a": 1.0, "b": -2.0}, quadratic={("a", "b"): 3.0}, offset=0.5)
        assert qubo.num_variables == 2
        assert qubo.get_linear("a") == 1.0
        assert qubo.get_quadratic("a", "b") == 3.0
        assert qubo.offset == 0.5

    def test_add_linear_accumulates(self):
        qubo = QUBOModel()
        qubo.add_linear("x", 1.0)
        qubo.add_linear("x", 2.5)
        assert qubo.get_linear("x") == 3.5

    def test_add_quadratic_accumulates_and_normalises_order(self):
        qubo = QUBOModel()
        qubo.add_quadratic(1, 2, 1.0)
        qubo.add_quadratic(2, 1, 0.5)
        assert qubo.get_quadratic(1, 2) == 1.5
        assert qubo.num_interactions == 1

    def test_self_quadratic_folds_into_linear(self):
        qubo = QUBOModel()
        qubo.add_quadratic("x", "x", 2.0)
        assert qubo.get_linear("x") == 2.0
        assert qubo.num_interactions == 0

    def test_non_finite_weight_rejected(self):
        qubo = QUBOModel()
        with pytest.raises(QUBOError):
            qubo.add_linear("x", float("inf"))
        with pytest.raises(QUBOError):
            qubo.add_quadratic("x", "y", float("nan"))

    def test_add_variable_idempotent(self):
        qubo = QUBOModel()
        qubo.add_variable("x")
        qubo.add_variable("x")
        assert qubo.num_variables == 1
        assert "x" in qubo

    def test_degree_and_neighbors(self):
        qubo = QUBOModel(quadratic={(0, 1): 1.0, (0, 2): -1.0})
        assert qubo.degree(0) == 2
        assert qubo.degree(1) == 1
        assert qubo.neighbors(0) == {1: 1.0, 2: -1.0}
        assert qubo.max_degree() == 2


class TestEnergy:
    def test_linear_energy(self):
        qubo = QUBOModel(linear={"a": 2.0, "b": -1.0})
        assert qubo.energy({"a": 1, "b": 0}) == 2.0
        assert qubo.energy({"a": 1, "b": 1}) == 1.0

    def test_quadratic_energy(self):
        qubo = QUBOModel(quadratic={("a", "b"): 4.0})
        assert qubo.energy({"a": 1, "b": 1}) == 4.0
        assert qubo.energy({"a": 1, "b": 0}) == 0.0

    def test_missing_variables_default_to_zero(self):
        qubo = QUBOModel(linear={"a": 5.0})
        assert qubo.energy({}) == 0.0

    def test_offset_included(self):
        qubo = QUBOModel(linear={"a": 1.0}, offset=10.0)
        assert qubo.energy({"a": 0}) == 10.0

    def test_vectorised_energies_match_scalar(self, rng):
        qubo = QUBOModel(
            linear={0: 1.0, 1: -2.0, 2: 0.5},
            quadratic={(0, 1): 1.5, (1, 2): -3.0},
            offset=0.25,
        )
        order = qubo.variables
        samples = rng.integers(0, 2, size=(16, 3))
        energies = qubo.energies(samples, order)
        for row, energy in zip(samples, energies):
            assignment = {var: int(v) for var, v in zip(order, row)}
            assert energy == pytest.approx(qubo.energy(assignment))

    def test_energies_shape_validation(self):
        qubo = QUBOModel(linear={0: 1.0, 1: 1.0})
        with pytest.raises(QUBOError):
            qubo.energies(np.zeros((3, 5)), qubo.variables)

    def test_energies_missing_variable_in_order(self):
        qubo = QUBOModel(linear={0: 1.0, 1: 1.0})
        with pytest.raises(QUBOError):
            qubo.energies(np.zeros((2, 1)), [0])


class TestTransformations:
    def test_relabeled(self):
        qubo = QUBOModel(linear={"a": 1.0}, quadratic={("a", "b"): 2.0})
        renamed = qubo.relabeled({"a": 0, "b": 1})
        assert renamed.get_linear(0) == 1.0
        assert renamed.get_quadratic(0, 1) == 2.0

    def test_relabeled_collision_rejected(self):
        qubo = QUBOModel(linear={"a": 1.0, "b": 2.0})
        with pytest.raises(QUBOError):
            qubo.relabeled({"a": "z", "b": "z"})

    def test_copy_is_independent(self):
        qubo = QUBOModel(linear={"a": 1.0})
        clone = qubo.copy()
        clone.add_linear("a", 5.0)
        assert qubo.get_linear("a") == 1.0

    def test_scaled(self):
        qubo = QUBOModel(linear={"a": 1.0}, quadratic={("a", "b"): -2.0}, offset=3.0)
        scaled = qubo.scaled(2.0)
        assert scaled.get_linear("a") == 2.0
        assert scaled.get_quadratic("a", "b") == -4.0
        assert scaled.offset == 6.0

    def test_to_dense_energy_agreement(self):
        qubo = QUBOModel(linear={0: 1.0, 1: -1.0}, quadratic={(0, 1): 2.0})
        matrix = qubo.to_dense([0, 1])
        x = np.array([1.0, 1.0])
        assert float(x @ matrix @ x) == pytest.approx(qubo.energy({0: 1, 1: 1}))

    def test_energy_range_bounds_contain_all_energies(self):
        qubo = QUBOModel(linear={0: 1.0, 1: -2.0}, quadratic={(0, 1): 3.0})
        low, high = qubo.energy_range_bounds()
        for a in (0, 1):
            for b in (0, 1):
                energy = qubo.energy({0: a, 1: b})
                assert low - 1e-9 <= energy <= high + 1e-9

    def test_subinteractions(self):
        qubo = QUBOModel(
            linear={0: 1.0, 1: 2.0, 2: 3.0}, quadratic={(0, 1): 1.0, (1, 2): 1.0}
        )
        sub = qubo.subinteractions([0, 1])
        assert set(sub.variables) == {0, 1}
        assert sub.get_quadratic(0, 1) == 1.0
        assert sub.get_quadratic(1, 2) == 0.0
