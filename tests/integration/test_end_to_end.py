"""End-to-end integration tests across every layer of the library.

Each test walks the full Algorithm 1 pipeline on a co-generated workload
and cross-checks the outcome against the classical solvers, i.e. the same
comparison the paper's evaluation performs — at miniature scale.
"""

import pytest

from repro.annealer.device import DWaveSamplerSimulator
from repro.annealer.noise import NoiseModel
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.chimera.defects import DefectModel
from repro.chimera.hardware import DWaveSpec
from repro.chimera.topology import ChimeraGraph
from repro.core.logical import LogicalMapping
from repro.core.pipeline import QuantumMQO
from repro.experiments.metrics import reference_cost, scaled_cost
from repro.experiments.workloads import generate_embedded_testcase


@pytest.fixture(scope="module")
def paper_like_setup():
    """A miniature paper setup: defective Chimera + device + workload."""
    spec = DWaveSpec(name="mini-2X", cell_rows=6, cell_cols=6, shore=4)
    topology = DefectModel(broken_fraction=0.05).apply(ChimeraGraph(6, 6), seed=3)
    device = DWaveSamplerSimulator(
        spec=spec, topology=topology, noise=NoiseModel(), num_sweeps=120, seed=5
    )
    testcase = generate_embedded_testcase(30, 2, topology, seed=8)
    return device, testcase


class TestFullPipelineAgainstClassical:
    def test_quantum_result_close_to_proven_optimum(self, paper_like_setup):
        device, testcase = paper_like_setup
        pipeline = QuantumMQO(device=device, embedder=testcase.embedding, seed=1)
        result = pipeline.solve(testcase.problem, num_reads=150, num_gauges=10)

        ilp = IntegerProgrammingMQOSolver().solve(testcase.problem, time_budget_ms=30_000)
        assert ilp.proved_optimal
        optimum = ilp.best_cost
        reference = reference_cost(testcase.problem)
        gap = scaled_cost(result.best_solution.cost, optimum, reference)
        # The simulated annealer should land close to the optimum on this
        # small instance (the paper reports ~0.4 % for the real annealer).
        assert gap <= 0.15

    def test_device_time_is_milliseconds_while_classical_is_slower_per_quality(
        self, paper_like_setup
    ):
        device, testcase = paper_like_setup
        pipeline = QuantumMQO(device=device, embedder=testcase.embedding, seed=2)
        result = pipeline.solve(testcase.problem, num_reads=100, num_gauges=10)
        # 100 reads cost 37.6 ms of device time.
        assert result.device_time_ms == pytest.approx(100 * 0.376)

        climb = IteratedHillClimbing().solve(testcase.problem, time_budget_ms=200, seed=3)
        first_read_cost = result.trajectory[0][1]
        matched_at = climb.time_to_reach(first_read_cost)
        # Either hill climbing never matches the first annealing read within
        # its budget, or it needs more wall-clock time than one read of
        # device time — the source of the paper's reported speedups.
        assert matched_at is None or matched_at > device.time_per_read_ms

    def test_unembedded_energies_are_consistent(self, paper_like_setup):
        device, testcase = paper_like_setup
        mapping = LogicalMapping(testcase.problem)
        pipeline = QuantumMQO(device=device, embedder=testcase.embedding, seed=4)
        result = pipeline.solve(testcase.problem, num_reads=30, num_gauges=3)
        for sample in result.sample_set:
            logical_assignment, broken = result.physical_mapping.unembed_sample(
                sample.assignment
            )
            if broken:
                continue
            # Chain-consistent physical samples have identical logical energy.
            assert mapping.qubo.energy(logical_assignment) == pytest.approx(
                sample.energy, rel=1e-9, abs=1e-6
            )

    def test_broken_qubits_never_used(self, paper_like_setup):
        device, testcase = paper_like_setup
        used = testcase.embedding.used_qubits()
        assert not (used & set(device.topology.broken_qubits))


class TestSerializationRoundtripThroughPipeline:
    def test_saved_problem_produces_same_optimum(self, tmp_path, paper_like_setup):
        from repro.mqo.serialization import load_problem, save_problem

        _device, testcase = paper_like_setup
        path = save_problem(testcase.problem, tmp_path / "instance.json")
        reloaded = load_problem(path)
        original = IntegerProgrammingMQOSolver().solve(testcase.problem, time_budget_ms=30_000)
        restored = IntegerProgrammingMQOSolver().solve(reloaded, time_budget_ms=30_000)
        assert original.best_cost == pytest.approx(restored.best_cost)
