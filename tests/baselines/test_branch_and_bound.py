"""Tests for the LP-relaxation branch-and-bound solver."""

import numpy as np
import pytest

from repro.baselines.milp.branch_and_bound import BranchAndBoundSolver
from repro.baselines.milp.model import BinaryLinearProgram
from repro.exceptions import SolverError


def knapsack_program(values, weights, capacity):
    """Maximise value under a weight budget (as a minimisation program)."""
    program = BinaryLinearProgram()
    for i, value in enumerate(values):
        program.add_variable(("item", i), -float(value))
    program.add_less_equal(
        {("item", i): float(w) for i, w in enumerate(weights)}, float(capacity)
    )
    return program


def exhaustive_knapsack_optimum(values, weights, capacity):
    best = 0.0
    n = len(values)
    for mask in range(1 << n):
        chosen = [i for i in range(n) if mask >> i & 1]
        if sum(weights[i] for i in chosen) <= capacity:
            best = max(best, sum(values[i] for i in chosen))
    return -best


class TestBranchAndBound:
    def test_solves_small_knapsack_optimally(self):
        values = [10, 13, 7, 8, 4]
        weights = [3, 4, 2, 3, 1]
        capacity = 7
        program = knapsack_program(values, weights, capacity)
        result = BranchAndBoundSolver().solve(program)
        assert result.feasible
        assert result.proved_optimal
        assert result.objective == pytest.approx(
            exhaustive_knapsack_optimum(values, weights, capacity)
        )

    def test_assignment_is_binary_and_feasible(self):
        program = knapsack_program([5, 6, 3], [2, 3, 1], 4)
        result = BranchAndBoundSolver().solve(program)
        assert set(np.round(result.assignment)) <= {0.0, 1.0}
        assert program.is_feasible(result.assignment)

    def test_equality_constrained_assignment_problem(self):
        """One-of-each selection (same structure as the MQO constraints)."""
        program = BinaryLinearProgram()
        costs = {("q0", 0): 4.0, ("q0", 1): 1.0, ("q1", 0): 2.0, ("q1", 1): 3.0}
        for name, cost in costs.items():
            program.add_variable(name, cost)
        program.add_equality({("q0", 0): 1.0, ("q0", 1): 1.0}, 1.0)
        program.add_equality({("q1", 0): 1.0, ("q1", 1): 1.0}, 1.0)
        result = BranchAndBoundSolver().solve(program)
        assert result.proved_optimal
        assert result.objective == pytest.approx(3.0)
        named = program.assignment_by_name(result.assignment)
        assert named[("q0", 1)] == 1.0 and named[("q1", 0)] == 1.0

    def test_infeasible_program(self):
        program = BinaryLinearProgram()
        program.add_variable("x", 1.0)
        program.add_equality({"x": 1.0}, 0.5)  # x must be 0.5: infeasible for binary
        result = BranchAndBoundSolver().solve(program)
        assert not result.feasible or not result.proved_optimal

    def test_warm_start_incumbent_recorded(self):
        program = knapsack_program([4, 5], [1, 1], 1)
        warm = np.array([1.0, 0.0])
        result = BranchAndBoundSolver().solve(program, initial_assignment=warm)
        assert result.incumbent_times_ms
        assert result.incumbent_times_ms[0][1] == pytest.approx(-4.0)
        assert result.objective == pytest.approx(-5.0)

    def test_incumbent_callback_invoked(self):
        program = knapsack_program([3, 4, 5], [2, 3, 4], 5)
        seen = []
        BranchAndBoundSolver().solve(
            program, on_incumbent=lambda x, obj, t: seen.append(obj)
        )
        assert seen
        assert seen == sorted(seen, reverse=True)

    def test_rounding_heuristic_used(self):
        program = knapsack_program([10, 10, 10], [1, 1, 1], 2)

        def heuristic(fractional):
            rounded = np.zeros_like(fractional)
            rounded[0] = 1.0
            return rounded

        result = BranchAndBoundSolver().solve(program, rounding_heuristic=heuristic)
        assert result.proved_optimal
        assert result.objective == pytest.approx(-20.0)

    def test_node_limit_terminates_early(self):
        program = knapsack_program(list(range(1, 12)), [1] * 11, 5)
        result = BranchAndBoundSolver(max_nodes=1).solve(program)
        assert result.nodes_explored <= 1

    def test_time_budget_respected(self):
        program = knapsack_program(list(range(1, 15)), [1] * 14, 7)
        result = BranchAndBoundSolver().solve(program, time_budget_ms=1.0)
        assert result.elapsed_ms < 5_000

    def test_invalid_budget(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver().solve(BinaryLinearProgram(), time_budget_ms=0.0)

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(integrality_tolerance=0.0)
        with pytest.raises(SolverError):
            BranchAndBoundSolver(max_nodes=0)

    def test_time_to_optimal_reported(self):
        program = knapsack_program([2, 3], [1, 1], 2)
        result = BranchAndBoundSolver().solve(program)
        assert result.proved_optimal
        assert result.time_to_optimal_ms() is not None
        assert result.time_to_optimal_ms() <= result.elapsed_ms
