"""Tests for the LIN-MQO and LIN-QUB integer programming baselines."""

import itertools

import pytest

from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver, build_mqo_program
from repro.baselines.ilp_qubo import IntegerProgrammingQUBOSolver, build_qubo_program
from repro.core.logical import LogicalMapping
from repro.exceptions import SolverError
from repro.mqo.generator import generate_paper_testcase
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.model import QUBOModel


def exhaustive_optimum(problem):
    return min(
        problem.solution_from_choices(list(choices)).cost
        for choices in itertools.product(*(range(q.num_plans) for q in problem.queries))
    )


class TestBuildMqoProgram:
    def test_variable_counts(self, small_problem):
        program, _ = build_mqo_program(small_problem)
        expected = small_problem.num_plans + small_problem.num_savings
        assert program.num_variables == expected

    def test_constraint_counts(self, small_problem):
        program, _ = build_mqo_program(small_problem)
        # One equality per query, two inequalities per savings pair.
        assert program.num_constraints == (
            small_problem.num_queries + 2 * small_problem.num_savings
        )


class TestLinMqo:
    def test_name_matches_paper_legend(self):
        assert IntegerProgrammingMQOSolver().name == "LIN-MQO"

    def test_invalid_budget(self, small_problem):
        with pytest.raises(SolverError):
            IntegerProgrammingMQOSolver().solve(small_problem, time_budget_ms=0)

    def test_solves_paper_example(self, paper_example_problem):
        trajectory = IntegerProgrammingMQOSolver().solve(
            paper_example_problem, time_budget_ms=10_000
        )
        assert trajectory.proved_optimal
        assert trajectory.best_cost == pytest.approx(2.0)
        assert trajectory.best_solution.selected_plans == frozenset({1, 2})

    def test_matches_exhaustive_optimum(self, small_problem):
        trajectory = IntegerProgrammingMQOSolver().solve(small_problem, time_budget_ms=10_000)
        assert trajectory.proved_optimal
        assert trajectory.best_cost == pytest.approx(exhaustive_optimum(small_problem))

    def test_matches_optimum_on_generated_instance(self):
        problem = generate_paper_testcase(10, 2, seed=3)
        trajectory = IntegerProgrammingMQOSolver().solve(problem, time_budget_ms=30_000)
        assert trajectory.proved_optimal
        assert trajectory.best_cost == pytest.approx(exhaustive_optimum(problem))

    def test_warm_start_provides_immediate_incumbent(self, medium_problem):
        trajectory = IntegerProgrammingMQOSolver(warm_start=True).solve(
            medium_problem, time_budget_ms=10_000
        )
        assert trajectory.points
        assert trajectory.best_solution.is_valid

    def test_anytime_points_are_monotone(self, medium_problem):
        trajectory = IntegerProgrammingMQOSolver().solve(medium_problem, time_budget_ms=10_000)
        costs = [cost for _, cost in trajectory.points]
        assert costs == sorted(costs, reverse=True)


class TestBuildQuboProgram:
    def test_linearization_counts(self):
        qubo = QUBOModel(linear={0: 1.0, 1: -1.0}, quadratic={(0, 1): 2.0})
        program = build_qubo_program(qubo)
        assert program.num_variables == 3  # two x plus one y
        assert program.num_constraints == 1  # positive weight: one >= constraint

    def test_negative_weight_uses_two_constraints(self):
        qubo = QUBOModel(quadratic={(0, 1): -2.0})
        program = build_qubo_program(qubo)
        assert program.num_constraints == 2

    def test_linearization_preserves_optimum(self):
        """The linearised program has the same optimal value as the QUBO."""
        from repro.baselines.milp.branch_and_bound import BranchAndBoundSolver

        qubo = QUBOModel(
            linear={0: 1.0, 1: -2.0, 2: 0.5},
            quadratic={(0, 1): 1.5, (1, 2): -2.5, (0, 2): 1.0},
        )
        _assignment, optimum = solve_bruteforce(qubo)
        program = build_qubo_program(qubo)
        result = BranchAndBoundSolver().solve(program)
        assert result.proved_optimal
        assert result.objective == pytest.approx(optimum)


class TestLinQub:
    def test_name_matches_paper_legend(self):
        assert IntegerProgrammingQUBOSolver().name == "LIN-QUB"

    def test_solves_paper_example(self, paper_example_problem):
        trajectory = IntegerProgrammingQUBOSolver().solve(
            paper_example_problem, time_budget_ms=10_000
        )
        assert trajectory.best_cost == pytest.approx(2.0)

    def test_matches_lin_mqo_on_small_instance(self, small_problem):
        lin_mqo = IntegerProgrammingMQOSolver().solve(small_problem, time_budget_ms=10_000)
        lin_qub = IntegerProgrammingQUBOSolver().solve(small_problem, time_budget_ms=10_000)
        assert lin_qub.best_cost == pytest.approx(lin_mqo.best_cost)

    def test_energy_consistency_with_logical_mapping(self, small_problem):
        """The LIN-QUB objective equals the QUBO energy of its solution."""
        mapping = LogicalMapping(small_problem)
        trajectory = IntegerProgrammingQUBOSolver().solve(small_problem, time_budget_ms=10_000)
        solution = trajectory.best_solution
        energy = mapping.energy_of_solution(solution)
        # Energy = cost + constant shift for valid solutions (Theorem 1).
        assert energy == pytest.approx(solution.cost + mapping.constant_energy_shift())

    def test_invalid_budget(self, small_problem):
        with pytest.raises(SolverError):
            IntegerProgrammingQUBOSolver().solve(small_problem, time_budget_ms=0)
