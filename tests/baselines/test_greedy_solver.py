"""Tests for the constructive greedy baseline."""

import pytest

from repro.baselines.greedy import GreedyConstructiveSolver
from repro.exceptions import SolverError
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.problem import MQOProblem


class TestGreedyConstructiveSolver:
    def test_produces_valid_solution(self, small_problem):
        solution = GreedyConstructiveSolver().construct(small_problem)
        assert solution.is_valid

    def test_exploits_obvious_sharing(self):
        # Query 1 plan 1 enables a saving of 5 with query 0 plan 0; greedy
        # should pick both and realise the saving.
        problem = MQOProblem(
            plans_per_query=[[5.0, 5.0], [5.0, 5.0]],
            savings={(0, 2): 5.0},
        )
        solution = GreedyConstructiveSolver().construct(problem)
        assert solution.cost == pytest.approx(5.0)

    def test_never_worse_than_most_expensive_selection(self):
        problem = generate_paper_testcase(15, 3, seed=2)
        solution = GreedyConstructiveSolver().construct(problem)
        worst = sum(
            max(problem.plan_cost(p) for p in query.plan_indices)
            for query in problem.queries
        )
        assert solution.cost <= worst

    def test_solve_records_single_point(self, small_problem):
        trajectory = GreedyConstructiveSolver().solve(small_problem, time_budget_ms=100)
        assert trajectory.solver_name == "GREEDY"
        assert len(trajectory.points) == 1
        assert trajectory.best_solution.is_valid

    def test_invalid_budget_rejected(self, small_problem):
        with pytest.raises(SolverError):
            GreedyConstructiveSolver().solve(small_problem, time_budget_ms=0.0)

    def test_deterministic(self, medium_problem):
        a = GreedyConstructiveSolver().construct(medium_problem)
        b = GreedyConstructiveSolver().construct(medium_problem)
        assert a.selected_plans == b.selected_plans
