"""Tests for the incremental plan-selection state."""

import itertools

import pytest

from repro.baselines.selection_state import SelectionState
from repro.exceptions import InvalidSolutionError
from repro.mqo.generator import generate_paper_testcase


class TestSelectionState:
    def test_initial_cost_matches_solution(self, small_problem):
        state = SelectionState(small_problem, [0, 1, 0, 1])
        assert state.cost == pytest.approx(
            small_problem.solution_from_choices([0, 1, 0, 1]).cost
        )

    def test_invalid_choices_rejected(self, small_problem):
        with pytest.raises(InvalidSolutionError):
            SelectionState(small_problem, [0, 1])
        with pytest.raises(InvalidSolutionError):
            SelectionState(small_problem, [0, 1, 0, 5])

    def test_swap_delta_matches_full_recompute(self, small_problem):
        state = SelectionState(small_problem, [0, 0, 0, 0])
        for query_index in range(small_problem.num_queries):
            for choice in range(small_problem.query(query_index).num_plans):
                new_choices = state.choices
                new_choices[query_index] = choice
                expected = (
                    small_problem.solution_from_choices(new_choices).cost - state.cost
                )
                assert state.swap_delta(query_index, choice) == pytest.approx(expected)

    def test_apply_swap_updates_cost_incrementally(self, small_problem):
        state = SelectionState(small_problem, [0, 0, 0, 0])
        state.apply_swap(1, 1)
        state.apply_swap(2, 1)
        expected = small_problem.solution_from_choices([0, 1, 1, 0]).cost
        assert state.cost == pytest.approx(expected)
        assert state.choices == [0, 1, 1, 0]

    def test_apply_noop_swap(self, small_problem):
        state = SelectionState(small_problem, [0, 0, 0, 0])
        assert state.apply_swap(0, 0) == 0.0
        assert state.choices == [0, 0, 0, 0]

    def test_swap_out_of_range_rejected(self, small_problem):
        state = SelectionState(small_problem, [0, 0, 0, 0])
        with pytest.raises(InvalidSolutionError):
            state.swap_delta(0, 5)

    def test_to_solution_roundtrip(self, small_problem):
        state = SelectionState(small_problem, [1, 0, 1, 0])
        solution = state.to_solution()
        assert solution.is_valid
        assert solution.choices() == [1, 0, 1, 0]

    def test_copy_is_independent(self, small_problem):
        state = SelectionState(small_problem, [0, 0, 0, 0])
        clone = state.copy()
        clone.apply_swap(0, 1)
        assert state.choices == [0, 0, 0, 0]

    def test_copy_cost_equals_source_cost(self, small_problem):
        """Regression: copy() must not re-derive the cost — it inherits it.

        The legacy copy() re-validated the choices and recomputed the
        objective in O(|P| + |S|); the rewrite copies the fields
        directly, so the clone's cost must equal the source's exactly,
        including any incrementally accumulated value.
        """
        state = SelectionState(small_problem, [0, 1, 0, 1])
        state.apply_swap(2, 1)
        state.apply_swap(0, 1)
        clone = state.copy()
        assert clone.cost == state.cost
        assert clone.choices == state.choices
        # And the clone keeps evolving independently but consistently.
        clone.apply_swap(1, 0)
        assert clone.cost == pytest.approx(
            small_problem.solution_from_choices(clone.choices).cost
        )

    def test_swap_deltas_vector_matches_scalar_swap_delta(self, small_problem):
        state = SelectionState(small_problem, [0, 1, 1, 0])
        all_deltas = state.all_swap_deltas()
        for query in small_problem.queries:
            deltas = state.swap_deltas(query.index)
            for choice in range(query.num_plans):
                assert deltas[choice] == state.swap_delta(query.index, choice)
                assert all_deltas[query.plan_indices[choice]] == deltas[choice]

    def test_incremental_consistency_on_generated_instance(self):
        problem = generate_paper_testcase(10, 3, seed=3)
        state = SelectionState(problem, [0] * 10)
        # Apply a pseudo-random walk of swaps and check full recomputation.
        for step, (query, choice) in enumerate(
            itertools.product(range(10), range(3))
        ):
            state.apply_swap(query, choice)
            if step % 7 == 0:
                assert state.cost == pytest.approx(
                    problem.solution_from_choices(state.choices).cost
                )
