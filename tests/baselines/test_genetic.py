"""Tests for the genetic-algorithm baseline (GA(50)/GA(200))."""

import itertools

import numpy as np
import pytest

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.exceptions import SolverError
from repro.mqo.generator import generate_paper_testcase


class TestConfiguration:
    def test_paper_defaults(self):
        solver = GeneticAlgorithmSolver()
        assert solver.population_size == 50
        assert solver.crossover_rate == pytest.approx(0.35)
        assert solver.mutation_rate == pytest.approx(1.0 / 12.0)

    def test_name_includes_population(self):
        assert GeneticAlgorithmSolver(population_size=200).name == "GA(200)"

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            GeneticAlgorithmSolver(population_size=1)
        with pytest.raises(SolverError):
            GeneticAlgorithmSolver(crossover_rate=1.5)
        with pytest.raises(SolverError):
            GeneticAlgorithmSolver(mutation_rate=-0.1)
        with pytest.raises(SolverError):
            GeneticAlgorithmSolver(max_generations=0)

    def test_invalid_budget(self, small_problem):
        with pytest.raises(SolverError):
            GeneticAlgorithmSolver().solve(small_problem, time_budget_ms=-1.0)


class TestOperators:
    def test_single_point_crossover_preserves_genes(self, rng):
        solver = GeneticAlgorithmSolver()
        parent_a = np.array([0, 0, 0, 0, 0])
        parent_b = np.array([1, 1, 1, 1, 1])
        child_a, child_b = solver._crossover(parent_a, parent_b, rng)
        # Children are complementary prefixes/suffixes of the parents.
        assert all(a + b == 1 for a, b in zip(child_a, child_b))
        assert 1 <= int(child_a.sum()) <= 4 or 1 <= int(child_b.sum()) <= 4

    def test_crossover_of_single_gene_parents(self, rng):
        solver = GeneticAlgorithmSolver()
        child_a, child_b = solver._crossover(np.array([0]), np.array([1]), rng)
        assert list(child_a) == [0] and list(child_b) == [1]

    def test_mutation_respects_plan_counts(self, rng):
        solver = GeneticAlgorithmSolver(mutation_rate=1.0)
        plan_counts = np.array([2, 3, 4])
        mutated = solver._mutate(np.array([0, 0, 0]), plan_counts, rng)
        assert all(0 <= gene < count for gene, count in zip(mutated, plan_counts))

    def test_zero_mutation_rate_is_identity(self, rng):
        solver = GeneticAlgorithmSolver(mutation_rate=0.0)
        chromosome = np.array([1, 2, 0])
        assert np.array_equal(solver._mutate(chromosome, np.array([2, 3, 2]), rng), chromosome)


class TestSolving:
    def test_finds_optimum_of_small_instance(self, small_problem):
        best = min(
            small_problem.solution_from_choices(list(choices)).cost
            for choices in itertools.product(*(range(2) for _ in range(4)))
        )
        solver = GeneticAlgorithmSolver(population_size=30)
        trajectory = solver.solve(small_problem, time_budget_ms=400, seed=0)
        assert trajectory.best_cost == pytest.approx(best)

    def test_quality_improves_with_generations(self):
        problem = generate_paper_testcase(20, 3, seed=1)
        solver = GeneticAlgorithmSolver(population_size=40, max_generations=30)
        trajectory = solver.solve(problem, time_budget_ms=5_000, seed=2)
        costs = [cost for _, cost in trajectory.points]
        assert costs == sorted(costs, reverse=True)
        assert trajectory.best_solution.is_valid

    def test_max_generations_limits_work(self, small_problem):
        solver = GeneticAlgorithmSolver(population_size=10, max_generations=2)
        trajectory = solver.solve(small_problem, time_budget_ms=60_000, seed=3)
        assert trajectory.best_solution is not None
        assert trajectory.total_time_ms < 10_000

    def test_deterministic_given_seed(self, medium_problem):
        solver = GeneticAlgorithmSolver(population_size=20, max_generations=5)
        a = solver.solve(medium_problem, time_budget_ms=10_000, seed=7)
        b = solver.solve(medium_problem, time_budget_ms=10_000, seed=7)
        assert a.best_cost == pytest.approx(b.best_cost)

    def test_larger_population_not_worse_on_average(self):
        """GA(200) should match or beat GA(50) given the same generous budget."""
        problem = generate_paper_testcase(15, 3, seed=4)
        small = GeneticAlgorithmSolver(population_size=20, max_generations=15)
        large = GeneticAlgorithmSolver(population_size=100, max_generations=15)
        cost_small = small.solve(problem, time_budget_ms=20_000, seed=5).best_cost
        cost_large = large.solve(problem, time_budget_ms=20_000, seed=5).best_cost
        assert cost_large <= cost_small + 1e-9
