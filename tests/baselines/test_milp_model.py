"""Tests for the binary linear program container."""

import numpy as np
import pytest

from repro.baselines.milp.model import BinaryLinearProgram
from repro.exceptions import SolverError


class TestVariables:
    def test_add_and_index(self):
        program = BinaryLinearProgram()
        assert program.add_variable("x", 1.5) == 0
        assert program.add_variable("y") == 1
        assert program.index_of("y") == 1
        assert program.num_variables == 2
        assert program.variable_names == ["x", "y"]

    def test_duplicate_variable_rejected(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_variable("x")

    def test_unknown_variable_rejected(self):
        with pytest.raises(SolverError):
            BinaryLinearProgram().index_of("missing")

    def test_objective_accumulation(self):
        program = BinaryLinearProgram()
        program.add_variable("x", 1.0)
        program.add_objective("x", 2.5)
        assert np.allclose(program.objective_vector(), [3.5])


class TestConstraints:
    def test_equality_matrix(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        program.add_variable("y")
        program.add_equality({"x": 1.0, "y": 1.0}, 1.0)
        a_eq, b_eq = program.equality_matrix()
        assert a_eq.shape == (1, 2)
        assert np.allclose(a_eq.toarray(), [[1.0, 1.0]])
        assert np.allclose(b_eq, [1.0])

    def test_less_equal_and_greater_equal(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        program.add_less_equal({"x": 2.0}, 1.0)
        program.add_greater_equal({"x": 1.0}, 0.5)
        a_ub, b_ub = program.inequality_matrix()
        assert a_ub.shape == (2, 1)
        assert np.allclose(a_ub.toarray(), [[2.0], [-1.0]])
        assert np.allclose(b_ub, [1.0, -0.5])

    def test_empty_matrices_are_none(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        assert program.equality_matrix() == (None, None)
        assert program.inequality_matrix() == (None, None)

    def test_num_constraints(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        program.add_equality({"x": 1.0}, 1.0)
        program.add_less_equal({"x": 1.0}, 1.0)
        assert program.num_constraints == 2


class TestEvaluation:
    def _simple_program(self):
        program = BinaryLinearProgram()
        program.add_variable("x", 1.0)
        program.add_variable("y", -2.0)
        program.add_equality({"x": 1.0, "y": 1.0}, 1.0)
        program.add_less_equal({"y": 1.0}, 1.0)
        return program

    def test_objective_value(self):
        program = self._simple_program()
        assert program.objective_value(np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert program.objective_value(np.array([0.0, 1.0])) == pytest.approx(-2.0)

    def test_objective_value_shape_check(self):
        with pytest.raises(SolverError):
            self._simple_program().objective_value(np.array([1.0]))

    def test_feasibility(self):
        program = self._simple_program()
        assert program.is_feasible(np.array([1.0, 0.0]))
        assert program.is_feasible(np.array([0.0, 1.0]))
        assert not program.is_feasible(np.array([1.0, 1.0]))
        assert not program.is_feasible(np.array([0.0, 0.0]))

    def test_assignment_by_name(self):
        program = self._simple_program()
        named = program.assignment_by_name(np.array([1.0, 0.0]))
        assert named == {"x": 1.0, "y": 0.0}
