"""Tests for the iterated hill-climbing baseline (CLIMB)."""

import itertools

import pytest

from repro.baselines.hillclimb import IteratedHillClimbing
from repro.exceptions import SolverError
from repro.mqo.generator import generate_paper_testcase


def exhaustive_optimum(problem):
    return min(
        problem.solution_from_choices(list(choices)).cost
        for choices in itertools.product(*(range(q.num_plans) for q in problem.queries))
    )


class TestIteratedHillClimbing:
    def test_name_matches_paper_legend(self):
        assert IteratedHillClimbing().name == "CLIMB"

    def test_invalid_budget_rejected(self, small_problem):
        with pytest.raises(SolverError):
            IteratedHillClimbing().solve(small_problem, time_budget_ms=0.0)

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            IteratedHillClimbing(max_restarts=0)
        with pytest.raises(SolverError):
            IteratedHillClimbing(budget_check_interval=0)

    def test_finds_optimum_of_small_instances(self, small_problem):
        trajectory = IteratedHillClimbing().solve(small_problem, time_budget_ms=300, seed=0)
        assert trajectory.best_cost == pytest.approx(exhaustive_optimum(small_problem))
        assert trajectory.best_solution.is_valid

    def test_finds_optimum_of_paper_example(self, paper_example_problem):
        trajectory = IteratedHillClimbing().solve(
            paper_example_problem, time_budget_ms=200, seed=1
        )
        assert trajectory.best_cost == pytest.approx(2.0)

    def test_solution_quality_is_monotone_over_time(self):
        problem = generate_paper_testcase(20, 3, seed=5)
        trajectory = IteratedHillClimbing().solve(problem, time_budget_ms=300, seed=2)
        costs = [cost for _, cost in trajectory.points]
        assert costs == sorted(costs, reverse=True)
        assert trajectory.best_solution.is_valid

    def test_respects_time_budget(self):
        problem = generate_paper_testcase(30, 3, seed=6)
        trajectory = IteratedHillClimbing().solve(problem, time_budget_ms=100, seed=3)
        # Generous slack: a single climb step may overshoot slightly.
        assert trajectory.total_time_ms < 1000

    def test_max_restarts_limits_work(self, small_problem):
        solver = IteratedHillClimbing(max_restarts=1)
        trajectory = solver.solve(small_problem, time_budget_ms=10_000, seed=4)
        assert trajectory.best_solution is not None
        assert trajectory.total_time_ms < 5_000

    def test_local_optimum_property(self):
        """The final solution cannot be improved by changing a single query's plan."""
        problem = generate_paper_testcase(12, 2, seed=9)
        # A bounded number of restarts with a generous budget guarantees the
        # incumbent comes from a completed climb (i.e. is a local optimum).
        trajectory = IteratedHillClimbing(max_restarts=3).solve(
            problem, time_budget_ms=10_000, seed=5
        )
        best = trajectory.best_solution
        choices = best.choices()
        for query in problem.queries:
            for alternative in range(query.num_plans):
                modified = list(choices)
                modified[query.index] = alternative
                assert problem.solution_from_choices(modified).cost >= best.cost - 1e-9
