"""Tests for the anytime-solver framework."""

import pytest

from repro.baselines.anytime import SolverTrajectory, TrajectoryRecorder
from repro.exceptions import SolverError
from repro.utils.stopwatch import Stopwatch


class TestSolverTrajectory:
    def test_empty_trajectory(self):
        trajectory = SolverTrajectory(solver_name="X")
        assert trajectory.best_cost == float("inf")
        assert trajectory.cost_at_time(1000) == float("inf")
        assert trajectory.time_to_reach(0.0) is None

    def test_cost_at_time(self):
        trajectory = SolverTrajectory(
            solver_name="X", points=[(1.0, 10.0), (5.0, 7.0), (20.0, 3.0)]
        )
        assert trajectory.cost_at_time(0.5) == float("inf")
        assert trajectory.cost_at_time(1.0) == 10.0
        assert trajectory.cost_at_time(6.0) == 7.0
        assert trajectory.cost_at_time(100.0) == 3.0
        assert trajectory.best_cost == 3.0

    def test_time_to_reach(self):
        trajectory = SolverTrajectory(
            solver_name="X", points=[(1.0, 10.0), (5.0, 7.0), (20.0, 3.0)]
        )
        assert trajectory.time_to_reach(10.0) == 1.0
        assert trajectory.time_to_reach(8.0) == 5.0
        assert trajectory.time_to_reach(3.0) == 20.0
        assert trajectory.time_to_reach(1.0) is None

    def test_sampled(self):
        trajectory = SolverTrajectory(solver_name="X", points=[(1.0, 10.0), (5.0, 7.0)])
        sampled = trajectory.sampled([0.5, 2.0, 10.0])
        assert sampled == [(0.5, float("inf")), (2.0, 10.0), (10.0, 7.0)]

    def test_envelope_merges_best_so_far(self):
        a = SolverTrajectory(solver_name="A", points=[(1.0, 10.0), (4.0, 6.0)])
        b = SolverTrajectory(solver_name="B", points=[(2.0, 8.0), (3.0, 7.0), (9.0, 1.0)])
        merged = SolverTrajectory.envelope([a, b], solver_name="M")
        assert merged.solver_name == "M"
        assert merged.points == [(1.0, 10.0), (2.0, 8.0), (3.0, 7.0), (4.0, 6.0), (9.0, 1.0)]

    def test_envelope_applies_offsets(self):
        a = SolverTrajectory(solver_name="A", points=[(1.0, 5.0)])
        b = SolverTrajectory(solver_name="B", points=[(1.0, 3.0)])
        merged = SolverTrajectory.envelope([a, b], offsets=[0.0, 10.0])
        assert merged.points == [(1.0, 5.0), (11.0, 3.0)]

    def test_envelope_offset_count_mismatch(self):
        a = SolverTrajectory(solver_name="A")
        with pytest.raises(SolverError):
            SolverTrajectory.envelope([a], offsets=[0.0, 1.0])


class TestTrajectoryRecorder:
    def test_records_only_improvements(self, small_problem):
        recorder = TrajectoryRecorder("TEST")
        good = small_problem.solution_from_choices([0, 1, 1, 0])
        worse = small_problem.solution_from_choices([1, 0, 0, 0])
        assert recorder.record(good)
        improved = recorder.record(worse) if worse.cost < good.cost else not recorder.record(worse)
        assert improved
        trajectory = recorder.finish()
        assert trajectory.best_cost == min(good.cost, worse.cost)
        assert trajectory.best_solution is not None

    def test_rejects_invalid_solutions(self, small_problem):
        recorder = TrajectoryRecorder("TEST")
        invalid = small_problem.solution_from_selection({0})
        with pytest.raises(SolverError):
            recorder.record(invalid)

    def test_explicit_timestamps_used(self, small_problem):
        recorder = TrajectoryRecorder("TEST")
        solution = small_problem.solution_from_choices([0, 0, 0, 0])
        recorder.record(solution, elapsed_ms=42.0)
        trajectory = recorder.finish()
        assert trajectory.points[0][0] == 42.0

    def test_finish_marks_optimality(self, small_problem):
        recorder = TrajectoryRecorder("TEST")
        recorder.record(small_problem.solution_from_choices([0, 0, 0, 0]))
        assert recorder.finish(proved_optimal=True).proved_optimal

    def test_monotone_costs(self, small_problem):
        recorder = TrajectoryRecorder("TEST", clock=Stopwatch().start())
        for choices in ([1, 0, 0, 1], [0, 1, 1, 0], [0, 0, 0, 0], [1, 1, 1, 1]):
            recorder.record(small_problem.solution_from_choices(choices))
        costs = [cost for _, cost in recorder.finish().points]
        assert costs == sorted(costs, reverse=True)
