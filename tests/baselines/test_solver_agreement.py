"""Cross-solver agreement: every baseline converges on small instances.

These tests treat the exhaustive MQO optimum as ground truth and check
that the exact solver proves it and that the heuristics reach it on
instances small enough that they must.
"""

import itertools

import pytest

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.greedy import GreedyConstructiveSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.mqo.generator import generate_paper_testcase, generate_random_problem


def exhaustive_optimum(problem):
    return min(
        problem.solution_from_choices(list(choices)).cost
        for choices in itertools.product(*(range(q.num_plans) for q in problem.queries))
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestAgreementOnGeneratedInstances:
    def _problem(self, seed):
        return generate_paper_testcase(7, 2, seed=seed)

    def test_ilp_proves_exhaustive_optimum(self, seed):
        problem = self._problem(seed)
        trajectory = IntegerProgrammingMQOSolver().solve(problem, time_budget_ms=20_000)
        assert trajectory.proved_optimal
        assert trajectory.best_cost == pytest.approx(exhaustive_optimum(problem))

    def test_hillclimb_reaches_optimum(self, seed):
        problem = self._problem(seed)
        trajectory = IteratedHillClimbing().solve(problem, time_budget_ms=400, seed=seed)
        assert trajectory.best_cost == pytest.approx(exhaustive_optimum(problem))

    def test_genetic_reaches_optimum(self, seed):
        problem = self._problem(seed)
        trajectory = GeneticAlgorithmSolver(population_size=40).solve(
            problem, time_budget_ms=800, seed=seed
        )
        assert trajectory.best_cost == pytest.approx(exhaustive_optimum(problem))

    def test_greedy_never_beats_optimum(self, seed):
        problem = self._problem(seed)
        solution = GreedyConstructiveSolver().construct(problem)
        assert solution.cost >= exhaustive_optimum(problem) - 1e-9


class TestAgreementOnDenseRandomInstance:
    def test_all_solvers_agree(self):
        problem = generate_random_problem(6, 2, sharing_density=0.5, seed=11)
        optimum = exhaustive_optimum(problem)
        ilp = IntegerProgrammingMQOSolver().solve(problem, time_budget_ms=20_000)
        climb = IteratedHillClimbing().solve(problem, time_budget_ms=300, seed=1)
        ga = GeneticAlgorithmSolver(population_size=30).solve(
            problem, time_budget_ms=500, seed=1
        )
        assert ilp.best_cost == pytest.approx(optimum)
        assert climb.best_cost == pytest.approx(optimum)
        assert ga.best_cost == pytest.approx(optimum)
