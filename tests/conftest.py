"""Shared fixtures for the test suite.

All fixtures build *small* objects (tiny Chimera grids, problems with a
handful of queries) so the whole suite stays fast while still exercising
every code path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealer.device import DWaveSamplerSimulator
from repro.annealer.noise import NoiseModel
from repro.chimera.hardware import DWaveSpec
from repro.chimera.topology import ChimeraGraph
from repro.mqo.generator import MQOGeneratorConfig, generate_paper_testcase
from repro.mqo.problem import MQOProblem


@pytest.fixture()
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture()
def paper_example_problem() -> MQOProblem:
    """The worked Example 1 of paper Section 4.

    Four plans with costs 2, 4, 3, 1; plans 0/1 belong to query 0 and
    plans 2/3 to query 1; plans 1 and 2 share an intermediate result
    worth 5 cost units.
    """
    return MQOProblem(
        plans_per_query=[[2.0, 4.0], [3.0, 1.0]],
        savings={(1, 2): 5.0},
        name="paper-example-1",
    )


@pytest.fixture()
def small_problem() -> MQOProblem:
    """A 4-query, 2-plan problem with a few sharing links."""
    return MQOProblem(
        plans_per_query=[[3.0, 5.0], [4.0, 2.0], [6.0, 1.0], [2.0, 2.5]],
        savings={(0, 2): 2.0, (1, 4): 1.0, (5, 6): 3.0, (2, 7): 1.5},
        name="small-problem",
    )


@pytest.fixture()
def medium_problem() -> MQOProblem:
    """A generated 8-query, 3-plan instance (seeded, Chimera friendly)."""
    return generate_paper_testcase(8, 3, seed=7, config=MQOGeneratorConfig())


@pytest.fixture()
def tiny_chimera() -> ChimeraGraph:
    """A defect-free 2x2 Chimera (32 qubits)."""
    return ChimeraGraph(2, 2)


@pytest.fixture()
def small_chimera() -> ChimeraGraph:
    """A defect-free 4x4 Chimera (128 qubits)."""
    return ChimeraGraph(4, 4)


@pytest.fixture()
def medium_chimera() -> ChimeraGraph:
    """A defect-free 6x6 Chimera (288 qubits)."""
    return ChimeraGraph(6, 6)


@pytest.fixture()
def small_spec() -> DWaveSpec:
    """A small device spec with the paper's timing constants."""
    return DWaveSpec(name="test-annealer", cell_rows=4, cell_cols=4, shore=4)


@pytest.fixture()
def ideal_device(medium_chimera, small_spec) -> DWaveSamplerSimulator:
    """A noiseless device simulator on the 6x6 topology."""
    return DWaveSamplerSimulator(
        spec=small_spec,
        topology=medium_chimera,
        noise=NoiseModel(0.0, 0.0),
        num_sweeps=150,
        seed=99,
    )
