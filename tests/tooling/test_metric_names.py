"""Tier-1 enforcement of the metric naming lint CI gate."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL_PATH = REPO_ROOT / "tools" / "check_metric_names.py"

spec = importlib.util.spec_from_file_location("check_metric_names", TOOL_PATH)
_lint = importlib.util.module_from_spec(spec)
sys.modules["check_metric_names"] = _lint
spec.loader.exec_module(_lint)


def _violations(source: str):
    return _lint.check_source(Path("snippet.py"), source)


class TestCheckSource:
    def test_conforming_names_pass(self):
        source = (
            "registry.counter('repro_jobs_total', 'help')\n"
            "registry.gauge('repro_queue_depth')\n"
            "registry.histogram('repro_latency_ms')\n"
        )
        assert _violations(source) == []

    def test_counter_without_total_suffix_fails(self):
        (violation,) = _violations("registry.counter('repro_jobs')")
        assert "_total" in violation[1]

    def test_gauge_with_total_suffix_fails(self):
        (violation,) = _violations("registry.gauge('repro_depth_total')")
        assert "must not end" in violation[1]

    def test_histogram_without_unit_suffix_fails(self):
        (violation,) = _violations("registry.histogram('repro_latency')")
        assert "unit suffix" in violation[1]

    def test_unprefixed_or_uppercase_names_fail(self):
        assert _violations("r.counter('jobs_total')")
        assert _violations("r.counter('repro_Jobs_total')")

    def test_dynamic_names_are_skipped(self):
        source = (
            "r.counter(f'repro_server_shard_{short}_total')\n"
            "r.gauge(name)\n"
            "unrelated('repro_bad')\n"
        )
        assert _violations(source) == []

    def test_syntax_errors_are_reported_not_raised(self):
        (violation,) = _violations("def broken(:\n")
        assert "cannot parse" in violation[1]


class TestRepositoryGate:
    def test_src_and_benchmarks_conform(self):
        # The same invocation .github/workflows/ci.yml runs.
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_metric_names.py"),
                "src",
                "benchmarks",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_flags_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("registry.counter('repro_jobs')\n")
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_metric_names.py"), str(bad)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "repro_jobs" in result.stdout
