"""Tier-1 enforcement of the docs CI gates.

Runs the same two checks `.github/workflows/ci.yml` runs — docstring
coverage on ``src/repro`` and the markdown link check — so a regression
fails locally before it fails in CI, and asserts the documentation
satellite deliverables stay linked from the README.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / script), *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


class TestDocsGates:
    def test_docstring_coverage_gate(self):
        result = _run("check_docstrings.py", "--fail-under", "85", "src/repro")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_docs_link_check(self):
        result = _run("check_doc_links.py", "README.md", "docs")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_link_checker_catches_broken_links(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](does-not-exist.md)\n")
        result = _run("check_doc_links.py", str(bad))
        assert result.returncode == 1
        assert "does-not-exist.md" in result.stdout

    def test_docstring_checker_counts_missing(self, tmp_path):
        module = tmp_path / "undocumented.py"
        module.write_text("def public():\n    return 1\n")
        result = _run("check_docstrings.py", "--fail-under", "100", str(module))
        assert result.returncode == 1
        assert "public" in result.stdout


class TestDocsDeliverables:
    def test_docs_exist(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "annealer.md").is_file()
        assert (REPO_ROOT / "docs" / "service.md").is_file()

    def test_docs_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/annealer.md" in readme
        assert "docs/service.md" in readme

    def test_ci_runs_the_gates(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "check_docstrings.py" in workflow
        assert "check_doc_links.py" in workflow
