"""Tests for the perf regression gate (tools/check_bench_regression.py)."""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench.schema import build_bench_document
from repro.bench.stats import summarize_latencies

TOOL_PATH = Path(__file__).resolve().parents[2] / "tools" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def gate():
    """The tool imported as a module (so exit codes are testable)."""
    spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_bench_regression"] = module
    spec.loader.exec_module(module)
    return module


def document(throughput: float, p99: float, failures: int = 0) -> dict:
    """A valid single-scenario BENCH document with the given totals."""
    latency = summarize_latencies([p99 * 0.5, p99 * 0.8, p99])
    scenario = {
        "name": "load",
        "family": "paper",
        "jobs": 10,
        "failures": failures,
        "duration_s": 1.0,
        "throughput_jobs_per_s": throughput,
        "latency_ms": latency,
    }
    totals = dict(scenario)
    for key in ("name", "family"):
        totals.pop(key)
    return build_bench_document(
        suite="server", mode="server", scenarios=[scenario], totals=totals
    )


def write(tmp_path: Path, name: str, doc: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestCompare:
    def test_identical_documents_pass(self, gate):
        doc = document(50.0, 120.0)
        assert gate.compare_documents(doc, doc, tolerance=0.25) == []

    def test_within_tolerance_passes(self, gate):
        current = document(40.0, 145.0)  # -20% throughput, +21% p99
        baseline = document(50.0, 120.0)
        assert gate.compare_documents(current, baseline, tolerance=0.25) == []

    def test_throughput_drop_fails(self, gate):
        current = document(30.0, 120.0)  # -40%
        baseline = document(50.0, 120.0)
        failures = gate.compare_documents(current, baseline, tolerance=0.25)
        assert any("throughput regressed" in failure for failure in failures)

    def test_p99_growth_fails(self, gate):
        current = document(50.0, 200.0)  # +66%
        baseline = document(50.0, 120.0)
        failures = gate.compare_documents(current, baseline, tolerance=0.25)
        assert any("p99 latency regressed" in failure for failure in failures)

    def test_job_failures_fail(self, gate):
        current = document(50.0, 120.0, failures=2)
        baseline = document(50.0, 120.0)
        failures = gate.compare_documents(current, baseline, tolerance=0.25)
        assert any("failed job" in failure for failure in failures)

    def test_mode_mismatch_fails(self, gate):
        current = document(50.0, 120.0)
        baseline = copy.deepcopy(current)
        baseline["mode"] = "service"
        failures = gate.compare_documents(current, baseline, tolerance=0.25)
        assert any("mode mismatch" in failure for failure in failures)

    def test_suite_mismatch_fails(self, gate):
        current = document(50.0, 120.0)
        baseline = copy.deepcopy(current)
        baseline["suite"] = "other"
        failures = gate.compare_documents(current, baseline, tolerance=0.25)
        assert any("suite mismatch" in failure for failure in failures)


class TestMain:
    def test_passing_run_exits_zero(self, gate, tmp_path, capsys):
        current = write(tmp_path, "current.json", document(50.0, 120.0))
        baseline = write(tmp_path, "baseline.json", document(48.0, 118.0))
        assert gate.main([str(current), "--baseline", str(baseline)]) == 0
        assert "OK: within" in capsys.readouterr().out

    def test_regression_exits_one(self, gate, tmp_path, capsys):
        current = write(tmp_path, "current.json", document(20.0, 300.0))
        baseline = write(tmp_path, "baseline.json", document(50.0, 120.0))
        assert gate.main([str(current), "--baseline", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err
        assert "env" in captured.err  # fingerprints printed on failure

    def test_missing_baseline_exits_one(self, gate, tmp_path, capsys):
        current = write(tmp_path, "current.json", document(50.0, 120.0))
        assert gate.main([str(current), "--baseline", str(tmp_path / "no.json")]) == 1
        assert "no baseline" in capsys.readouterr().err

    def test_invalid_current_document_exits_one(self, gate, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert gate.main([str(bad)]) == 1
        assert "current document invalid" in capsys.readouterr().err

    def test_bad_tolerance_exits_two(self, gate, tmp_path):
        current = write(tmp_path, "current.json", document(50.0, 120.0))
        assert gate.main([str(current), "--tolerance", "2.0"]) == 2

    def test_scenario_drift_is_advisory_only(self, gate, tmp_path, capsys):
        current_doc = document(50.0, 120.0)
        current_doc["scenarios"][0]["name"] = "renamed"
        current = write(tmp_path, "current.json", current_doc)
        baseline = write(tmp_path, "baseline.json", document(50.0, 120.0))
        assert gate.main([str(current), "--baseline", str(baseline)]) == 0
        assert "note:" in capsys.readouterr().out


class TestCommittedBaseline:
    def test_repo_baseline_exists_and_validates(self, gate):
        baseline = gate.BASELINE_DIR / "BENCH_server.json"
        assert baseline.exists(), "CI gates on this file; it must be committed"
        from repro.bench.schema import load_bench_document

        document = load_bench_document(baseline)
        assert document["suite"] == "server"
